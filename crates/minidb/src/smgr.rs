//! The storage manager and its device manager switch.
//!
//! "Based on the bdevsw switch in UNIX, the POSTGRES device manager switch
//! registers the devices that are available to the database system."
//! Relations are created on a device and addressed by *logical* block number
//! thereafter; the per-device manager maps logical blocks to physical ones,
//! so higher layers are completely location-transparent.
//!
//! Two managers are provided:
//!
//! * [`GenericManager`] — magnetic disk, NVRAM, tape: a block map plus a
//!   bump allocator, with its own metadata persisted in a reserved region of
//!   the device.
//! * [`JukeboxManager`] — the Sony WORM autochanger: allocation in *extents*
//!   of physically contiguous pages, a magnetic-disk staging cache in front
//!   of the robot (10 MB by default, like the paper's), and write-once
//!   handling: a logical block whose platter copy was already burned gets
//!   *remapped* to a fresh physical block on rewrite.

use std::collections::HashMap;

use parking_lot::Mutex;
use std::sync::Arc;

use simdev::{BlockDevice, DevError};

use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, Oid, RelId};

/// A device shared between managers, the transaction log, and tests.
pub type SharedDevice = Arc<Mutex<dyn BlockDevice>>;

/// Wraps a concrete device into a [`SharedDevice`].
pub fn shared_device(dev: impl BlockDevice + 'static) -> SharedDevice {
    Arc::new(Mutex::new(dev))
}

/// Per-device relation storage operations, the rows of the switch table.
pub trait DeviceManager: Send {
    /// Human-readable name of the managed device.
    fn device_name(&self) -> String;

    /// Registers a new, empty relation.
    fn create_rel(&mut self, rel: RelId) -> DbResult<()>;

    /// Forgets a relation. Physical blocks are not reclaimed (the vacuum
    /// cleaner handles space, and WORM media cannot reclaim at all).
    fn drop_rel(&mut self, rel: RelId) -> DbResult<()>;

    /// Whether `rel` exists on this device.
    fn has_rel(&self, rel: RelId) -> bool;

    /// Number of logical blocks currently allocated to `rel`.
    fn nblocks(&self, rel: RelId) -> DbResult<u64>;

    /// Appends a new logical block containing `page`, returning its number.
    fn extend(&mut self, rel: RelId, page: &[u8]) -> DbResult<u64>;

    /// Appends a new logical block without transferring any data; its
    /// contents are undefined until the first [`DeviceManager::write`]. The
    /// buffer cache uses this so that freshly allocated pages cost one device
    /// write (at flush), not two.
    fn extend_blank(&mut self, rel: RelId) -> DbResult<u64> {
        let page = vec![0u8; simdev::BLOCK_SIZE];
        self.extend(rel, &page)
    }

    /// Reads logical block `blkno` of `rel`.
    fn read(&mut self, rel: RelId, blkno: u64, buf: &mut [u8]) -> DbResult<()>;

    /// Writes logical block `blkno` of `rel`.
    fn write(&mut self, rel: RelId, blkno: u64, buf: &[u8]) -> DbResult<()>;

    /// Drops every block of `rel`, leaving it registered but empty. The
    /// vacuum cleaner uses this before rewriting a relation compactly.
    /// Freed physical blocks are not reused (no-overwrite media may not
    /// allow it); space accounting is the archive's problem.
    fn truncate(&mut self, rel: RelId) -> DbResult<()>;

    /// Flushes manager metadata and device caches to stable storage.
    fn sync(&mut self) -> DbResult<()>;

    /// All relations on this device.
    fn relations(&self) -> Vec<RelId>;

    /// Sets the allocation extent size in pages (1 = block-at-a-time).
    /// Managers whose allocator is not extent-based ignore it.
    fn set_extent_size(&mut self, _pages: u64) {}
}

/// Blocks reserved at the front of a device for manager metadata.
const META_BLOCKS: u64 = 64;
const META_MAGIC: u32 = 0x534D_4752; // "SMGR"

#[derive(Debug, Default, Clone)]
struct RelMap {
    next_free: u64,
    rels: HashMap<RelId, Vec<u64>>,
}

/// Bounds-checked little-endian cursor over a metadata byte string.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u32(&mut self) -> DbResult<u32> {
        let v = crate::bytes::le_u32(self.buf, self.pos)?;
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> DbResult<u64> {
        let v = crate::bytes::le_u64(self.buf, self.pos)?;
        self.pos += 8;
        Ok(v)
    }
}

impl RelMap {
    /// Block lists are stored run-length encoded: the bump allocator hands
    /// out mostly-contiguous runs, so a 25 MB relation costs a handful of
    /// `(start, len)` pairs instead of thousands of raw block numbers —
    /// keeping the per-commit metadata write to a block or two.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&META_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.next_free.to_le_bytes());
        out.extend_from_slice(&(self.rels.len() as u32).to_le_bytes());
        let mut rels: Vec<_> = self.rels.iter().collect();
        rels.sort_by_key(|(r, _)| r.0);
        for (rel, blocks) in rels {
            out.extend_from_slice(&rel.0.to_le_bytes());
            out.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
            let mut runs: Vec<(u64, u64)> = Vec::new();
            for &b in blocks {
                match runs.last_mut() {
                    Some((start, len)) if *start + *len == b => *len += 1,
                    _ => runs.push((b, 1)),
                }
            }
            out.extend_from_slice(&(runs.len() as u64).to_le_bytes());
            for (start, len) in runs {
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> DbResult<RelMap> {
        let corrupt = || DbError::Corrupt("truncated device metadata".into());
        // A tiny cursor over `buf`; every read is bounds-checked so a
        // truncated or scribbled metadata region decodes to `Corrupt`.
        let mut cur = Cursor { buf, pos: 0 };
        let magic = cur.u32()?;
        if magic != META_MAGIC {
            return Err(DbError::Corrupt("bad device metadata magic".into()));
        }
        let next_free = cur.u64()?;
        let nrels = cur.u32()?;
        let mut rels = HashMap::new();
        for _ in 0..nrels {
            let rel = Oid(cur.u32()?);
            let n = cur.u64()? as usize;
            let nruns = cur.u64()?;
            let mut blocks = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..nruns {
                let start = cur.u64()?;
                let len = cur.u64()?;
                for b in start..start.checked_add(len).ok_or_else(corrupt)? {
                    blocks.push(b);
                }
            }
            if blocks.len() != n {
                return Err(DbError::Corrupt("relmap run lengths disagree".into()));
            }
            rels.insert(rel, blocks);
        }
        Ok(RelMap { next_free, rels })
    }
}

/// Writes a metadata byte string into a device's reserved region
/// (used by device managers for block maps and by [`crate::db::Db`] for the
/// catalog).
pub fn write_meta(dev: &SharedDevice, first_block: u64, meta: &[u8]) -> DbResult<()> {
    let _order = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
    let mut d = dev.lock();
    let bs = d.block_size();
    let capacity = (META_BLOCKS as usize - 1) * bs;
    if meta.len() > capacity {
        return Err(DbError::Device(DevError::NoSpace));
    }
    let mut hdr = vec![0u8; bs];
    hdr[..8].copy_from_slice(&(meta.len() as u64).to_le_bytes());
    d.write_block(first_block, &hdr)?;
    for (i, chunk) in meta.chunks(bs).enumerate() {
        let mut blk = vec![0u8; bs];
        blk[..chunk.len()].copy_from_slice(chunk);
        d.write_block(first_block + 1 + i as u64, &blk)?;
    }
    Ok(())
}

/// Reads back a metadata byte string written by [`write_meta`], or `None`
/// if never written.
pub fn read_meta(dev: &SharedDevice, first_block: u64) -> DbResult<Option<Vec<u8>>> {
    let _order = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
    let mut d = dev.lock();
    let bs = d.block_size();
    let mut hdr = vec![0u8; bs];
    d.read_block(first_block, &mut hdr)?;
    let len = crate::bytes::le_u64(&hdr, 0)? as usize;
    if len == 0 {
        return Ok(None);
    }
    if len > (META_BLOCKS as usize - 1) * bs {
        return Err(DbError::Corrupt("metadata length out of range".into()));
    }
    let mut out = vec![0u8; len];
    let mut blk = vec![0u8; bs];
    for (i, chunk) in out.chunks_mut(bs).enumerate() {
        d.read_block(first_block + 1 + i as u64, &mut blk)?;
        chunk.copy_from_slice(&blk[..chunk.len()]);
    }
    Ok(Some(out))
}

/// The standard manager for rewritable random-access media.
pub struct GenericManager {
    dev: SharedDevice,
    map: RelMap,
    meta_dirty: bool,
    /// Pages claimed per allocation; 1 keeps the legacy bump allocator.
    extent_size: u64,
    /// Partially filled extent per relation: (first physical block, used).
    /// Not persisted — a restart wastes the tail of each open extent, which
    /// the run-length meta encoding absorbs for free.
    open_extents: HashMap<RelId, (u64, u64)>,
}

impl GenericManager {
    /// Formats `dev` (reserving the metadata region) and returns a manager.
    pub fn format(dev: SharedDevice) -> DbResult<GenericManager> {
        let map = RelMap {
            next_free: META_BLOCKS,
            rels: HashMap::new(),
        };
        let mut mgr = GenericManager {
            dev,
            map,
            meta_dirty: true,
            extent_size: 1,
            open_extents: HashMap::new(),
        };
        mgr.sync()?;
        Ok(mgr)
    }

    /// Re-attaches to a previously formatted device, reloading its metadata.
    pub fn attach(dev: SharedDevice) -> DbResult<GenericManager> {
        let meta = read_meta(&dev, 0)?
            .ok_or_else(|| DbError::Corrupt("device was never formatted".into()))?;
        let map = RelMap::decode(&meta)?;
        Ok(GenericManager {
            dev,
            map,
            meta_dirty: false,
            extent_size: 1,
            open_extents: HashMap::new(),
        })
    }

    /// Allocates the next physical block for `rel`: from the relation's
    /// open extent when one has room, otherwise by claiming a fresh extent
    /// from the bump allocator. Falls back to single-block allocation when
    /// the device cannot fit a whole extent, so the last stretch of a disk
    /// is still usable.
    fn alloc_physical(&mut self, rel: RelId) -> DbResult<u64> {
        let extent = self.extent_size.max(1);
        if extent > 1 {
            if let Some((first, used)) = self.open_extents.get_mut(&rel) {
                if *used < extent {
                    let phys = *first + *used;
                    *used += 1;
                    return Ok(phys);
                }
            }
        }
        let first = self.map.next_free;
        let nblocks = self.dev.lock().nblocks();
        let span = if extent > 1 && first + extent <= nblocks {
            extent
        } else {
            1
        };
        if first + span > nblocks {
            return Err(DbError::Device(DevError::NoSpace));
        }
        self.map.next_free = first + span;
        if span > 1 {
            self.open_extents.insert(rel, (first, 1));
        }
        Ok(first)
    }

    fn physical(&self, rel: RelId, blkno: u64) -> DbResult<u64> {
        let blocks = self.map.rels.get(&rel).ok_or_else(|| {
            DbError::NotFound(format!("relation {rel} on {}", self.device_name()))
        })?;
        blocks
            .get(blkno as usize)
            .copied()
            .ok_or(DbError::Device(DevError::OutOfRange {
                blkno,
                nblocks: blocks.len() as u64,
            }))
    }
}

impl DeviceManager for GenericManager {
    fn device_name(&self) -> String {
        self.dev.lock().name().to_string()
    }

    fn create_rel(&mut self, rel: RelId) -> DbResult<()> {
        if self.map.rels.contains_key(&rel) {
            return Err(DbError::AlreadyExists(format!("relation {rel}")));
        }
        self.map.rels.insert(rel, Vec::new());
        self.meta_dirty = true;
        Ok(())
    }

    fn drop_rel(&mut self, rel: RelId) -> DbResult<()> {
        self.map
            .rels
            .remove(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        self.open_extents.remove(&rel);
        self.meta_dirty = true;
        Ok(())
    }

    fn has_rel(&self, rel: RelId) -> bool {
        self.map.rels.contains_key(&rel)
    }

    fn nblocks(&self, rel: RelId) -> DbResult<u64> {
        Ok(self
            .map
            .rels
            .get(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?
            .len() as u64)
    }

    fn extend(&mut self, rel: RelId, page: &[u8]) -> DbResult<u64> {
        if !self.map.rels.contains_key(&rel) {
            return Err(DbError::NotFound(format!("relation {rel}")));
        }
        let phys = self.alloc_physical(rel)?;
        self.dev.lock().write_block(phys, page)?;
        let blocks = self
            .map
            .rels
            .get_mut(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        blocks.push(phys);
        self.meta_dirty = true;
        Ok(blocks.len() as u64 - 1)
    }

    fn extend_blank(&mut self, rel: RelId) -> DbResult<u64> {
        if !self.map.rels.contains_key(&rel) {
            return Err(DbError::NotFound(format!("relation {rel}")));
        }
        let phys = self.alloc_physical(rel)?;
        let blocks = self
            .map
            .rels
            .get_mut(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        blocks.push(phys);
        self.meta_dirty = true;
        Ok(blocks.len() as u64 - 1)
    }

    fn read(&mut self, rel: RelId, blkno: u64, buf: &mut [u8]) -> DbResult<()> {
        let phys = self.physical(rel, blkno)?;
        self.dev.lock().read_block(phys, buf)?;
        Ok(())
    }

    fn write(&mut self, rel: RelId, blkno: u64, buf: &[u8]) -> DbResult<()> {
        let phys = self.physical(rel, blkno)?;
        self.dev.lock().write_block(phys, buf)?;
        Ok(())
    }

    fn truncate(&mut self, rel: RelId) -> DbResult<()> {
        let blocks = self
            .map
            .rels
            .get_mut(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        blocks.clear();
        self.open_extents.remove(&rel);
        self.meta_dirty = true;
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        if self.meta_dirty {
            write_meta(&self.dev, 0, &self.map.encode())?;
            self.meta_dirty = false;
        }
        self.dev.lock().sync()?;
        Ok(())
    }

    fn relations(&self) -> Vec<RelId> {
        self.map.rels.keys().copied().collect()
    }

    fn set_extent_size(&mut self, pages: u64) {
        self.extent_size = pages.max(1);
    }
}

/// Configuration for a [`JukeboxManager`].
#[derive(Debug, Clone)]
pub struct JukeboxConfig {
    /// Pages per extent of physically contiguous platter space. "The extent
    /// size is tunable when POSTGRES is installed, but defaults to 16 pages."
    pub extent_pages: u64,
    /// Staging cache capacity in blocks on the magnetic disk. "The size of
    /// this cache is tunable, and defaults to 10 MBytes."
    pub cache_blocks: u64,
}

impl Default for JukeboxConfig {
    fn default() -> Self {
        JukeboxConfig {
            extent_pages: 16,
            cache_blocks: (10 << 20) / simdev::BLOCK_SIZE as u64,
        }
    }
}

/// Cache entry state for one jukebox logical block staged on magnetic disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageState {
    Clean,
    /// Never burned to a platter (or superseding a burned copy).
    Dirty,
}

/// The Sony WORM jukebox manager: extent allocation, staging cache,
/// write-once remapping.
pub struct JukeboxManager {
    jukebox: SharedDevice,
    staging: SharedDevice,
    config: JukeboxConfig,
    map: RelMap,
    /// Physical platter blocks that have been burned (write-once consumed).
    burned: std::collections::HashSet<u64>,
    /// physical jukebox block -> (staging disk block, state), plus LRU order.
    cache: HashMap<u64, (u64, StageState)>,
    lru: std::collections::VecDeque<u64>,
    free_staging: Vec<u64>,
    meta_dirty: bool,
    /// Next unallocated extent number.
    next_extent: u64,
    /// Partially filled extent per relation: (first physical block, used).
    open_extents: HashMap<RelId, (u64, u64)>,
}

impl JukeboxManager {
    /// Creates a manager over a fresh jukebox with `staging` as its cache
    /// disk. Manager metadata lives on the staging disk (platters are
    /// write-once and unsuitable for mutable metadata).
    pub fn format(
        jukebox: SharedDevice,
        staging: SharedDevice,
        config: JukeboxConfig,
    ) -> DbResult<JukeboxManager> {
        let free_staging = (META_BLOCKS..META_BLOCKS + config.cache_blocks)
            .rev()
            .collect();
        let mut mgr = JukeboxManager {
            jukebox,
            staging,
            config,
            map: RelMap::default(),
            burned: std::collections::HashSet::new(),
            cache: HashMap::new(),
            lru: std::collections::VecDeque::new(),
            free_staging,
            meta_dirty: true,
            next_extent: 0,
            open_extents: HashMap::new(),
        };
        mgr.sync()?;
        Ok(mgr)
    }

    /// Re-attaches after a restart, reloading metadata from the staging disk.
    ///
    /// The staging cache itself is volatile across restarts in this model:
    /// `sync` burns all dirty staged blocks, so a synced manager loses only
    /// clean cached copies.
    pub fn attach(
        jukebox: SharedDevice,
        staging: SharedDevice,
        config: JukeboxConfig,
    ) -> DbResult<JukeboxManager> {
        let meta = read_meta(&staging, 0)?
            .ok_or_else(|| DbError::Corrupt("jukebox staging disk was never formatted".into()))?;
        let (map, burned, next_extent) = Self::decode_meta(&meta)?;
        let free_staging = (META_BLOCKS..META_BLOCKS + config.cache_blocks)
            .rev()
            .collect();
        Ok(JukeboxManager {
            jukebox,
            staging,
            config,
            map,
            burned,
            cache: HashMap::new(),
            lru: std::collections::VecDeque::new(),
            free_staging,
            meta_dirty: false,
            next_extent,
            open_extents: HashMap::new(),
        })
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut out = self.map.encode();
        out.extend_from_slice(&self.next_extent.to_le_bytes());
        out.extend_from_slice(&(self.burned.len() as u64).to_le_bytes());
        let mut burned: Vec<_> = self.burned.iter().copied().collect();
        burned.sort_unstable();
        for b in burned {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    fn decode_meta(buf: &[u8]) -> DbResult<(RelMap, std::collections::HashSet<u64>, u64)> {
        let map = RelMap::decode(buf)?;
        // Re-encode to find where the RelMap ended.
        let map_len = map.encode().len();
        let corrupt = || DbError::Corrupt("truncated jukebox metadata".into());
        let rest = buf.get(map_len..).ok_or_else(corrupt)?;
        let mut cur = Cursor { buf: rest, pos: 0 };
        let next_extent = cur.u64()?;
        let n = cur.u64()? as usize;
        let mut burned = std::collections::HashSet::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            burned.insert(cur.u64()?);
        }
        Ok((map, burned, next_extent))
    }

    /// Allocates a fresh physical platter block for `rel`, extent-wise.
    fn alloc_physical(&mut self, rel: RelId) -> DbResult<u64> {
        let extent_pages = self.config.extent_pages;
        if let Some((first, used)) = self.open_extents.get_mut(&rel) {
            if *used < extent_pages {
                let phys = *first + *used;
                *used += 1;
                return Ok(phys);
            }
        }
        let first = self.next_extent * extent_pages;
        if first + extent_pages > self.jukebox.lock().nblocks() {
            return Err(DbError::Device(DevError::NoSpace));
        }
        self.next_extent += 1;
        self.open_extents.insert(rel, (first, 1));
        Ok(first)
    }

    fn touch_lru(&mut self, phys: u64) {
        if let Some(pos) = self.lru.iter().position(|&p| p == phys) {
            self.lru.remove(pos);
        }
        self.lru.push_back(phys);
    }

    /// Ensures there is a free staging slot, evicting (and burning) the LRU
    /// staged block if necessary. Returns a free staging block number.
    fn grab_staging_slot(&mut self) -> DbResult<u64> {
        if let Some(slot) = self.free_staging.pop() {
            return Ok(slot);
        }
        let victim = self
            .lru
            .pop_front()
            .ok_or_else(|| DbError::Invalid("staging cache empty but no free slots".into()))?;
        let (slot, state) = self.cache.remove(&victim).ok_or_else(|| {
            DbError::Corrupt("staging LRU entry missing from cache map".into())
        })?;
        if state == StageState::Dirty {
            self.burn(victim, slot)?;
        }
        Ok(slot)
    }

    /// Writes a staged block to its platter location (consuming write-once
    /// budget for that physical block).
    fn burn(&mut self, phys: u64, staging_slot: u64) -> DbResult<()> {
        let bs = self.jukebox.lock().block_size();
        let mut buf = vec![0u8; bs];
        self.staging.lock().read_block(staging_slot, &mut buf)?;
        self.jukebox.lock().write_block(phys, &buf)?;
        self.burned.insert(phys);
        self.meta_dirty = true;
        Ok(())
    }

    /// Fraction of staging-cache lookups served without touching the robot.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

impl DeviceManager for JukeboxManager {
    fn device_name(&self) -> String {
        self.jukebox.lock().name().to_string()
    }

    fn create_rel(&mut self, rel: RelId) -> DbResult<()> {
        if self.map.rels.contains_key(&rel) {
            return Err(DbError::AlreadyExists(format!("relation {rel}")));
        }
        self.map.rels.insert(rel, Vec::new());
        self.meta_dirty = true;
        Ok(())
    }

    fn drop_rel(&mut self, rel: RelId) -> DbResult<()> {
        self.map
            .rels
            .remove(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        self.open_extents.remove(&rel);
        self.meta_dirty = true;
        Ok(())
    }

    fn has_rel(&self, rel: RelId) -> bool {
        self.map.rels.contains_key(&rel)
    }

    fn nblocks(&self, rel: RelId) -> DbResult<u64> {
        Ok(self
            .map
            .rels
            .get(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?
            .len() as u64)
    }

    fn extend(&mut self, rel: RelId, page: &[u8]) -> DbResult<u64> {
        if !self.map.rels.contains_key(&rel) {
            return Err(DbError::NotFound(format!("relation {rel}")));
        }
        let phys = self.alloc_physical(rel)?;
        let slot = self.grab_staging_slot()?;
        self.staging.lock().write_block(slot, page)?;
        self.cache.insert(phys, (slot, StageState::Dirty));
        self.touch_lru(phys);
        let blocks = self
            .map
            .rels
            .get_mut(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        blocks.push(phys);
        self.meta_dirty = true;
        Ok(blocks.len() as u64 - 1)
    }

    fn read(&mut self, rel: RelId, blkno: u64, buf: &mut [u8]) -> DbResult<()> {
        let blocks = self
            .map
            .rels
            .get(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        let phys = *blocks
            .get(blkno as usize)
            .ok_or(DbError::Device(DevError::OutOfRange {
                blkno,
                nblocks: blocks.len() as u64,
            }))?;
        if let Some(&(slot, _)) = self.cache.get(&phys) {
            self.staging.lock().read_block(slot, buf)?;
            self.touch_lru(phys);
            return Ok(());
        }
        // Miss: fetch from the robot, then stage for future accesses.
        self.jukebox.lock().read_block(phys, buf)?;
        let slot = self.grab_staging_slot()?;
        self.staging.lock().write_block(slot, buf)?;
        self.cache.insert(phys, (slot, StageState::Clean));
        self.touch_lru(phys);
        Ok(())
    }

    fn write(&mut self, rel: RelId, blkno: u64, buf: &[u8]) -> DbResult<()> {
        let blocks = self
            .map
            .rels
            .get(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        let phys = *blocks
            .get(blkno as usize)
            .ok_or(DbError::Device(DevError::OutOfRange {
                blkno,
                nblocks: blocks.len() as u64,
            }))?;
        if self.burned.contains(&phys) && !self.cache.contains_key(&phys) {
            // Write-once medium: remap the logical block to fresh platter
            // space; the old copy remains burned forever (and remains
            // reachable by any as-of reader holding the old map — the vacuum
            // archiver is the intended writer here, so in practice this path
            // handles metadata-style rewrites).
            let new_phys = self.alloc_physical(rel)?;
            let blocks = self
                .map
                .rels
                .get_mut(&rel)
                .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
            blocks[blkno as usize] = new_phys;
            let slot = self.grab_staging_slot()?;
            self.staging.lock().write_block(slot, buf)?;
            self.cache.insert(new_phys, (slot, StageState::Dirty));
            self.touch_lru(new_phys);
            self.meta_dirty = true;
            return Ok(());
        }
        match self.cache.get(&phys).copied() {
            Some((slot, _)) => {
                self.staging.lock().write_block(slot, buf)?;
                self.cache.insert(phys, (slot, StageState::Dirty));
                self.touch_lru(phys);
            }
            None => {
                let slot = self.grab_staging_slot()?;
                self.staging.lock().write_block(slot, buf)?;
                self.cache.insert(phys, (slot, StageState::Dirty));
                self.touch_lru(phys);
            }
        }
        Ok(())
    }

    fn truncate(&mut self, rel: RelId) -> DbResult<()> {
        let blocks = self
            .map
            .rels
            .get_mut(&rel)
            .ok_or_else(|| DbError::NotFound(format!("relation {rel}")))?;
        let dropped: Vec<u64> = std::mem::take(blocks);
        for phys in dropped {
            if let Some((slot, _)) = self.cache.remove(&phys) {
                self.free_staging.push(slot);
                if let Some(pos) = self.lru.iter().position(|&p| p == phys) {
                    self.lru.remove(pos);
                }
            }
        }
        self.open_extents.remove(&rel);
        self.meta_dirty = true;
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        // Burn every dirty staged block so committed data reaches stable,
        // robot-managed media.
        let dirty: Vec<(u64, u64)> = self
            .cache
            .iter()
            .filter(|(_, (_, st))| *st == StageState::Dirty)
            .map(|(&phys, &(slot, _))| (phys, slot))
            .collect();
        for (phys, slot) in dirty {
            // A dirty staged copy of an already-burned block means the page
            // was rewritten after its platter copy was burned. Burning the
            // same spot again would violate write-once, so remap the
            // logical block to fresh platter space and burn there.
            let target = if self.burned.contains(&phys) {
                let Some((rel, idx)) = self.map.rels.iter().find_map(|(&r, blocks)| {
                    blocks.iter().position(|&p| p == phys).map(|i| (r, i))
                }) else {
                    continue; // Orphaned staged block (relation dropped).
                };
                let new_phys = self.alloc_physical(rel)?;
                if let Some(blocks) = self.map.rels.get_mut(&rel) {
                    blocks[idx] = new_phys;
                }
                self.meta_dirty = true;
                if let Some(e) = self.cache.remove(&phys) {
                    self.cache.insert(new_phys, e);
                }
                for p in &mut self.lru {
                    if *p == phys {
                        *p = new_phys;
                    }
                }
                new_phys
            } else {
                phys
            };
            self.burn(target, slot)?;
            if let Some(e) = self.cache.get_mut(&target) {
                e.1 = StageState::Clean;
            }
        }
        if self.meta_dirty {
            write_meta(&self.staging, 0, &self.encode_meta())?;
            self.meta_dirty = false;
        }
        self.staging.lock().sync()?;
        self.jukebox.lock().sync()?;
        Ok(())
    }

    fn relations(&self) -> Vec<RelId> {
        self.map.rels.keys().copied().collect()
    }
}

/// Where [`Smgr::read_page_from`] found the page's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSource {
    /// A synchronous device read.
    Device,
    /// The payload of a write still queued in the I/O scheduler (newest
    /// bytes, never stale: the device copy is older by definition).
    Pending,
    /// A completed (or awaited) scheduler read-ahead ticket.
    Prefetch,
}

/// The device manager switch: routes relation I/O to the device's manager.
pub struct Smgr {
    mgrs: HashMap<DeviceId, Arc<Mutex<Box<dyn DeviceManager>>>>,
    /// Set by [`crate::Db::open`]: the simulated clock and the database's
    /// stats registry, used to count and time page I/O per device.
    instr: Option<(simdev::SimClock, Arc<crate::stats::StatsRegistry>)>,
    redo: Option<Arc<crate::recovery::Redo>>,
    /// The asynchronous per-device scheduler, once [`Smgr::start_io`] ran.
    io: Option<crate::io::IoLayer>,
}

impl Smgr {
    /// Creates an empty switch.
    pub fn new() -> Smgr {
        Smgr {
            mgrs: HashMap::new(),
            instr: None,
            redo: None,
            io: None,
        }
    }

    /// Attaches a clock and stats registry; from then on the `*_page`
    /// wrappers record per-device read/write counts and simulated-latency
    /// histograms into `stats`.
    pub fn attach_stats(&mut self, clock: simdev::SimClock, stats: Arc<crate::stats::StatsRegistry>) {
        self.instr = Some((clock, stats));
    }

    /// Attaches the pending-REDO map built by crash recovery: every page
    /// read replays its missing records on first touch (instant recovery),
    /// until a checkpoint sweeps the map empty.
    pub fn attach_redo(&mut self, redo: Arc<crate::recovery::Redo>) {
        self.redo = Some(redo);
    }

    /// Registers `mgr` as device `id`.
    pub fn register(&mut self, id: DeviceId, mgr: Box<dyn DeviceManager>) -> DbResult<()> {
        if self.mgrs.contains_key(&id) {
            return Err(DbError::AlreadyExists(format!("{id}")));
        }
        let mgr = Arc::new(Mutex::new(mgr));
        if let (Some(io), Some((clock, stats))) = (&mut self.io, &self.instr) {
            io.add_device(id, Arc::clone(&mgr), clock.clone(), Arc::clone(stats));
        }
        self.mgrs.insert(id, mgr);
        Ok(())
    }

    /// Starts the asynchronous I/O scheduler: one elevator worker per
    /// registered device, `depth` pending writes of backpressure each.
    /// Requires [`Smgr::attach_stats`] (the workers account their I/O);
    /// without it, or with `depth == 0`, everything stays synchronous.
    pub fn start_io(&mut self, depth: usize) {
        if self.io.is_some() || depth == 0 {
            return;
        }
        let Some((clock, stats)) = &self.instr else {
            return;
        };
        let mut io = crate::io::IoLayer::new(depth);
        for (&dev, mgr) in &self.mgrs {
            io.add_device(dev, Arc::clone(mgr), clock.clone(), Arc::clone(stats));
        }
        self.io = Some(io);
    }

    /// The scheduler queue for `dev`, when the scheduler is running.
    pub fn io_queue(&self, dev: DeviceId) -> Option<&Arc<crate::io::DevQueue>> {
        self.io.as_ref().and_then(|io| io.queue(dev))
    }

    /// Whether the asynchronous scheduler is running.
    pub fn io_active(&self) -> bool {
        self.io.is_some()
    }

    /// Crash: aborts every device queue (in-flight requests are dropped,
    /// waiters get errors). Used by `Db::simulate_crash` *before* joining
    /// background threads that may be blocked in a barrier.
    pub fn io_abort(&self) {
        if let Some(io) = &self.io {
            io.abort();
        }
    }

    /// Pauses or resumes every device worker (torture-test hook).
    pub fn io_pause(&self, paused: bool) {
        if let Some(io) = &self.io {
            io.pause(paused);
        }
    }

    /// Requests currently queued across all devices.
    pub fn io_depth(&self) -> usize {
        self.io.as_ref().map_or(0, |io| io.depth())
    }

    /// Eviction backpressure: waits until `dev`'s queue drains below its
    /// depth bound. Call with no latch held.
    pub fn io_throttle(&self, dev: DeviceId) {
        if let Some(q) = self.io_queue(dev) {
            q.throttle();
        }
    }

    /// The registered device ids.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut v: Vec<_> = self.mgrs.keys().copied().collect();
        v.sort();
        v
    }

    /// Runs `f` with the manager for `dev`.
    pub fn with<T>(
        &self,
        dev: DeviceId,
        f: impl FnOnce(&mut dyn DeviceManager) -> DbResult<T>,
    ) -> DbResult<T> {
        let mgr = self
            .mgrs
            .get(&dev)
            .ok_or_else(|| DbError::NotFound(format!("{dev}")))?;
        let _order = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
        let mut g = mgr.lock();
        f(g.as_mut())
    }

    /// Reads a page through the switch, recording per-device counters and
    /// simulated latency when stats are attached.
    pub fn read_page(
        &self,
        dev: DeviceId,
        rel: RelId,
        blkno: u64,
        buf: &mut [u8],
    ) -> DbResult<()> {
        self.read_page_from(dev, rel, blkno, buf).map(|_| ())
    }

    /// Reads a page, consulting the scheduler queue first: a write still
    /// pending for the page carries the *newest* bytes (the device copy is
    /// stale until the worker drains it), and a read-ahead ticket for it may
    /// already hold the bytes. Returns where the bytes came from.
    pub fn read_page_from(
        &self,
        dev: DeviceId,
        rel: RelId,
        blkno: u64,
        buf: &mut [u8],
    ) -> DbResult<PageSource> {
        debug_assert!(
            !crate::lock::order::is_held(crate::lock::order::BUFFER_SHARD),
            "device read while holding a buffer shard latch"
        );
        let mut source = PageSource::Device;
        let mut have = false;
        if let Some(q) = self.io_queue(dev) {
            match q.claim(rel, blkno) {
                Some(crate::io::Claimed::Bytes(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    source = PageSource::Pending;
                    have = true;
                }
                Some(crate::io::Claimed::Ticket(t)) => {
                    if let Some(bytes) = t.wait() {
                        let n = bytes.len().min(buf.len());
                        buf[..n].copy_from_slice(&bytes[..n]);
                        source = PageSource::Prefetch;
                        have = true;
                    }
                    // A failed prefetch falls through to a sync read so the
                    // caller sees the real device error (or success on retry).
                }
                None => {}
            }
        }
        if !have {
            match &self.instr {
                Some((clock, stats)) => {
                    let (r, took) = clock.timed(|| self.with(dev, |m| m.read(rel, blkno, buf)));
                    let d = stats.device(dev);
                    d.reads.bump();
                    d.read_ns.add(took.as_nanos());
                    d.read_hist.record(took.as_nanos());
                    r?;
                }
                None => self.with(dev, |m| m.read(rel, blkno, buf))?,
            }
        }
        // Instant recovery: a page read from the device may predate the
        // crash; replay its pending REDO records before anyone sees it.
        // (LSN-gated, so replaying over fresher pending/prefetch bytes is a
        // no-op.)
        if let Some(redo) = &self.redo {
            if !redo.is_empty() {
                redo.replay_into((dev, rel, blkno), buf)?;
            }
        }
        Ok(source)
    }

    /// Submits an asynchronous read-ahead for the page. Returns `false` when
    /// the scheduler is off (the caller should fall back to its synchronous
    /// prefetch path) or shut down.
    /// Drops any claimable prefetched bytes for `rel` on `dev` — callers
    /// that truncate or drop a relation use this so a reborn block can
    /// never be satisfied with pre-truncation bytes out of the scheduler.
    pub fn invalidate_rel_io(&self, dev: DeviceId, rel: RelId) {
        if let Some(q) = self.io_queue(dev) {
            q.invalidate_rel(rel);
        }
    }

    pub fn prefetch_page(&self, dev: DeviceId, rel: RelId, blkno: u64) -> bool {
        match self.io_queue(dev) {
            Some(q) => q.submit_read(rel, blkno),
            None => false,
        }
    }

    /// Write-behind: queues the page for the device worker and returns
    /// immediately. WAL-before-data is the *caller's* job — force the WAL up
    /// to the page's LSN before calling this. Falls back to a synchronous
    /// [`Smgr::write_page`] when the scheduler is off or shutting down.
    pub fn write_page_back(
        &self,
        dev: DeviceId,
        rel: RelId,
        blkno: u64,
        buf: &[u8],
    ) -> DbResult<()> {
        if let Some(q) = self.io_queue(dev) {
            if q.submit_write(rel, blkno, buf) {
                return Ok(());
            }
        }
        self.write_page(dev, rel, blkno, buf)
    }

    /// Writes a page through the switch, recording per-device counters and
    /// simulated latency when stats are attached.
    pub fn write_page(&self, dev: DeviceId, rel: RelId, blkno: u64, buf: &[u8]) -> DbResult<()> {
        debug_assert!(
            !crate::lock::order::is_held(crate::lock::order::BUFFER_SHARD),
            "device write while holding a buffer shard latch"
        );
        // The synchronous write supersedes any prefetched bytes the
        // scheduler still holds for this page.
        if let Some(q) = self.io_queue(dev) {
            q.invalidate_page(rel, blkno);
        }
        match &self.instr {
            Some((clock, stats)) => {
                let (r, took) = clock.timed(|| self.with(dev, |m| m.write(rel, blkno, buf)));
                let d = stats.device(dev);
                d.writes.bump();
                d.write_ns.add(took.as_nanos());
                d.write_hist.record(took.as_nanos());
                r
            }
            None => self.with(dev, |m| m.write(rel, blkno, buf)),
        }
    }

    /// Appends a blank page through the switch, counted as a write (the
    /// block's contents reach the device at first flush).
    pub fn extend_page(&self, dev: DeviceId, rel: RelId) -> DbResult<u64> {
        debug_assert!(
            !crate::lock::order::is_held(crate::lock::order::BUFFER_SHARD),
            "device extend while holding a buffer shard latch"
        );
        match &self.instr {
            Some((clock, stats)) => {
                let (r, took) = clock.timed(|| self.with(dev, |m| m.extend_blank(rel)));
                let d = stats.device(dev);
                d.writes.bump();
                d.write_ns.add(took.as_nanos());
                d.write_hist.record(took.as_nanos());
                r
            }
            None => self.with(dev, |m| m.extend_blank(rel)),
        }
    }

    /// Syncs every registered device. Checkpoint/shutdown-grade: the commit
    /// path uses the scoped [`Smgr::sync_devices`] instead.
    pub fn sync_all(&self) -> DbResult<()> {
        let devs = self.devices();
        self.sync_devices(&devs)
    }

    /// Syncs exactly the listed devices — the scoped force a commit issues
    /// for the devices its dirty set actually touched. `devs` should be
    /// deduplicated by the caller; unknown ids are an error. With the
    /// scheduler on this is a *queue barrier* first: every write submitted
    /// before this call reaches the device before the manager `sync()` runs.
    pub fn sync_devices(&self, devs: &[DeviceId]) -> DbResult<()> {
        for &dev in devs {
            if let Some(q) = self.io_queue(dev) {
                q.barrier()?;
            }
            self.with(dev, |m| m.sync())?;
        }
        Ok(())
    }
}

impl Default for Smgr {
    fn default() -> Self {
        Smgr::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{DiskProfile, JukeboxProfile, MagneticDisk, OpticalJukebox, SimClock};

    fn disk_mgr() -> GenericManager {
        let clock = SimClock::new();
        let dev = shared_device(MagneticDisk::new(
            "d",
            clock,
            DiskProfile::tiny_for_tests(4096),
        ));
        GenericManager::format(dev).unwrap()
    }

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; simdev::BLOCK_SIZE]
    }

    #[test]
    fn create_extend_read_write() {
        let mut m = disk_mgr();
        let rel = Oid(100);
        m.create_rel(rel).unwrap();
        assert_eq!(m.nblocks(rel).unwrap(), 0);
        assert_eq!(m.extend(rel, &page_of(1)).unwrap(), 0);
        assert_eq!(m.extend(rel, &page_of(2)).unwrap(), 1);
        assert_eq!(m.nblocks(rel).unwrap(), 2);
        let mut buf = page_of(0);
        m.read(rel, 1, &mut buf).unwrap();
        assert_eq!(buf, page_of(2));
        m.write(rel, 0, &page_of(9)).unwrap();
        m.read(rel, 0, &mut buf).unwrap();
        assert_eq!(buf, page_of(9));
    }

    #[test]
    fn double_create_rejected() {
        let mut m = disk_mgr();
        m.create_rel(Oid(5)).unwrap();
        assert!(matches!(
            m.create_rel(Oid(5)),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn read_beyond_end_rejected() {
        let mut m = disk_mgr();
        m.create_rel(Oid(5)).unwrap();
        let mut buf = page_of(0);
        assert!(m.read(Oid(5), 0, &mut buf).is_err());
    }

    #[test]
    fn unknown_rel_rejected() {
        let mut m = disk_mgr();
        let mut buf = page_of(0);
        assert!(matches!(
            m.read(Oid(77), 0, &mut buf),
            Err(DbError::NotFound(_))
        ));
        assert!(m.nblocks(Oid(77)).is_err());
        assert!(m.drop_rel(Oid(77)).is_err());
    }

    #[test]
    fn metadata_survives_reattach() {
        let clock = SimClock::new();
        let dev = shared_device(MagneticDisk::new(
            "d",
            clock,
            DiskProfile::tiny_for_tests(4096),
        ));
        {
            let mut m = GenericManager::format(dev.clone()).unwrap();
            m.create_rel(Oid(42)).unwrap();
            m.extend(Oid(42), &page_of(7)).unwrap();
            m.sync().unwrap();
        }
        let mut m = GenericManager::attach(dev).unwrap();
        assert!(m.has_rel(Oid(42)));
        assert_eq!(m.nblocks(Oid(42)).unwrap(), 1);
        let mut buf = page_of(0);
        m.read(Oid(42), 0, &mut buf).unwrap();
        assert_eq!(buf, page_of(7));
    }

    #[test]
    fn attach_unformatted_fails() {
        let clock = SimClock::new();
        let dev = shared_device(MagneticDisk::new(
            "d",
            clock,
            DiskProfile::tiny_for_tests(256),
        ));
        assert!(GenericManager::attach(dev).is_err());
    }

    #[test]
    fn two_relations_are_isolated() {
        let mut m = disk_mgr();
        m.create_rel(Oid(1)).unwrap();
        m.create_rel(Oid(2)).unwrap();
        m.extend(Oid(1), &page_of(1)).unwrap();
        m.extend(Oid(2), &page_of(2)).unwrap();
        m.write(Oid(1), 0, &page_of(11)).unwrap();
        let mut buf = page_of(0);
        m.read(Oid(2), 0, &mut buf).unwrap();
        assert_eq!(buf, page_of(2));
    }

    fn jukebox_mgr(cache_blocks: u64) -> JukeboxManager {
        let clock = SimClock::new();
        let jb = shared_device(OpticalJukebox::new(
            "jb",
            clock.clone(),
            JukeboxProfile::tiny_for_tests(),
        ));
        let st = shared_device(MagneticDisk::new(
            "st",
            clock,
            DiskProfile::tiny_for_tests(4096),
        ));
        JukeboxManager::format(
            jb,
            st,
            JukeboxConfig {
                extent_pages: 4,
                cache_blocks,
            },
        )
        .unwrap()
    }

    #[test]
    fn jukebox_roundtrip_through_staging() {
        let mut m = jukebox_mgr(8);
        let rel = Oid(9);
        m.create_rel(rel).unwrap();
        for i in 0..3 {
            m.extend(rel, &page_of(i)).unwrap();
        }
        let mut buf = page_of(0);
        for i in 0..3u8 {
            m.read(rel, i as u64, &mut buf).unwrap();
            assert_eq!(buf, page_of(i), "block {i}");
        }
    }

    #[test]
    fn jukebox_eviction_burns_and_rereads() {
        // Cache of 2 blocks forces eviction to the platter.
        let mut m = jukebox_mgr(2);
        let rel = Oid(9);
        m.create_rel(rel).unwrap();
        for i in 0..5 {
            m.extend(rel, &page_of(i)).unwrap();
        }
        let mut buf = page_of(0);
        for i in 0..5u8 {
            m.read(rel, i as u64, &mut buf).unwrap();
            assert_eq!(buf, page_of(i), "block {i}");
        }
    }

    #[test]
    fn jukebox_rewrite_of_burned_block_remaps() {
        let mut m = jukebox_mgr(2);
        let rel = Oid(9);
        m.create_rel(rel).unwrap();
        m.extend(rel, &page_of(1)).unwrap();
        m.sync().unwrap(); // burn block 0
                           // Evict it from staging by filling the cache.
        for i in 0..4 {
            m.extend(rel, &page_of(10 + i)).unwrap();
        }
        // Rewrite logical block 0: must remap, not violate write-once.
        m.write(rel, 0, &page_of(99)).unwrap();
        let mut buf = page_of(0);
        m.read(rel, 0, &mut buf).unwrap();
        assert_eq!(buf, page_of(99));
        m.sync().unwrap();
        m.read(rel, 0, &mut buf).unwrap();
        assert_eq!(buf, page_of(99));
    }

    #[test]
    fn jukebox_metadata_survives_reattach() {
        let clock = SimClock::new();
        let jb = shared_device(OpticalJukebox::new(
            "jb",
            clock.clone(),
            JukeboxProfile::tiny_for_tests(),
        ));
        let st = shared_device(MagneticDisk::new(
            "st",
            clock,
            DiskProfile::tiny_for_tests(4096),
        ));
        let cfg = JukeboxConfig {
            extent_pages: 4,
            cache_blocks: 8,
        };
        {
            let mut m = JukeboxManager::format(jb.clone(), st.clone(), cfg.clone()).unwrap();
            m.create_rel(Oid(3)).unwrap();
            m.extend(Oid(3), &page_of(5)).unwrap();
            m.sync().unwrap();
        }
        let mut m = JukeboxManager::attach(jb, st, cfg).unwrap();
        assert_eq!(m.nblocks(Oid(3)).unwrap(), 1);
        let mut buf = page_of(0);
        m.read(Oid(3), 0, &mut buf).unwrap();
        assert_eq!(buf, page_of(5));
    }

    #[test]
    fn switch_routes_by_device() {
        let mut smgr = Smgr::new();
        smgr.register(DeviceId(0), Box::new(disk_mgr())).unwrap();
        smgr.register(DeviceId(1), Box::new(jukebox_mgr(8)))
            .unwrap();
        assert_eq!(smgr.devices(), vec![DeviceId(0), DeviceId(1)]);
        smgr.with(DeviceId(0), |m| m.create_rel(Oid(1))).unwrap();
        smgr.with(DeviceId(1), |m| m.create_rel(Oid(1))).unwrap();
        assert!(smgr.with(DeviceId(2), |m| m.create_rel(Oid(1))).is_err());
        assert!(matches!(
            smgr.register(DeviceId(0), Box::new(disk_mgr())),
            Err(DbError::AlreadyExists(_))
        ));
        smgr.sync_all().unwrap();
    }

    #[test]
    fn relmap_encoding_roundtrips() {
        let mut map = RelMap {
            next_free: 99,
            rels: HashMap::new(),
        };
        map.rels.insert(Oid(1), vec![64, 65, 70]);
        map.rels.insert(Oid(2), vec![]);
        let dec = RelMap::decode(&map.encode()).unwrap();
        assert_eq!(dec.next_free, 99);
        assert_eq!(dec.rels, map.rels);
        assert!(RelMap::decode(&[1, 2, 3]).is_err());
    }
}
