//! The database facade: devices, catalogs, transactions, sessions.
//!
//! [`Db`] wires together the buffer cache, device manager switch,
//! transaction status file, lock manager, catalog, and function registry.
//! [`Session`] is one client's view: it carries a transaction (or a
//! historical snapshot) and exposes tuple-level operations; the query
//! language (see [`crate::query`]) executes against a session.
//!
//! # Commit protocol
//!
//! Commit is *no-force*: no data page is written at commit. Every page
//! mutation already appended a physiological REDO record to the
//! [`crate::wal`], so commit appends a `Commit` record and forces the log
//! tail once — that force is the commit point. Concurrent committers batch
//! their records through the group-commit coordinator
//! ([`DbConfig::group_commit_window`]) so one log force commits them all;
//! the in-memory status-file entry is marked only after the force
//! succeeds, and reaches the on-device status file lazily, at checkpoints.
//! Dirty data pages drain through the background checkpointer, which then
//! truncates the log. Crash recovery is reopening the database
//! ([`Db::recover`]): the log is scanned once, transaction outcomes are
//! re-applied from `Commit`/`Abort` records, and page records replay
//! *on first touch* of each stale page while new sessions run — the
//! paper's "essentially instantaneous" recovery.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard};
use simdev::{DiskProfile, MagneticDisk, SimClock, SimDuration, SimInstant};

use crate::btree::BTree;
use crate::buffer::{BufferPool, DirtyScope, DEFAULT_BUFFERS};
use crate::catalog::{Catalog, IndexInfo, ProcEntry, RelKind, RelationEntry, RuleEntry};
use crate::datum::{decode_row, Datum, Row, Schema, TypeId};
use crate::error::{DbError, DbResult};
use crate::funcs::{FuncDef, FunctionRegistry};
use crate::heap::Heap;
use crate::ids::{DeviceId, RelId, Tid, XactId};
use crate::lock::{LockManager, LockMode};
use crate::recovery::Redo;
use crate::smgr::{read_meta, shared_device, write_meta, GenericManager, SharedDevice, Smgr};
use crate::wal::{Wal, WalRecord};
use crate::stats::{
    DeviceIoStats, StatsRegistry, StatsSnapshot, VirtualRowsFn, VirtualTable, VirtualTables,
};
use crate::xact::{GroupCommitter, PendingRecord, Snapshot, XactLog, XactState};

/// Tunables for a [`Db`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer cache size in 8 KB frames (POSTGRES shipped with 64).
    pub buffers: usize,
    /// Lock wait timeout backstop.
    pub lock_timeout: Duration,
    /// When the buffer pool is under replacement pressure, write B-tree
    /// pages through to the device as index entries are added, as
    /// POSTGRES 4.0.1's buffer manager did. This is the behaviour behind
    /// the paper's create-time result: "Btree writes are interleaved with
    /// data file writes, penalizing Inversion by forcing the disk head to
    /// move frequently." Transactions whose working set fits in the pool
    /// still coalesce index writes to commit. Disable for an ablation.
    pub eager_index_writes: bool,
    /// Blocks of sequential read-ahead past a detected scan run
    /// (0 disables prefetching).
    pub prefetch_window: usize,
    /// How long (virtual time) a commit batch leader holds the window open
    /// for concurrent committers before forcing the shared log sync. Zero
    /// disables group commit: every transaction forces its own commit
    /// record.
    pub group_commit_window: SimDuration,
    /// How often (virtual time) the background checkpointer drains dirty
    /// pages and truncates the log, absent log-space pressure. Pressure
    /// (the log epoch passing half its region) wakes it regardless.
    pub checkpoint_interval: SimDuration,
    /// How many unforced log bytes may accumulate before an append forces
    /// the log inline, bounding what one force has to write. Zero lets the
    /// buffer grow until a commit or page writeback forces it.
    pub wal_buffer_size: usize,
    /// Per-device asynchronous I/O queue depth: how many write-behind
    /// requests may be pending on one device before submitters are
    /// throttled. Zero disables the scheduler entirely — every read and
    /// writeback is synchronous in the caller, as before.
    pub io_queue_depth: usize,
    /// Blocks allocated per relation extent on the generic disk manager.
    /// Values > 1 lay relations out in sequential runs so the simulated
    /// disk's seek model rewards scans; 1 reproduces the old
    /// block-at-a-time bump allocator.
    pub extent_size: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffers: DEFAULT_BUFFERS,
            lock_timeout: Duration::from_secs(10),
            eager_index_writes: true,
            prefetch_window: crate::buffer::DEFAULT_PREFETCH_WINDOW,
            group_commit_window: SimDuration::from_micros(50),
            checkpoint_interval: SimDuration::from_millis(100),
            wal_buffer_size: 256 * 1024,
            io_queue_depth: 64,
            extent_size: 16,
        }
    }
}

/// Shared state between a database and its background checkpointer thread.
/// Lives in its own `Arc` so the thread can park on the condvar holding
/// only a [`Weak`] reference to the database itself.
struct CheckpointState {
    /// Serializes checkpoint cycles (the thread vs. explicit
    /// [`Db::checkpoint`] calls). Rank: `checkpointer`.
    cycle: Mutex<()>,
    /// The background thread's handle, joined on shutdown.
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Wake flag the thread sleeps on (leaf mutex: nothing is acquired
    /// while it is held).
    wake: Mutex<bool>,
    cv: Condvar,
    /// Tells the thread to exit.
    stop: AtomicBool,
    /// Set by [`Db::simulate_crash`]: shutdown must not write anything.
    crashed: AtomicBool,
    /// Virtual time of the last completed checkpoint.
    last: Mutex<SimInstant>,
}

impl CheckpointState {
    fn new(now: SimInstant) -> Arc<CheckpointState> {
        Arc::new(CheckpointState {
            cycle: Mutex::new(()),
            thread: Mutex::new(None),
            wake: Mutex::new(false),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            last: Mutex::new(now),
        })
    }

    fn signal(&self) {
        let mut wake = self.wake.lock();
        *wake = true;
        self.cv.notify_all();
    }
}

pub(crate) struct DbInner {
    pub(crate) config: DbConfig,
    pub(crate) clock: SimClock,
    pub(crate) pool: BufferPool,
    pub(crate) smgr: Smgr,
    pub(crate) xlog: XactLog,
    pub(crate) locks: LockManager,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) funcs: FunctionRegistry,
    pub(crate) stats: Arc<StatsRegistry>,
    pub(crate) virtuals: VirtualTables,
    pub(crate) committer: GroupCommitter,
    pub(crate) wal: Arc<Wal>,
    pub(crate) redo: Arc<Redo>,
    ckpt: Arc<CheckpointState>,
    catalog_dev: SharedDevice,
}

impl DbInner {
    /// Wakes the checkpointer when the log is under space pressure or the
    /// checkpoint interval has elapsed — called from the write paths, so a
    /// long transaction's log appetite triggers draining mid-transaction.
    pub(crate) fn maybe_signal_checkpoint(&self) {
        let due = {
            let interval = self.config.checkpoint_interval;
            interval.as_nanos() > 0
                && self.clock.now().since(*self.ckpt.last.lock()) >= interval
        };
        if self.wal.over_pressure() || due {
            self.ckpt.signal();
        }
    }
}

impl Drop for DbInner {
    fn drop(&mut self) {
        self.ckpt.stop.store(true, SeqCst);
        self.ckpt.signal();
        let handle = self.ckpt.thread.lock().take();
        if let Some(h) = handle {
            // The last reference can die on the checkpointer thread itself
            // (it upgrades its Weak during a cycle); never self-join.
            if h.thread().id() != std::thread::current().id() {
                h.join().ok();
            }
        }
        if !self.ckpt.crashed.load(SeqCst) {
            // Clean shutdown: one final drain leaves every page durable and
            // the log empty. Best effort — recovery replays whatever this
            // misses.
            Db::checkpoint_cycle(self).ok();
        }
    }
}

/// A database instance. Cheap to clone; clones share everything.
#[derive(Clone)]
pub struct Db {
    pub(crate) inner: Arc<DbInner>,
}

impl Db {
    /// Opens a *fresh* database over an already-populated device switch.
    ///
    /// `log_dev` holds the transaction status file and `catalog_dev` the
    /// serialized catalog; both must be dedicated (the first blocks are
    /// overwritten).
    pub fn open(
        clock: SimClock,
        mut smgr: Smgr,
        log_dev: SharedDevice,
        catalog_dev: SharedDevice,
        config: DbConfig,
    ) -> DbResult<Db> {
        let xlog = XactLog::create(log_dev.clone())?;
        let stats = Arc::new(StatsRegistry::new());
        let wal = Arc::new(Wal::create(log_dev, Arc::clone(&stats))?);
        wal.set_buffer_cap(config.wal_buffer_size as u64);
        let redo = Arc::new(Redo::empty(Arc::clone(&stats)));
        smgr.attach_stats(clock.clone(), Arc::clone(&stats));
        smgr.attach_redo(Arc::clone(&redo));
        for dev in smgr.devices() {
            smgr.with(dev, |m| {
                m.set_extent_size(config.extent_size);
                Ok(())
            })?;
        }
        smgr.start_io(config.io_queue_depth);
        let mut locks = LockManager::with_timeout(config.lock_timeout);
        locks.share_stats(Arc::clone(&stats));
        let pool = BufferPool::new(config.buffers);
        pool.set_prefetch_window(config.prefetch_window);
        pool.attach_wal(Arc::clone(&wal));
        let committer = GroupCommitter::new(clock.clone(), config.group_commit_window);
        let ckpt = CheckpointState::new(clock.now());
        let db = Db {
            inner: Arc::new(DbInner {
                clock,
                pool,
                smgr,
                xlog,
                locks,
                catalog: RwLock::new(Catalog::new()),
                funcs: FunctionRegistry::with_builtins(),
                stats,
                virtuals: VirtualTables::new(),
                committer,
                wal,
                redo,
                ckpt,
                catalog_dev,
                config,
            }),
        };
        db.persist_catalog()?;
        db.spawn_checkpointer();
        Ok(db)
    }

    /// Reopens a database after a shutdown or crash.
    ///
    /// This *is* crash recovery: "no special boot-time file system check
    /// program needs to be run". The caller re-attaches device managers
    /// (e.g. [`GenericManager::attach`]) into `smgr` and passes the same log
    /// and catalog devices.
    pub fn recover(
        clock: SimClock,
        mut smgr: Smgr,
        log_dev: SharedDevice,
        catalog_dev: SharedDevice,
        config: DbConfig,
    ) -> DbResult<Db> {
        let xlog = XactLog::recover(log_dev.clone())?;
        let cat_bytes = read_meta(&catalog_dev, 0)?
            .ok_or_else(|| DbError::Corrupt("no catalog found on catalog device".into()))?;
        let catalog = Catalog::decode(&cat_bytes)?;
        let stats = Arc::new(StatsRegistry::new());
        let (wal, records) = Wal::recover(log_dev, Arc::clone(&stats))?;
        let wal = Arc::new(wal);
        wal.set_buffer_cap(config.wal_buffer_size as u64);
        // Transaction outcomes come from the log, not the status file: the
        // forced `Commit` record *is* the commit point, and the on-device
        // status file only reflects outcomes up to the last checkpoint.
        for (_end, rec) in &records {
            match rec {
                WalRecord::Commit { xid, time_ns } => xlog.apply_recovered(
                    *xid,
                    XactState::Committed(SimInstant::from_nanos(*time_ns)),
                ),
                WalRecord::Abort { xid } => xlog.apply_recovered(*xid, XactState::Aborted),
                _ => {}
            }
        }
        let redo = Arc::new(Redo::from_records(&records, Arc::clone(&stats)));
        // Allocation fixup: a logged page may lie past the relation's
        // current end (the extension never hit the disk) — extend with
        // blank blocks so first-touch replay finds a readable page. Pages
        // of relations dropped after their records were logged (DDL is not
        // logged; the durable catalog is authoritative) are unreachable —
        // forget them rather than resurrect storage.
        for (dev, rel, blkno) in redo.pages() {
            let present = smgr.devices().contains(&dev)
                && smgr.with(dev, |m| Ok(m.has_rel(rel)))?;
            if !present {
                redo.forget((dev, rel, blkno));
                continue;
            }
            smgr.with(dev, |m| {
                let mut n = m.nblocks(rel)?;
                while n <= blkno {
                    m.extend_blank(rel)?;
                    n += 1;
                }
                Ok(())
            })?;
        }
        smgr.attach_stats(clock.clone(), Arc::clone(&stats));
        smgr.attach_redo(Arc::clone(&redo));
        for dev in smgr.devices() {
            smgr.with(dev, |m| {
                m.set_extent_size(config.extent_size);
                Ok(())
            })?;
        }
        smgr.start_io(config.io_queue_depth);
        let mut locks = LockManager::with_timeout(config.lock_timeout);
        locks.share_stats(Arc::clone(&stats));
        let pool = BufferPool::new(config.buffers);
        pool.set_prefetch_window(config.prefetch_window);
        pool.attach_wal(Arc::clone(&wal));
        let committer = GroupCommitter::new(clock.clone(), config.group_commit_window);
        let ckpt = CheckpointState::new(clock.now());
        let db = Db {
            inner: Arc::new(DbInner {
                clock,
                pool,
                smgr,
                xlog,
                locks,
                catalog: RwLock::new(catalog),
                funcs: FunctionRegistry::with_builtins(),
                stats,
                virtuals: VirtualTables::new(),
                committer,
                wal,
                redo,
                ckpt,
                catalog_dev,
                config,
            }),
        };
        db.spawn_checkpointer();
        Ok(db)
    }

    /// Opens a small self-contained database on fast in-memory disks —
    /// the zero-ceremony constructor for tests, examples and doctests.
    pub fn open_in_memory() -> DbResult<Db> {
        Db::open_in_memory_with(DbConfig::default())
    }

    /// [`Db::open_in_memory`] with explicit tunables (pool size, prefetch
    /// window, …) — for tests that need a specific cache configuration.
    pub fn open_in_memory_with(config: DbConfig) -> DbResult<Db> {
        let clock = SimClock::new();
        let data = shared_device(MagneticDisk::new(
            "data",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 17),
        ));
        let log = shared_device(MagneticDisk::new(
            "log",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let cat = shared_device(MagneticDisk::new(
            "catalog",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let mut smgr = Smgr::new();
        smgr.register(DeviceId::DEFAULT, Box::new(GenericManager::format(data)?))?;
        Db::open(clock, smgr, log, cat, config)
    }

    /// Hints the buffer cache to read `count` blocks of `rel` ahead,
    /// starting at `start`. Used by large-object readers that know they are
    /// about to walk a relation sequentially; errors are swallowed (it is
    /// only a hint).
    pub fn prefetch_relation(&self, rel: RelId, start: u64, count: usize) {
        let dev = match self.inner.catalog.read().relation(rel) {
            Ok(entry) => entry.device,
            Err(_) => return,
        };
        self.inner.pool.prefetch(&self.inner.smgr, dev, rel, start, count);
    }

    /// The simulated clock shared with the devices.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.inner.clock.now()
    }

    /// The function implementation registry (register Rust callables here).
    pub fn functions(&self) -> &FunctionRegistry {
        &self.inner.funcs
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.inner.catalog.read()
    }

    /// Runs every structural-integrity check (catalog, status log, heaps,
    /// B-trees, and both index ↔ heap cross-references) and returns the
    /// findings. An intact database returns an empty vector; the same rows
    /// are visible through the `pg_check` virtual relation.
    pub fn check_all(&self) -> Vec<crate::check::Finding> {
        crate::check::check_all(self)
    }

    /// Buffer cache statistics.
    pub fn buffer_stats(&self) -> crate::buffer::BufferStats {
        self.inner.pool.stats()
    }

    /// Total relation locks currently held across all transactions — zero
    /// once every session has ended (the no-leaked-locks invariant the
    /// server disconnect tests assert).
    pub fn held_lock_count(&self) -> usize {
        self.inner.locks.held_lock_count()
    }

    /// The live counter registry every layer reports into.
    pub fn stats_registry(&self) -> &StatsRegistry {
        &self.inner.stats
    }

    /// A frozen, consistent-enough copy of every counter the engine keeps:
    /// buffer cache, locks, transactions, access methods, and per-device
    /// I/O with simulated-latency histograms. Cheap (relaxed atomic loads);
    /// safe to call from any thread at any time.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::from_registry(&self.inner.stats);
        snap.buffer = self.inner.pool.stats();
        snap.devices = self
            .inner
            .smgr
            .devices()
            .into_iter()
            .map(|dev| {
                let name = self
                    .inner
                    .smgr
                    .with(dev, |m| Ok(m.device_name()))
                    .unwrap_or_else(|_| dev.to_string());
                let c = self.inner.stats.device(dev);
                let q = self.inner.stats.io_queue(dev);
                DeviceIoStats {
                    device: dev.0,
                    name,
                    reads: c.reads.get(),
                    writes: c.writes.get(),
                    read_ns: c.read_ns.get(),
                    write_ns: c.write_ns.get(),
                    read_hist: c.read_hist.snapshot(),
                    write_hist: c.write_hist.snapshot(),
                    io_submitted: q.submitted.get(),
                    io_completed: q.completed.get(),
                    io_batched_neighbors: q.batched_neighbors.get(),
                    io_elevator_passes: q.elevator_passes.get(),
                    io_queue_depth_hw: q.queue_depth_hw.get(),
                    io_barrier_waits: q.barrier_waits.get(),
                }
            })
            .collect();
        snap
    }

    /// Registers a *virtual relation*: a read-only, query-visible relation
    /// whose rows are produced by `rows` at scan time instead of being
    /// stored. The POSTQUEL executor consults these (after the built-in
    /// `pg_stat_*` relations) before the catalog, so `retrieve (x.col)
    /// from x in <name>` works without any heap backing. Inversion uses
    /// this for its `inv_stat` relation.
    pub fn register_virtual(&self, name: &str, schema: Schema, rows: VirtualRowsFn) {
        self.inner.virtuals.register(name, schema, rows);
    }

    /// Looks up a registered virtual relation by name.
    pub fn virtual_table(&self, name: &str) -> Option<VirtualTable> {
        self.inner.virtuals.get(name)
    }

    /// Allocates a fresh object identifier (persisted with the catalog).
    pub fn alloc_oid(&self) -> DbResult<crate::ids::Oid> {
        let oid = self.inner.catalog.write().alloc_oid();
        self.persist_catalog()?;
        Ok(oid)
    }

    /// Serializes the catalog to its device.
    pub fn persist_catalog(&self) -> DbResult<()> {
        let bytes = self.inner.catalog.read().encode();
        write_meta(&self.inner.catalog_dev, 0, &bytes)?;
        self.inner.catalog_dev.lock().sync()?;
        Ok(())
    }

    /// Flushes and empties every cache (buffer pool, device managers) —
    /// the benchmark's "all caches were flushed before each test". Runs a
    /// checkpoint first so the cleared pages' log records are not needed.
    pub fn flush_caches(&self) -> DbResult<()> {
        self.checkpoint()?;
        self.inner.pool.flush_and_clear(&self.inner.smgr)?;
        self.inner.smgr.sync_all()
    }

    /// Runs one checkpoint cycle now, on the calling thread: drain every
    /// dirty page, persist transaction outcomes, truncate the log.
    pub fn checkpoint(&self) -> DbResult<()> {
        Self::checkpoint_cycle(&self.inner)
    }

    /// Drops the database abruptly, as a crash would: the background
    /// checkpointer stops and the shutdown path is forbidden from writing
    /// anything (no final checkpoint). Crash tests call this before
    /// dropping the [`Db`] and discarding the devices' volatile caches.
    pub fn simulate_crash(&self) {
        self.inner.ckpt.crashed.store(true, SeqCst);
        self.inner.ckpt.stop.store(true, SeqCst);
        // Abort the I/O scheduler *before* joining the checkpointer: it may
        // be blocked in a queue barrier, and the abort is what unblocks it
        // (with an error). Queued-but-unwritten pages die here, exactly as
        // a crash with requests in flight would lose them.
        self.inner.smgr.io_abort();
        self.inner.ckpt.signal();
        let handle = self.inner.ckpt.thread.lock().take();
        if let Some(h) = handle {
            h.join().ok();
        }
    }

    /// Pauses or resumes the device workers — torture tests use this to
    /// pin requests in the queue while they arrange a crash.
    pub fn pause_io(&self, paused: bool) {
        self.inner.smgr.io_pause(paused);
    }

    /// Requests currently queued in the I/O scheduler across all devices
    /// (zero when the scheduler is disabled).
    pub fn io_queue_depth(&self) -> usize {
        self.inner.smgr.io_depth()
    }

    /// Waits until every queued I/O request has reached its device (a
    /// barrier on every queue, plus a device sync). Benchmarks call this at
    /// measurement boundaries so asynchronous tails are charged to the
    /// window that caused them.
    pub fn drain_io(&self) -> DbResult<()> {
        self.inner.smgr.sync_all()
    }

    /// One checkpoint cycle. The ordering is the whole correctness
    /// argument:
    ///
    /// 1. Capture the truncation cut — the log's append horizon *now*.
    ///    Every record below the cut stamped its page and marked it dirty
    ///    before this instant, and every commit below it is marked in the
    ///    in-memory status file.
    /// 2. Sweep the pending-REDO map: touching each page runs first-touch
    ///    replay, and dirty-marking it puts it in the flush set.
    /// 3. Flush every dirty page (LSN-before-write forces the log first)
    ///    and sync the data devices — now every record below the cut is
    ///    reflected in durable pages.
    /// 4. Persist the status file's dirty blocks — now every commit below
    ///    the cut is durable there.
    /// 5. Truncate `[epoch, cut)`. Records at or above the cut (appended
    ///    while we flushed) survive in the log.
    fn checkpoint_cycle(inner: &DbInner) -> DbResult<()> {
        let _order = crate::lock::order::token(crate::lock::order::CHECKPOINTER);
        let _cycle = inner.ckpt.cycle.lock();
        let cut = inner.wal.next_lsn();
        for (dev, rel, blkno) in inner.redo.pages() {
            let present = inner.smgr.devices().contains(&dev)
                && inner.smgr.with(dev, |m| Ok(m.has_rel(rel)))?;
            if !present {
                // Dropped since recovery indexed it; nothing to sweep.
                inner.redo.forget((dev, rel, blkno));
                continue;
            }
            let frame = inner.pool.get_page(&inner.smgr, dev, rel, blkno)?;
            let _fl = crate::lock::order::token(crate::lock::order::BUFFER_FRAME);
            let mut guard = frame.write();
            // Replay ran inside the read; dirty-mark so the flush below
            // writes the replayed image out.
            guard.data_mut();
        }
        let drained = inner.pool.flush_all(&inner.smgr)?;
        inner.stats.wal.ckpt_pages_drained.add(drained as u64);
        inner.smgr.sync_all()?;
        inner.xlog.persist_dirty()?;
        inner.wal.truncate_to(cut)?;
        inner.redo.clear();
        inner.stats.wal.checkpoints.bump();
        *inner.ckpt.last.lock() = inner.clock.now();
        Ok(())
    }

    /// Starts the background checkpointer. It parks on a condvar; the
    /// write paths signal it on log-space pressure or when the checkpoint
    /// interval has elapsed ([`DbInner::maybe_signal_checkpoint`]).
    fn spawn_checkpointer(&self) {
        let weak = Arc::downgrade(&self.inner);
        let ckpt = Arc::clone(&self.inner.ckpt);
        let spawned = std::thread::Builder::new()
            .name("checkpointer".into())
            .spawn(move || Self::checkpointer_loop(weak, ckpt));
        // A spawn failure (OS thread exhaustion) degrades gracefully: pages
        // drain through explicit checkpoints and eviction instead, and
        // recovery replays whatever never drained.
        if let Ok(handle) = spawned {
            *self.inner.ckpt.thread.lock() = Some(handle);
        }
    }

    fn checkpointer_loop(weak: Weak<DbInner>, ckpt: Arc<CheckpointState>) {
        loop {
            {
                let mut wake = ckpt.wake.lock();
                while !*wake && !ckpt.stop.load(SeqCst) {
                    ckpt.cv.wait(&mut wake);
                }
                *wake = false;
            }
            if ckpt.stop.load(SeqCst) {
                return;
            }
            // Holding only a Weak while parked lets the database die while
            // the thread sleeps; holding an Arc only inside a cycle means
            // the final drop (and its join) can land on this thread — the
            // shutdown path self-join-guards for exactly that.
            let Some(inner) = weak.upgrade() else { return };
            Self::checkpoint_cycle(&inner).ok();
        }
    }

    /// Creates a heap table on the default device.
    pub fn create_table(&self, name: &str, schema: Schema) -> DbResult<RelId> {
        self.create_table_on(name, schema, DeviceId::DEFAULT, false)
    }

    /// Creates a heap table on a chosen device; `no_history` asks the vacuum
    /// cleaner to discard (not archive) dead versions.
    pub fn create_table_on(
        &self,
        name: &str,
        schema: Schema,
        dev: DeviceId,
        no_history: bool,
    ) -> DbResult<RelId> {
        let id = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let mut cat = self.inner.catalog.write();
            let id = cat.alloc_oid();
            cat.add_relation(RelationEntry {
                id,
                name: name.to_string(),
                kind: RelKind::Heap,
                device: dev,
                schema,
                index: None,
                indexes: vec![],
                archive: None,
                no_history,
            })?;
            id
        };
        // Make the relation durable on its device *before* the catalog
        // entry: a crash in between leaves an unreferenced (harmless)
        // device relation, never a catalog entry pointing at nothing.
        if let Err(e) = self.inner.smgr.with(dev, |m| {
            m.create_rel(id)?;
            m.sync()
        }) {
            self.inner.catalog.write().remove_relation(id).ok();
            return Err(e);
        }
        self.persist_catalog()?;
        Ok(id)
    }

    /// Creates a B-tree index named `name` on `table(columns...)`, on the
    /// same device as the table, backfilling entries for every existing
    /// tuple version (historical versions stay reachable through it).
    pub fn create_index(&self, name: &str, table: RelId, columns: &[&str]) -> DbResult<RelId> {
        let (dev, key_columns) = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.inner.catalog.read();
            let t = cat.relation(table)?;
            if t.kind != RelKind::Heap {
                return Err(DbError::Invalid(format!("{name}: {table} is not a heap")));
            }
            let mut key_columns = Vec::with_capacity(columns.len());
            for c in columns {
                key_columns.push(t.schema.column_index(c).ok_or_else(|| {
                    DbError::NotFound(format!("column \"{c}\" of \"{}\"", t.name))
                })?);
            }
            (t.device, key_columns)
        };
        let id = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let mut cat = self.inner.catalog.write();
            let id = cat.alloc_oid();
            cat.add_relation(RelationEntry {
                id,
                name: name.to_string(),
                kind: RelKind::BTreeIndex,
                device: dev,
                schema: Schema::default(),
                index: Some(IndexInfo {
                    table,
                    key_columns: key_columns.clone(),
                }),
                indexes: vec![],
                archive: None,
                no_history: false,
            })?;
            cat.relation_mut(table)?.indexes.push(id);
            id
        };
        // Same ordering rule as create_table_on: device first, catalog
        // second, so the durable catalog never references a relation the
        // device has not heard of.
        self.inner.smgr.with(dev, |m| {
            m.create_rel(id)?;
            m.sync()
        })?;
        let bt = BTree {
            pool: &self.inner.pool,
            smgr: &self.inner.smgr,
            stats: &self.inner.stats,
            dev,
            rel: id,
            // Unlogged on purpose: the bulk build below flushes the relation
            // and syncs the device before the catalog advertises the index.
            wal: None,
        };
        bt.create()?;
        // Backfill from every tuple version in the heap.
        let heap = Heap {
            pool: &self.inner.pool,
            smgr: &self.inner.smgr,
            xlog: &self.inner.xlog,
            stats: &self.inner.stats,
            dev,
            rel: table,
            wal: None,
        };
        heap.scan_all_raw(|tid, _hdr, row_bytes| {
            let row = decode_row(row_bytes)?;
            let key: Vec<Datum> = key_columns.iter().map(|&i| row[i].clone()).collect();
            bt.insert(&key, tid)
        })?;
        // The index (meta page included) must be durable before the catalog
        // advertises it, or a crash leaves a catalogued index with no
        // on-disk structure.
        self.inner.pool.flush_rel(&self.inner.smgr, id)?;
        self.inner.smgr.sync_devices(&[dev])?;
        self.persist_catalog()?;
        Ok(id)
    }

    /// Drops a table (and its indices) or a single index.
    pub fn drop_relation(&self, name: &str) -> DbResult<()> {
        let entry = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.inner.catalog.read();
            cat.relation_by_name(name)?.clone()
        };
        let mut victims = vec![entry.clone()];
        if entry.kind == RelKind::Heap {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.inner.catalog.read();
            for &idx in &entry.indexes {
                victims.push(cat.relation(idx)?.clone());
            }
            if let Some(arch) = entry.archive {
                victims.push(cat.relation(arch)?.clone());
            }
        }
        // Mirror image of the create ordering: forget the relations in the
        // durable catalog first, then release their storage. A crash in
        // between orphans device storage (harmless) instead of leaving
        // catalog entries that point at nothing.
        {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let mut cat = self.inner.catalog.write();
            for v in &victims {
                cat.remove_relation(v.id)?;
            }
        }
        self.persist_catalog()?;
        for v in &victims {
            self.inner.pool.discard_rel(v.id);
            self.inner.smgr.invalidate_rel_io(v.device, v.id);
            self.inner.smgr.with(v.device, |m| m.drop_rel(v.id))?;
        }
        Ok(())
    }

    /// Registers a new file/database type (`define type` in the paper).
    pub fn define_type(&self, name: &str) -> DbResult<TypeId> {
        let id = self.inner.catalog.write().define_type(name)?;
        self.persist_catalog()?;
        Ok(id)
    }

    /// Registers a function definition; its implementation must be (or
    /// become) available in [`Db::functions`] under `impl_key`.
    pub fn define_function(
        &self,
        name: &str,
        nargs: usize,
        ret: TypeId,
        impl_key: &str,
        operates_on: Option<TypeId>,
    ) -> DbResult<()> {
        self.inner.catalog.write().define_proc(ProcEntry {
            name: name.to_string(),
            nargs,
            ret,
            impl_key: impl_key.to_string(),
            operates_on,
        })?;
        self.persist_catalog()
    }

    /// Registers a predicate rule (see [`crate::rules`]).
    pub fn define_rule(&self, rule: RuleEntry) -> DbResult<()> {
        self.inner.catalog.write().define_rule(rule)?;
        self.persist_catalog()
    }

    /// Resolves a function by query-language name to a callable.
    pub fn resolve_function(&self, name: &str) -> DbResult<FuncDef> {
        let (nargs, key) = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.inner.catalog.read();
            let p = cat.proc(name)?;
            (p.nargs, p.impl_key.clone())
        };
        Ok(FuncDef {
            name: name.to_string(),
            nargs,
            imp: self.inner.funcs.resolve(&key)?,
        })
    }

    /// Begins a read/write transaction.
    pub fn begin(&self) -> DbResult<Session> {
        let xid = self.inner.xlog.start()?;
        let mut active = self.inner.xlog.active_set();
        active.remove(&xid);
        Ok(Session {
            db: self.clone(),
            xid: Some(xid),
            snapshot: Snapshot::Current { xid, active },
            done: false,
            wrote: false,
            dirty: Vec::new(),
        })
    }

    /// Opens a read-only session onto the database as it was at `t` —
    /// fine-grained time travel.
    pub fn snapshot_at(&self, t: SimInstant) -> Session {
        Session {
            db: self.clone(),
            xid: None,
            snapshot: Snapshot::AsOf(t),
            done: false,
            wrote: false,
            dirty: Vec::new(),
        }
    }

    /// Looks up a relation id by name.
    pub fn relation_id(&self, name: &str) -> DbResult<RelId> {
        Ok(self.inner.catalog.read().relation_by_name(name)?.id)
    }

    /// The schema of a heap relation.
    pub fn schema_of(&self, rel: RelId) -> DbResult<Schema> {
        Ok(self.inner.catalog.read().relation(rel)?.schema.clone())
    }

    /// Finds an index of `table` whose key columns are exactly `cols`.
    pub fn find_index(&self, table: RelId, cols: &[usize]) -> Option<RelId> {
        let _order = crate::lock::order::token(crate::lock::order::CATALOG);
        let cat = self.inner.catalog.read();
        let t = cat.relation(table).ok()?;
        for &idx in &t.indexes {
            if let Ok(e) = cat.relation(idx) {
                if let Some(info) = &e.index {
                    if info.key_columns == cols {
                        return Some(idx);
                    }
                }
            }
        }
        None
    }

    /// Number of pages allocated to a heap relation. The count comes from
    /// the storage manager's in-memory block map, so reading it costs no
    /// device I/O — the planner uses it as its cardinality input.
    pub fn relation_pages(&self, rel: RelId) -> DbResult<u64> {
        let (dev, _) = self.heap_parts(rel)?;
        self.inner.smgr.with(dev, |m| m.nblocks(rel))
    }

    pub(crate) fn heap_parts(&self, rel: RelId) -> DbResult<HeapParts> {
        let _order = crate::lock::order::token(crate::lock::order::CATALOG);
        let cat = self.inner.catalog.read();
        let e = cat.relation(rel)?;
        if e.kind != RelKind::Heap {
            return Err(DbError::Invalid(format!("{rel} is not a heap")));
        }
        let mut indexes = Vec::new();
        for &idx in &e.indexes {
            let ie = cat.relation(idx)?;
            let info = ie
                .index
                .as_ref()
                .ok_or_else(|| DbError::Corrupt(format!("index {idx} without index info")))?;
            indexes.push((idx, info.key_columns.clone()));
        }
        Ok((e.device, indexes))
    }
}

/// A heap's device plus its indices with their key columns.
pub(crate) type HeapParts = (DeviceId, Vec<(RelId, Vec<usize>)>);

/// One client's transactional (or historical) view of a [`Db`].
pub struct Session {
    pub(crate) db: Db,
    xid: Option<XactId>,
    snapshot: Snapshot,
    done: bool,
    wrote: bool,
    /// (device, relation, block) of every page this transaction dirtied —
    /// recorded by [`DirtyScope`] around the write paths, unsorted and
    /// with duplicates. Commit flushes and syncs exactly this set.
    dirty: Vec<(DeviceId, RelId, u64)>,
}

impl Session {
    /// The owning database.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The session's transaction id, if it is a writing session.
    pub fn xid(&self) -> Option<XactId> {
        self.xid
    }

    /// The session's snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Whether this session can write.
    pub fn is_writable(&self) -> bool {
        !self.done && self.snapshot.is_writable()
    }

    fn writable_xid(&self) -> DbResult<XactId> {
        if self.done {
            return Err(DbError::NoTransaction);
        }
        self.xid.ok_or(DbError::ReadOnly)
    }

    fn lock(&self, rel: RelId, mode: LockMode) -> DbResult<()> {
        // Purely historical sessions read immutable versions: no locks.
        let Some(xid) = self.xid else { return Ok(()) };
        self.db.inner.locks.acquire(xid, rel, mode)
    }

    /// Takes `rel`'s exclusive lock ahead of a write, without touching any
    /// page. Write paths take this lock implicitly; taking it *before* an
    /// existence check lets the check run under [`Session::fresh_snapshot`]
    /// with no conflicting writer still in flight.
    pub fn lock_exclusive(&self, rel: RelId) -> DbResult<()> {
        self.writable_xid()?;
        self.lock(rel, LockMode::Exclusive)
    }

    /// A snapshot refreshed to the present: this transaction's own writes
    /// plus everything committed *by now*, not just by transaction start.
    /// Uniqueness-style checks ahead of a write must re-read under this
    /// (holding the relation's exclusive lock): the begin-time snapshot
    /// cannot see a conflicting row committed after this transaction
    /// began, so checking against it lets two sessions both conclude a
    /// key is free and both claim it (write skew on the check).
    pub fn fresh_snapshot(&self) -> Snapshot {
        match self.xid {
            Some(xid) => {
                let mut active = self.db.inner.xlog.active_set();
                active.remove(&xid);
                Snapshot::Current { xid, active }
            }
            None => self.snapshot.clone(),
        }
    }

    /// Like [`Session::lock`], but skipped entirely when the operation runs
    /// under an explicit historical snapshot — old committed versions are
    /// immutable, so readers of the past need no 2PL and never block.
    fn lock_for(&self, rel: RelId, mode: LockMode, snap: &Snapshot) -> DbResult<()> {
        match snap {
            Snapshot::Current { .. } => self.lock(rel, mode),
            Snapshot::AsOf(_) | Snapshot::Dirty => Ok(()),
        }
    }

    fn heap<'a>(&'a self, rel: RelId, dev: DeviceId) -> Heap<'a> {
        Heap {
            pool: &self.db.inner.pool,
            smgr: &self.db.inner.smgr,
            xlog: &self.db.inner.xlog,
            stats: &self.db.inner.stats,
            dev,
            rel,
            wal: Some(&self.db.inner.wal),
        }
    }

    fn btree<'a>(&'a self, rel: RelId, dev: DeviceId) -> BTree<'a> {
        BTree {
            pool: &self.db.inner.pool,
            smgr: &self.db.inner.smgr,
            stats: &self.db.inner.stats,
            dev,
            rel,
            wal: Some(&self.db.inner.wal),
        }
    }

    /// Inserts `row` into `rel`, maintaining its indices.
    pub fn insert(&mut self, rel: RelId, row: Row) -> DbResult<Tid> {
        let scope = DirtyScope::begin();
        let out = self.insert_inner(rel, row);
        // Collect even on error: a half-done operation (say, one side of a
        // b-tree split) still dirtied pages the checkpointer must drain.
        self.dirty.extend(scope.finish());
        self.db.inner.maybe_signal_checkpoint();
        out
    }

    fn insert_inner(&mut self, rel: RelId, row: Row) -> DbResult<Tid> {
        let xid = self.writable_xid()?;
        let (dev, indexes) = self.db.heap_parts(rel)?;
        {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.db.inner.catalog.read();
            let schema = &cat.relation(rel)?.schema;
            if row.len() != schema.len() {
                return Err(DbError::Bind(format!(
                    "relation \"{}\" has {} columns, row has {}",
                    cat.relation(rel)?.name,
                    schema.len(),
                    row.len()
                )));
            }
        }
        self.lock(rel, LockMode::Exclusive)?;
        self.wrote = true;
        let tid = self.heap(rel, dev).insert(xid, &row)?;
        for (idx, cols) in &indexes {
            let key: Vec<Datum> = cols.iter().map(|&i| row[i].clone()).collect();
            self.btree(*idx, dev).insert(&key, tid)?;
        }
        // Under replacement pressure (pool full), POSTGRES 4 forced index
        // pages out interleaved with data pages — the effect behind the
        // paper's slow 25 MB create. Transactions that fit in the cache
        // coalesce index writes until commit instead.
        if self.db.inner.config.eager_index_writes
            && self.db.inner.pool.len() + 1 >= self.db.inner.pool.capacity()
        {
            for (idx, _) in &indexes {
                let written = self.db.inner.pool.flush_rel(&self.db.inner.smgr, *idx)?;
                self.db.inner.stats.btree.page_writes.add(written as u64);
            }
        }
        Ok(tid)
    }

    /// Deletes the tuple at `tid`. Returns `false` if already deleted.
    pub fn delete(&mut self, rel: RelId, tid: Tid) -> DbResult<bool> {
        let scope = DirtyScope::begin();
        let out = self.delete_inner(rel, tid);
        self.dirty.extend(scope.finish());
        self.db.inner.maybe_signal_checkpoint();
        out
    }

    fn delete_inner(&mut self, rel: RelId, tid: Tid) -> DbResult<bool> {
        let xid = self.writable_xid()?;
        let (dev, _) = self.db.heap_parts(rel)?;
        self.lock(rel, LockMode::Exclusive)?;
        self.wrote = true;
        self.heap(rel, dev).delete(xid, tid)
    }

    /// Replaces the tuple at `tid` with `row` (no-overwrite: old version
    /// stays), maintaining indices for the new version.
    pub fn update(&mut self, rel: RelId, tid: Tid, row: Row) -> DbResult<Tid> {
        if !self.delete(rel, tid)? {
            return Err(DbError::Invalid(format!(
                "tuple {tid} concurrently deleted"
            )));
        }
        self.insert(rel, row)
    }

    /// Fetches the row at `tid` if visible to this session.
    pub fn fetch(&mut self, rel: RelId, tid: Tid) -> DbResult<Option<Row>> {
        let (dev, _) = self.db.heap_parts(rel)?;
        self.lock(rel, LockMode::Shared)?;
        let snap = self.snapshot.clone();
        self.heap(rel, dev).fetch(&snap, tid)
    }

    /// Scans `rel`, returning every visible row (with its tuple id).
    pub fn seq_scan(&mut self, rel: RelId) -> DbResult<Vec<(Tid, Row)>> {
        let snap = self.snapshot.clone();
        self.scan_with_snapshot(rel, &snap)
    }

    /// Scans `rel` under an explicit snapshot (time-travel queries inside a
    /// current session use this). Historical scans also search the archive
    /// relation the vacuum cleaner may have moved old versions to.
    pub fn scan_with_snapshot(&mut self, rel: RelId, snap: &Snapshot) -> DbResult<Vec<(Tid, Row)>> {
        let (dev, _) = self.db.heap_parts(rel)?;
        self.lock_for(rel, LockMode::Shared, snap)?;
        let mut out = self.heap(rel, dev).scan_collect(snap)?;
        if let Snapshot::AsOf(t) = snap {
            if let Some((arch, arch_dev)) = self.archive_of(rel)? {
                let heap = self.heap(arch, arch_dev);
                // Archive rows: (amin time, amax time, original row bytes).
                heap.scan_visible(&Snapshot::Dirty, |tid, row| {
                    let amin = SimInstant::from_nanos(row[0].as_int()? as u64);
                    let amax = SimInstant::from_nanos(row[1].as_int()? as u64);
                    if amin <= *t && *t < amax {
                        out.push((tid, decode_row(row[2].as_bytes()?)?));
                    }
                    Ok(true)
                })?;
            }
        }
        Ok(out)
    }

    /// Scans every tuple version whose inserting transaction *committed*,
    /// regardless of later deletion — "everything that was ever real".
    /// Garbage collectors use this to distinguish historical references
    /// from the debris of aborted transactions.
    pub fn scan_committed_versions(&mut self, rel: RelId) -> DbResult<Vec<Row>> {
        let (dev, _) = self.db.heap_parts(rel)?;
        self.lock(rel, LockMode::Shared)?;
        let heap = self.heap(rel, dev);
        let xlog = &self.db.inner.xlog;
        let mut out = Vec::new();
        heap.scan_all_raw(|_tid, hdr, bytes| {
            if matches!(xlog.state(hdr.xmin), crate::xact::XactState::Committed(_)) {
                out.push(decode_row(bytes)?);
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Scans every committed tuple version of `rel` with its lifetime:
    /// `(created_at, deleted_at, row)` where `deleted_at` is `None` for
    /// live versions. Includes versions the vacuum cleaner moved to the
    /// archive. This is the raw material for version-history listings.
    pub fn scan_version_history(
        &mut self,
        rel: RelId,
    ) -> DbResult<Vec<(SimInstant, Option<SimInstant>, Row)>> {
        let (dev, _) = self.db.heap_parts(rel)?;
        self.lock(rel, LockMode::Shared)?;
        let mut out = Vec::new();
        {
            let heap = self.heap(rel, dev);
            let xlog = &self.db.inner.xlog;
            heap.scan_all_raw(|_tid, hdr, bytes| {
                let crate::xact::XactState::Committed(t0) = xlog.state(hdr.xmin) else {
                    return Ok(());
                };
                let t1 = match xlog.state(hdr.xmax) {
                    crate::xact::XactState::Committed(t) => Some(t),
                    _ => None,
                };
                out.push((t0, t1, decode_row(bytes)?));
                Ok(())
            })?;
        }
        // Archived versions carry explicit lifetimes.
        let arch = self.archive_of(rel)?;
        if let Some((arch, arch_dev)) = arch {
            let heap = self.heap(arch, arch_dev);
            heap.scan_visible(&Snapshot::Dirty, |_tid, row| {
                let t0 = SimInstant::from_nanos(row[0].as_int()? as u64);
                let t1 = SimInstant::from_nanos(row[1].as_int()? as u64);
                out.push((t0, Some(t1), decode_row(row[2].as_bytes()?)?));
                Ok(true)
            })?;
        }
        out.sort_by_key(|(t0, _, _)| *t0);
        Ok(out)
    }

    fn archive_of(&self, rel: RelId) -> DbResult<Option<(RelId, DeviceId)>> {
        let _order = crate::lock::order::token(crate::lock::order::CATALOG);
        let cat = self.db.inner.catalog.read();
        let e = cat.relation(rel)?;
        match e.archive {
            Some(a) => {
                let ae = cat.relation(a)?;
                Ok(Some((a, ae.device)))
            }
            None => Ok(None),
        }
    }

    /// Point lookup through an index: rows of `rel` where the indexed
    /// columns equal `key`, filtered by visibility.
    pub fn index_scan_eq(&mut self, index: RelId, key: &[Datum]) -> DbResult<Vec<(Tid, Row)>> {
        let snap = self.snapshot.clone();
        self.index_scan_eq_with(index, key, &snap)
    }

    /// [`Session::index_scan_eq`] under an explicit snapshot.
    ///
    /// Historical snapshots also search the table's archive relation: the
    /// vacuum cleaner may have moved the versions visible at that instant
    /// out of the heap (and rebuilt the index without them).
    pub fn index_scan_eq_with(
        &mut self,
        index: RelId,
        key: &[Datum],
        snap: &Snapshot,
    ) -> DbResult<Vec<(Tid, Row)>> {
        let (table, dev, key_columns) = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.db.inner.catalog.read();
            let ie = cat.relation(index)?;
            let info = ie
                .index
                .as_ref()
                .ok_or_else(|| DbError::Invalid(format!("{index} is not an index")))?;
            (info.table, ie.device, info.key_columns.clone())
        };
        self.lock_for(table, LockMode::Shared, snap)?;
        let tids = self.btree(index, dev).search(key)?;
        let mut out = Vec::new();
        {
            let heap = self.heap(table, dev);
            for tid in tids {
                if let Some(row) = heap.fetch(snap, tid)? {
                    out.push((tid, row));
                }
            }
        }
        if let Snapshot::AsOf(t) = snap {
            self.scan_archive_matching(
                table,
                *t,
                |row| {
                    key_columns.len() == key.len()
                        && key_columns
                            .iter()
                            .zip(key)
                            .all(|(&c, k)| row[c].cmp_total(k) == std::cmp::Ordering::Equal)
                },
                &mut out,
            )?;
        }
        Ok(out)
    }

    /// Appends archived row versions of `table` visible at `t` and matching
    /// `pred` to `out`.
    fn scan_archive_matching(
        &mut self,
        table: RelId,
        t: SimInstant,
        pred: impl Fn(&Row) -> bool,
        out: &mut Vec<(Tid, Row)>,
    ) -> DbResult<()> {
        let arch = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.db.inner.catalog.read();
            let e = cat.relation(table)?;
            match e.archive {
                Some(a) => Some((a, cat.relation(a)?.device)),
                None => None,
            }
        };
        let Some((arch, arch_dev)) = arch else {
            return Ok(());
        };
        let heap = self.heap(arch, arch_dev);
        heap.scan_visible(&Snapshot::Dirty, |tid, row| {
            let amin = SimInstant::from_nanos(row[0].as_int()? as u64);
            let amax = SimInstant::from_nanos(row[1].as_int()? as u64);
            if amin <= t && t < amax {
                let orig = decode_row(row[2].as_bytes()?)?;
                if pred(&orig) {
                    out.push((tid, orig));
                }
            }
            Ok(true)
        })
    }

    /// Range scan through an index (`lo..=hi`, `None` = unbounded), calling
    /// `f(tid, row)` for each visible row in key order; `f` returns `false`
    /// to stop early.
    pub fn index_scan_range(
        &mut self,
        index: RelId,
        lo: Option<&[Datum]>,
        hi: Option<&[Datum]>,
        mut f: impl FnMut(Tid, Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let snap = self.snapshot.clone();
        let (table, dev) = {
            let _order = crate::lock::order::token(crate::lock::order::CATALOG);
            let cat = self.db.inner.catalog.read();
            let ie = cat.relation(index)?;
            let info = ie
                .index
                .as_ref()
                .ok_or_else(|| DbError::Invalid(format!("{index} is not an index")))?;
            (info.table, ie.device)
        };
        self.lock(table, LockMode::Shared)?;
        let bt = self.btree(index, dev);
        let heap = self.heap(table, dev);
        bt.scan(lo, hi, |_k, tid| match heap.fetch(&snap, tid)? {
            Some(row) => f(tid, row),
            None => Ok(true),
        })
    }

    /// Commits the transaction. No-force: no data page is written. The
    /// transaction's REDO records are already in the log, so commit is one
    /// `Commit` record and one log force — shared with concurrent
    /// committers via the group-commit coordinator when the window is
    /// open. The in-memory status entry is marked only after the force
    /// succeeds; the durable commit point is the force itself.
    pub fn commit(&mut self) -> DbResult<()> {
        if self.done {
            return Err(DbError::NoTransaction);
        }
        self.done = true;
        let Some(xid) = self.xid else {
            return Ok(()); // Historical sessions end trivially.
        };
        self.dirty.clear();
        let inner = &self.db.inner;
        let t0 = inner.clock.now();
        // A hair of commit processing keeps commit timestamps strictly
        // monotone even if no device advanced the clock.
        inner.clock.advance(SimDuration::from_micros(1));
        let result = if self.wrote {
            Self::commit_written(inner, xid)
        } else {
            // Read-only: nothing to log, no force, no status-file write.
            inner.xlog.commit_readonly(xid, inner.clock.now())
        };
        if result.is_err() {
            // The commit record never became durable, so the transaction
            // is aborted by definition; record that (best effort — a dead
            // log device changes nothing, absence of a commit record is
            // authoritative) and release the locks.
            inner.xlog.abort(xid).ok();
            inner.stats.xact.aborts.bump();
        } else {
            inner.stats.xact.commits.bump();
        }
        inner
            .stats
            .xact
            .commit_latency
            .record(inner.clock.now().since(t0).as_nanos());
        inner.locks.release_all(xid);
        inner.maybe_signal_checkpoint();
        result
    }

    /// The write-transaction commit path: append a `Commit` record and
    /// force the log — directly when group commit is disabled, otherwise
    /// through the coordinator so concurrent committers share one force.
    /// The in-memory status mark follows the force, never precedes it:
    /// a checkpoint persisting in-memory marks must never make a
    /// transaction durable whose tail records could still be lost.
    fn commit_written(inner: &DbInner, xid: XactId) -> DbResult<()> {
        // Register with the coordinator first so a concurrent batch leader
        // holds its window open for us.
        let inflight = inner.committer.begin_commit();
        if inner.committer.window().as_nanos() == 0 {
            drop(inflight);
            let now = inner.clock.now();
            inner.wal.append(&WalRecord::Commit {
                xid,
                time_ns: now.as_nanos(),
            })?;
            inner.wal.force()?;
            inner.stats.xact.sync_calls.add(1);
            inner.xlog.mark_committed(xid, now)?;
            inner.stats.xact.batched_records.bump();
            Ok(())
        } else {
            inner.committer.submit(
                PendingRecord {
                    xid,
                    devices: vec![],
                    commit: true,
                },
                inflight,
                |batch| Self::process_batch(inner, batch),
            )
        }
    }

    /// Durably processes one commit batch on behalf of all its members:
    /// append every member's `Commit`/`Abort` record, force the log once,
    /// then mark the commits in the in-memory status file.
    fn process_batch(inner: &DbInner, batch: &[PendingRecord]) -> DbResult<()> {
        let now = inner.clock.now();
        let commits: Vec<XactId> = batch.iter().filter(|r| r.commit).map(|r| r.xid).collect();
        for rec in batch {
            let record = if rec.commit {
                WalRecord::Commit {
                    xid: rec.xid,
                    time_ns: now.as_nanos(),
                }
            } else {
                // Informational: after a crash, a transaction with no
                // durable `Commit` record is aborted whether or not its
                // `Abort` record survived.
                WalRecord::Abort { xid: rec.xid }
            };
            inner.wal.append(&record)?;
        }
        inner.wal.force()?;
        inner.stats.xact.sync_calls.add(1);
        inner.xlog.mark_committed_batch(&commits, now)?;
        inner.stats.xact.batched_records.add(commits.len() as u64);
        if batch.len() >= 2 {
            inner.stats.xact.group_commits.bump();
        }
        Ok(())
    }

    /// Aborts the transaction; all its updates become permanently invisible.
    /// When the group-commit window is open, the abort record piggybacks on
    /// the next commit batch instead of forcing its own status-file sync
    /// (safe: a missing abort record already means aborted after a crash).
    pub fn abort(&mut self) -> DbResult<()> {
        if self.done {
            return Err(DbError::NoTransaction);
        }
        self.done = true;
        let Some(xid) = self.xid else {
            return Ok(());
        };
        self.dirty.clear();
        let inner = &self.db.inner;
        let result = if inner.committer.window().as_nanos() == 0 {
            inner.xlog.abort(xid)
        } else {
            // Mark aborted in memory and let the record ride with the next
            // commit batch, without waiting for it: an aborted transaction
            // is invisible whether or not its record ever reaches the disk,
            // so the abort path never parks on the group-commit coordinator.
            inner.xlog.mark_aborted(xid).map(|_| {
                inner.committer.enqueue_abort(xid);
            })
        };
        inner.stats.xact.aborts.bump();
        inner.locks.release_all(xid);
        result
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.done {
            if let Some(xid) = self.xid {
                self.db.inner.xlog.abort(xid).ok();
                self.db.inner.stats.xact.aborts.bump();
                self.db.inner.locks.release_all(xid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_table() -> (Db, RelId) {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table(
                "emp",
                Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
            )
            .unwrap();
        (db, rel)
    }

    fn emp(name: &str, age: i32) -> Row {
        vec![Datum::Text(name.into()), Datum::Int4(age)]
    }

    #[test]
    fn insert_commit_read() {
        let (db, rel) = db_with_table();
        let mut s = db.begin().unwrap();
        s.insert(rel, emp("mao", 29)).unwrap();
        s.insert(rel, emp("mike", 45)).unwrap();
        s.commit().unwrap();

        let mut r = db.begin().unwrap();
        let rows = r.seq_scan(rel).unwrap();
        assert_eq!(rows.len(), 2);
        r.commit().unwrap();
    }

    #[test]
    fn abort_discards_updates() {
        let (db, rel) = db_with_table();
        let mut s = db.begin().unwrap();
        s.insert(rel, emp("ghost", 0)).unwrap();
        s.abort().unwrap();
        let mut r = db.begin().unwrap();
        assert!(r.seq_scan(rel).unwrap().is_empty());
        r.commit().unwrap();
    }

    #[test]
    fn dropped_session_aborts() {
        let (db, rel) = db_with_table();
        {
            let mut s = db.begin().unwrap();
            s.insert(rel, emp("ghost", 0)).unwrap();
            // Dropped without commit.
        }
        let mut r = db.begin().unwrap();
        assert!(r.seq_scan(rel).unwrap().is_empty());
        r.commit().unwrap();
    }

    #[test]
    fn wrong_arity_rejected() {
        let (db, rel) = db_with_table();
        let mut s = db.begin().unwrap();
        assert!(matches!(
            s.insert(rel, vec![Datum::Int4(1)]),
            Err(DbError::Bind(_))
        ));
        s.abort().unwrap();
    }

    #[test]
    fn update_and_time_travel() {
        let (db, rel) = db_with_table();
        let mut s = db.begin().unwrap();
        let tid = s.insert(rel, emp("mao", 29)).unwrap();
        s.commit().unwrap();
        let t_young = db.now();

        let mut s = db.begin().unwrap();
        s.update(rel, tid, emp("mao", 30)).unwrap();
        s.commit().unwrap();

        // Present: one row, age 30.
        let mut r = db.begin().unwrap();
        let rows = r.seq_scan(rel).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Datum::Int4(30));
        r.commit().unwrap();

        // The past: age 29.
        let mut h = db.snapshot_at(t_young);
        let rows = h.seq_scan(rel).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Datum::Int4(29));
        assert!(!h.is_writable());
        assert!(matches!(h.insert(rel, emp("x", 1)), Err(DbError::ReadOnly)));
    }

    #[test]
    fn index_scan_finds_visible_versions_only() {
        let (db, rel) = db_with_table();
        let idx = db.create_index("emp_age", rel, &["age"]).unwrap();
        let mut s = db.begin().unwrap();
        let tid = s.insert(rel, emp("mao", 29)).unwrap();
        s.insert(rel, emp("mike", 29)).unwrap();
        s.insert(rel, emp("margo", 31)).unwrap();
        s.commit().unwrap();

        let mut r = db.begin().unwrap();
        let rows = r.index_scan_eq(idx, &[Datum::Int4(29)]).unwrap();
        assert_eq!(rows.len(), 2);
        r.commit().unwrap();

        // Delete one and re-check.
        let mut s = db.begin().unwrap();
        s.delete(rel, tid).unwrap();
        s.commit().unwrap();
        let mut r = db.begin().unwrap();
        let rows = r.index_scan_eq(idx, &[Datum::Int4(29)]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], Datum::Text("mike".into()));
        r.commit().unwrap();
    }

    #[test]
    fn index_backfill_covers_preexisting_rows() {
        let (db, rel) = db_with_table();
        let mut s = db.begin().unwrap();
        s.insert(rel, emp("early", 10)).unwrap();
        s.commit().unwrap();
        let idx = db.create_index("emp_age", rel, &["age"]).unwrap();
        let mut r = db.begin().unwrap();
        assert_eq!(r.index_scan_eq(idx, &[Datum::Int4(10)]).unwrap().len(), 1);
        r.commit().unwrap();
    }

    #[test]
    fn index_range_scan_in_order() {
        let (db, rel) = db_with_table();
        let idx = db.create_index("emp_age", rel, &["age"]).unwrap();
        let mut s = db.begin().unwrap();
        for age in [40, 10, 30, 20, 50] {
            s.insert(rel, emp(&format!("p{age}"), age)).unwrap();
        }
        s.commit().unwrap();
        let mut r = db.begin().unwrap();
        let mut seen = Vec::new();
        r.index_scan_range(
            idx,
            Some(&[Datum::Int4(15)]),
            Some(&[Datum::Int4(45)]),
            |_, row| {
                seen.push(row[1].as_int().unwrap());
                Ok(true)
            },
        )
        .unwrap();
        assert_eq!(seen, vec![20, 30, 40]);
        r.commit().unwrap();
    }

    #[test]
    fn two_sessions_serialize_on_write_lock() {
        let (db, rel) = db_with_table();
        let db2 = db.clone();
        let mut s1 = db.begin().unwrap();
        s1.insert(rel, emp("a", 1)).unwrap();
        let t = std::thread::spawn(move || {
            let mut s2 = db2.begin().unwrap();
            // Blocks until s1 commits.
            s2.insert(rel, emp("b", 2)).unwrap();
            s2.commit().unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        s1.commit().unwrap();
        t.join().unwrap();
        let mut r = db.begin().unwrap();
        assert_eq!(r.seq_scan(rel).unwrap().len(), 2);
        r.commit().unwrap();
    }

    #[test]
    fn crash_recovery_keeps_committed_loses_uncommitted() {
        let clock = SimClock::new();
        let data = shared_device(MagneticDisk::new(
            "data",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 16),
        ));
        let log = shared_device(MagneticDisk::new(
            "log",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let cat = shared_device(MagneticDisk::new(
            "cat",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let rel;
        {
            let mut smgr = Smgr::new();
            smgr.register(
                DeviceId::DEFAULT,
                Box::new(GenericManager::format(data.clone()).unwrap()),
            )
            .unwrap();
            let db = Db::open(
                clock.clone(),
                smgr,
                log.clone(),
                cat.clone(),
                DbConfig::default(),
            )
            .unwrap();
            rel = db
                .create_table("t", Schema::new([("v", TypeId::INT4)]))
                .unwrap();
            let mut s = db.begin().unwrap();
            s.insert(rel, vec![Datum::Int4(1)]).unwrap();
            s.commit().unwrap();
            let mut s = db.begin().unwrap();
            s.insert(rel, vec![Datum::Int4(2)]).unwrap();
            // CRASH: no commit, Db dropped with dirty buffers discarded.
            std::mem::forget(s); // Not even an abort record.
        }
        // Recovery = reopen. Instantaneous: no scan, no fsck.
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId::DEFAULT,
            Box::new(GenericManager::attach(data).unwrap()),
        )
        .unwrap();
        let db = Db::recover(clock, smgr, log, cat, DbConfig::default()).unwrap();
        let mut r = db.begin().unwrap();
        let rows = r.seq_scan(rel).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], Datum::Int4(1));
        r.commit().unwrap();
    }

    #[test]
    fn catalog_survives_recovery() {
        let clock = SimClock::new();
        let data = shared_device(MagneticDisk::new(
            "data",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 16),
        ));
        let log = shared_device(MagneticDisk::new(
            "log",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let cat = shared_device(MagneticDisk::new(
            "cat",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        {
            let mut smgr = Smgr::new();
            smgr.register(
                DeviceId::DEFAULT,
                Box::new(GenericManager::format(data.clone()).unwrap()),
            )
            .unwrap();
            let db = Db::open(
                clock.clone(),
                smgr,
                log.clone(),
                cat.clone(),
                DbConfig::default(),
            )
            .unwrap();
            db.create_table("naming", Schema::new([("filename", TypeId::TEXT)]))
                .unwrap();
            db.define_type("tm").unwrap();
        }
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId::DEFAULT,
            Box::new(GenericManager::attach(data).unwrap()),
        )
        .unwrap();
        let db = Db::recover(clock, smgr, log, cat, DbConfig::default()).unwrap();
        assert!(db.relation_id("naming").is_ok());
        assert!(db.catalog().type_by_name("tm").is_ok());
    }

    #[test]
    fn drop_relation_removes_table_and_indices() {
        let (db, rel) = db_with_table();
        db.create_index("emp_age", rel, &["age"]).unwrap();
        db.drop_relation("emp").unwrap();
        assert!(db.relation_id("emp").is_err());
        assert!(db.relation_id("emp_age").is_err());
        // Name can be reused.
        db.create_table("emp", Schema::new([("x", TypeId::INT4)]))
            .unwrap();
    }

    #[test]
    fn functions_registered_and_resolved() {
        let db = Db::open_in_memory().unwrap();
        db.functions().register("test.twice", |_s, args| {
            Ok(Datum::Int8(args[0].as_int()? * 2))
        });
        db.define_function("twice", 1, TypeId::INT8, "test.twice", None)
            .unwrap();
        let f = db.resolve_function("twice").unwrap();
        let mut s = db.begin().unwrap();
        assert_eq!(f.call(&mut s, &[Datum::Int4(21)]).unwrap(), Datum::Int8(42));
        s.abort().unwrap();
        assert!(db.resolve_function("thrice").is_err());
    }

    #[test]
    fn snapshot_before_creation_sees_nothing() {
        let (db, rel) = db_with_table();
        let t0 = db.now();
        let mut s = db.begin().unwrap();
        s.insert(rel, emp("later", 1)).unwrap();
        s.commit().unwrap();
        let mut h = db.snapshot_at(t0);
        assert!(h.seq_scan(rel).unwrap().is_empty());
    }

    #[test]
    fn commit_twice_is_an_error() {
        let (db, _) = db_with_table();
        let mut s = db.begin().unwrap();
        s.commit().unwrap();
        assert!(matches!(s.commit(), Err(DbError::NoTransaction)));
        assert!(matches!(s.abort(), Err(DbError::NoTransaction)));
    }
}

#[cfg(test)]
mod readonly_commit_tests {
    use super::*;

    #[test]
    fn readonly_commit_writes_no_status_record() {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table("t", Schema::new([("v", TypeId::INT4)]))
            .unwrap();
        let mut w = db.begin().unwrap();
        w.insert(rel, vec![Datum::Int4(1)]).unwrap();
        w.commit().unwrap();

        // A read-only transaction: no flush, no log write; stays committed
        // in memory so later snapshots behave.
        let t0 = db.now();
        let mut r = db.begin().unwrap();
        assert_eq!(r.seq_scan(rel).unwrap().len(), 1);
        r.commit().unwrap();
        // Commit advanced the clock only by the commit-processing hair,
        // not by device writes.
        let elapsed = db.now().since(t0);
        assert!(
            elapsed < simdev::SimDuration::from_millis(1),
            "took {elapsed}"
        );
    }

    #[test]
    fn flush_rel_persists_only_that_relation() {
        let db = Db::open_in_memory().unwrap();
        let a = db
            .create_table("a", Schema::new([("v", TypeId::INT4)]))
            .unwrap();
        let b = db
            .create_table("b", Schema::new([("v", TypeId::INT4)]))
            .unwrap();
        let mut s = db.begin().unwrap();
        s.insert(a, vec![Datum::Int4(1)]).unwrap();
        s.insert(b, vec![Datum::Int4(2)]).unwrap();
        let before = db.buffer_stats().writebacks;
        db.inner.pool.flush_rel(&db.inner.smgr, a).unwrap();
        let after = db.buffer_stats().writebacks;
        assert!(after > before, "a's dirty page written");
        // b's page is still dirty in cache (flush_all at commit handles it).
        s.commit().unwrap();
        let mut r = db.begin().unwrap();
        assert_eq!(r.seq_scan(b).unwrap().len(), 1);
        r.commit().unwrap();
    }
}
