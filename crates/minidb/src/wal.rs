//! The REDO-only write-ahead log.
//!
//! The paper's commit story — "when the status file is forced, the
//! transaction is durable" — forced every dirty data page before the status
//! write. This module replaces that with a no-force commit in the
//! Sauer/Härder single-pass-REDO style: writers append *physiological* REDO
//! records (logical within a page, physical across pages), commit becomes
//! one sequential force of the log's tail, and dirty data pages drain
//! lazily through the background checkpointer. The commit point is the
//! force that makes a transaction's `Commit` record stable.
//!
//! ## On-device layout
//!
//! The WAL shares the log device with the transaction status file: status
//! blocks grow up from block 0, and the WAL owns a region in the upper part
//! of the device. The region starts with one *control block* holding the
//! epoch LSN (where the current on-device log begins) and which *half* of
//! the data area holds it; the data area is split into two equal halves.
//!
//! ```text
//! block:   [ctrl]  [half A: data 0..n)  [half B: data 0..n)
//! header:  16 bytes per data block: magic, used, start LSN, checksum
//! payload: 8176 bytes of the record stream; records span blocks freely
//! ```
//!
//! LSNs are byte offsets into the virtual record stream and are *never*
//! reset — truncation advances the epoch LSN instead, so a page's stamped
//! LSN stays meaningful across checkpoints. A record's *end* LSN (always
//! nonzero) is what gets stamped into pages, so a never-logged page
//! (LSN 0) sorts before every record.
//!
//! Truncation ([`Wal::truncate_to`]) discards `[epoch, cut)` but must keep
//! `[cut, next)` — records appended while the checkpoint was flushing. It
//! copies the surviving tail into the *inactive* half, syncs it, and only
//! then flips the control block: a crash on either side of the flip finds
//! one half that is a complete, self-consistent epoch. (Rewriting the tail
//! in place would scribble over the old epoch's blocks before the control
//! write made the new epoch authoritative.)
//!
//! ## The torn-force rule
//!
//! The log device may sit behind a volatile write cache that loses pending
//! blocks on a failed sync. The log therefore keeps every byte from the
//! durable horizon forward in memory and rewrites *all* non-durable blocks
//! on every force; block contents are a deterministic function of the
//! stream, so the rewrite is idempotent, and a failed force followed by a
//! successful one can never leave a hole in the middle of acknowledged
//! records. Within one epoch, blocks are written in ascending order, so a
//! destaged prefix of a force is always an LSN prefix of the stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use parking_lot::Mutex;
use simdev::BLOCK_SIZE;

use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, Oid, RelId, XactId};
use crate::page;
use crate::smgr::SharedDevice;
use crate::stats::StatsRegistry;

/// Per-data-block header: magic (2) + used (2) + start LSN (8) + cksum (4).
const BLOCK_HDR: usize = 16;
/// Record-stream bytes per data block.
pub const BLOCK_PAYLOAD: usize = BLOCK_SIZE - BLOCK_HDR;

const BLOCK_MAGIC: u16 = 0x4C57; // "WL"
const CTRL_MAGIC: u32 = 0x574C_4331; // "WLC1"

/// Record kind tags on the wire.
const K_PAGE_INIT: u8 = 1;
const K_INSERT: u8 = 2;
const K_OVERWRITE: u8 = 3;
const K_PAGE_IMAGE: u8 = 4;
const K_COMMIT: u8 = 5;
const K_ABORT: u8 = 6;

/// Record header: kind (1) + body length (4).
const REC_HDR: usize = 5;
/// Largest legal record body: a full page image plus its page address.
const MAX_BODY: usize = 13 + crate::page::PAGE_SIZE;

/// One physiological REDO record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// `page::init(buf, special_size)` on a fresh or reformatted page.
    PageInit {
        /// Device holding the page.
        dev: DeviceId,
        /// Relation holding the page.
        rel: RelId,
        /// Logical block number within the relation.
        blkno: u64,
        /// Bytes reserved for the special area.
        special_size: u16,
    },
    /// A slotted-page insert that produced `slot`.
    Insert {
        /// Device holding the page.
        dev: DeviceId,
        /// Relation holding the page.
        rel: RelId,
        /// Logical block number within the relation.
        blkno: u64,
        /// Slot the insert produced (replay must reproduce it).
        slot: u16,
        /// The full item bytes.
        tuple: Vec<u8>,
    },
    /// An in-place overwrite of part of one item (xmax stamping).
    Overwrite {
        /// Device holding the page.
        dev: DeviceId,
        /// Relation holding the page.
        rel: RelId,
        /// Logical block number within the relation.
        blkno: u64,
        /// Slot whose item is edited.
        slot: u16,
        /// Byte offset within the item.
        offset: u16,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// A full after-image of one page (B-tree structure changes).
    PageImage {
        /// Device holding the page.
        dev: DeviceId,
        /// Relation holding the page.
        rel: RelId,
        /// Logical block number within the relation.
        blkno: u64,
        /// The complete [`page::PAGE_SIZE`] image.
        image: Vec<u8>,
    },
    /// Transaction commit; forcing this record *is* the commit point.
    Commit {
        /// The committing transaction.
        xid: XactId,
        /// Commit time in simulated nanoseconds.
        time_ns: u64,
    },
    /// Transaction abort (advisory: a missing record means the same).
    Abort {
        /// The aborted transaction.
        xid: XactId,
    },
}

impl WalRecord {
    /// The page this record modifies, if it is a page record.
    pub fn page_addr(&self) -> Option<(DeviceId, RelId, u64)> {
        match *self {
            WalRecord::PageInit { dev, rel, blkno, .. }
            | WalRecord::Insert { dev, rel, blkno, .. }
            | WalRecord::Overwrite { dev, rel, blkno, .. }
            | WalRecord::PageImage { dev, rel, blkno, .. } => Some((dev, rel, blkno)),
            WalRecord::Commit { .. } | WalRecord::Abort { .. } => None,
        }
    }

    /// Encodes the record (header + body) onto `out`.
    fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        let kind = match self {
            WalRecord::PageInit {
                dev,
                rel,
                blkno,
                special_size,
            } => {
                put_addr(&mut body, *dev, *rel, *blkno);
                body.extend_from_slice(&special_size.to_le_bytes());
                K_PAGE_INIT
            }
            WalRecord::Insert {
                dev,
                rel,
                blkno,
                slot,
                tuple,
            } => {
                put_addr(&mut body, *dev, *rel, *blkno);
                body.extend_from_slice(&slot.to_le_bytes());
                body.extend_from_slice(tuple);
                K_INSERT
            }
            WalRecord::Overwrite {
                dev,
                rel,
                blkno,
                slot,
                offset,
                bytes,
            } => {
                put_addr(&mut body, *dev, *rel, *blkno);
                body.extend_from_slice(&slot.to_le_bytes());
                body.extend_from_slice(&offset.to_le_bytes());
                body.extend_from_slice(bytes);
                K_OVERWRITE
            }
            WalRecord::PageImage {
                dev,
                rel,
                blkno,
                image,
            } => {
                put_addr(&mut body, *dev, *rel, *blkno);
                body.extend_from_slice(image);
                K_PAGE_IMAGE
            }
            WalRecord::Commit { xid, time_ns } => {
                body.extend_from_slice(&xid.0.to_le_bytes());
                body.extend_from_slice(&time_ns.to_le_bytes());
                K_COMMIT
            }
            WalRecord::Abort { xid } => {
                body.extend_from_slice(&xid.0.to_le_bytes());
                K_ABORT
            }
        };
        out.push(kind);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }

    /// Decodes one record from `buf`, returning it and the bytes consumed.
    /// `None` means `buf` ends mid-record (a torn tail, not corruption).
    fn decode(buf: &[u8]) -> DbResult<Option<(WalRecord, usize)>> {
        if buf.len() < REC_HDR {
            return Ok(None);
        }
        let kind = buf[0];
        let len = crate::bytes::le_u32(buf, 1)? as usize;
        if !(K_PAGE_INIT..=K_ABORT).contains(&kind) || len > MAX_BODY {
            return Err(DbError::Corrupt(format!(
                "bad WAL record header (kind {kind}, len {len})"
            )));
        }
        if buf.len() < REC_HDR + len {
            return Ok(None);
        }
        let body = &buf[REC_HDR..REC_HDR + len];
        let rec = match kind {
            K_PAGE_INIT => {
                let (dev, rel, blkno) = get_addr(body)?;
                WalRecord::PageInit {
                    dev,
                    rel,
                    blkno,
                    special_size: crate::bytes::le_u16(body, 13)?,
                }
            }
            K_INSERT => {
                let (dev, rel, blkno) = get_addr(body)?;
                WalRecord::Insert {
                    dev,
                    rel,
                    blkno,
                    slot: crate::bytes::le_u16(body, 13)?,
                    tuple: body
                        .get(15..)
                        .ok_or_else(|| DbError::Corrupt("short insert record".into()))?
                        .to_vec(),
                }
            }
            K_OVERWRITE => {
                let (dev, rel, blkno) = get_addr(body)?;
                WalRecord::Overwrite {
                    dev,
                    rel,
                    blkno,
                    slot: crate::bytes::le_u16(body, 13)?,
                    offset: crate::bytes::le_u16(body, 15)?,
                    bytes: body
                        .get(17..)
                        .ok_or_else(|| DbError::Corrupt("short overwrite record".into()))?
                        .to_vec(),
                }
            }
            K_PAGE_IMAGE => {
                let (dev, rel, blkno) = get_addr(body)?;
                let image = body
                    .get(13..)
                    .ok_or_else(|| DbError::Corrupt("short page image".into()))?
                    .to_vec();
                if image.len() != page::PAGE_SIZE {
                    return Err(DbError::Corrupt(format!(
                        "page image of {} bytes",
                        image.len()
                    )));
                }
                WalRecord::PageImage {
                    dev,
                    rel,
                    blkno,
                    image,
                }
            }
            K_COMMIT => WalRecord::Commit {
                xid: XactId(crate::bytes::le_u32(body, 0)?),
                time_ns: crate::bytes::le_u64(body, 4)?,
            },
            K_ABORT => WalRecord::Abort {
                xid: XactId(crate::bytes::le_u32(body, 0)?),
            },
            other => {
                return Err(DbError::Corrupt(format!(
                    "WAL record kind {other} decoded past validation"
                )))
            }
        };
        Ok(Some((rec, REC_HDR + len)))
    }

    /// Replays this record against the page buffer it addresses. The caller
    /// checks the LSN gate and stamps the page LSN afterwards.
    pub fn redo(&self, buf: &mut [u8]) -> DbResult<()> {
        match self {
            WalRecord::PageInit { special_size, .. } => {
                page::init(buf, *special_size as usize);
                Ok(())
            }
            WalRecord::Insert { slot, tuple, .. } => {
                let got = page::insert(buf, tuple)?;
                if got != *slot {
                    return Err(DbError::Corrupt(format!(
                        "REDO insert landed in slot {got}, logged {slot}"
                    )));
                }
                Ok(())
            }
            WalRecord::Overwrite {
                slot,
                offset,
                bytes,
                ..
            } => {
                let item = page::item_mut(buf, *slot)
                    .ok_or_else(|| DbError::Corrupt(format!("REDO overwrite of slot {slot}")))?;
                let at = *offset as usize;
                let end = at
                    .checked_add(bytes.len())
                    .filter(|&e| e <= item.len())
                    .ok_or_else(|| DbError::Corrupt("REDO overwrite out of item".into()))?;
                item[at..end].copy_from_slice(bytes);
                Ok(())
            }
            WalRecord::PageImage { image, .. } => {
                buf.copy_from_slice(image);
                Ok(())
            }
            WalRecord::Commit { .. } | WalRecord::Abort { .. } => Ok(()),
        }
    }
}

fn put_addr(body: &mut Vec<u8>, dev: DeviceId, rel: RelId, blkno: u64) {
    body.push(dev.0);
    body.extend_from_slice(&rel.0.to_le_bytes());
    body.extend_from_slice(&blkno.to_le_bytes());
}

fn get_addr(body: &[u8]) -> DbResult<(DeviceId, RelId, u64)> {
    if body.len() < 13 {
        return Err(DbError::Corrupt("short WAL page address".into()));
    }
    Ok((
        DeviceId(body[0]),
        Oid(crate::bytes::le_u32(body, 1)?),
        crate::bytes::le_u64(body, 5)?,
    ))
}

/// FNV-1a over `data` (same family the wire protocol uses).
fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Where the WAL region starts on a log device of `nblocks`: a quarter of
/// the device, clamped — the status file keeps the low blocks.
pub fn region_start(nblocks: u64) -> u64 {
    (nblocks / 4).clamp(64, 1024).min(nblocks.saturating_sub(2))
}

struct WalInner {
    /// Stream offset where the on-device epoch begins.
    epoch_lsn: u64,
    /// Which half of the data area holds the current epoch (0 or 1).
    half: u8,
    /// Next byte to append.
    next_lsn: u64,
    /// Everything below this is on stable storage.
    durable_lsn: u64,
    /// Stream offset of `buf[0]`; always block-aligned within the epoch.
    buf_base: u64,
    /// Bytes `[buf_base, next_lsn)` — retained until a sync *succeeds*.
    buf: Vec<u8>,
}

/// The write-ahead log: an append buffer over a block region of the log
/// device. Appends are cheap memory copies under the `wal` rank; forces
/// rewrite every non-durable block and sync once.
pub struct Wal {
    dev: SharedDevice,
    /// Device block of the control block; data blocks follow.
    region: u64,
    /// Number of data blocks in each half of the data area.
    half_blocks: u64,
    stats: Arc<StatsRegistry>,
    inner: Mutex<WalInner>,
    /// Set when the epoch has grown past half the region (checkpoint cue).
    pressure: AtomicBool,
    /// Unforced-byte threshold past which `append` forces inline (the
    /// `wal_buffer_size` knob); 0 disables the inline force.
    buffer_cap: AtomicU64,
}

impl Wal {
    /// Formats a fresh, empty log region on `dev` and syncs the control
    /// block so recovery always finds a valid epoch.
    pub fn create(dev: SharedDevice, stats: Arc<StatsRegistry>) -> DbResult<Wal> {
        let wal = Wal::on_device(dev, stats, 0, 0)?;
        wal.write_control(0, 0)?;
        Ok(wal)
    }

    /// Re-attaches to an existing log region, scanning the record stream
    /// from the stored epoch. Returns the log (positioned to keep
    /// appending after the last whole record) and every decoded record
    /// with its end LSN, in order.
    pub fn recover(
        dev: SharedDevice,
        stats: Arc<StatsRegistry>,
    ) -> DbResult<(Wal, Vec<(u64, WalRecord)>)> {
        let (epoch, half) = {
            let _order = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
            let mut d = dev.lock();
            let region = region_start(d.nblocks());
            let mut blk = vec![0u8; BLOCK_SIZE];
            d.read_block(region, &mut blk)?;
            let magic = crate::bytes::le_u32(&blk, 0)?;
            if magic == CTRL_MAGIC {
                let epoch = crate::bytes::le_u64(&blk, 4)?;
                let half = blk[12];
                let ck = crate::bytes::le_u32(&blk, 13)?;
                if ck != fnv1a(&blk[0..13]) || half > 1 {
                    return Err(DbError::Corrupt("WAL control block checksum".into()));
                }
                (epoch, half)
            } else {
                // Never formatted (crash before the first control sync):
                // nothing was acknowledged, so an empty epoch-0 log is right.
                (0, 0)
            }
        };
        let wal = Wal::on_device(dev, stats, epoch, half)?;
        let records = wal.scan()?;
        Ok((wal, records))
    }

    fn on_device(
        dev: SharedDevice,
        stats: Arc<StatsRegistry>,
        epoch: u64,
        half: u8,
    ) -> DbResult<Wal> {
        let nblocks = {
            let _order = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
            dev.lock().nblocks()
        };
        let region = region_start(nblocks);
        let half_blocks = nblocks.saturating_sub(region + 1) / 2;
        if half_blocks == 0 {
            return Err(DbError::Invalid(format!(
                "log device of {nblocks} blocks leaves no WAL region"
            )));
        }
        Ok(Wal {
            dev,
            region,
            half_blocks,
            stats,
            inner: Mutex::new(WalInner {
                epoch_lsn: epoch,
                half,
                next_lsn: epoch,
                durable_lsn: epoch,
                buf_base: epoch,
                buf: Vec::new(),
            }),
            pressure: AtomicBool::new(false),
            buffer_cap: AtomicU64::new(0),
        })
    }

    /// Caps how many unforced bytes the append buffer may hold before an
    /// append forces the log inline ([`crate::db::DbConfig::wal_buffer_size`]).
    pub fn set_buffer_cap(&self, bytes: u64) {
        self.buffer_cap.store(bytes, SeqCst);
    }

    /// Device block holding stream offset `start` (block-aligned within the
    /// epoch) for the given half.
    fn data_block(&self, half: u8, epoch: u64, start: u64) -> u64 {
        self.region + 1 + half as u64 * self.half_blocks + (start - epoch) / BLOCK_PAYLOAD as u64
    }

    /// Record-stream capacity of one epoch, in bytes.
    pub fn capacity(&self) -> u64 {
        self.half_blocks * BLOCK_PAYLOAD as u64
    }

    /// Appends `rec`, returning its end LSN. The record is volatile until
    /// a force covers it.
    pub fn append(&self, rec: &WalRecord) -> DbResult<u64> {
        let mut bytes = Vec::new();
        rec.encode(&mut bytes);
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        let mut g = self.inner.lock();
        let used = g.next_lsn - g.epoch_lsn;
        if used + bytes.len() as u64 > self.capacity() {
            return Err(DbError::Invalid(format!(
                "WAL full: epoch holds {used} of {} bytes and the record needs {}",
                self.capacity(),
                bytes.len()
            )));
        }
        g.buf.extend_from_slice(&bytes);
        g.next_lsn += bytes.len() as u64;
        if used + bytes.len() as u64 > self.capacity() / 2 {
            self.pressure.store(true, SeqCst);
        }
        self.stats.wal.records_appended.bump();
        self.stats.wal.bytes_appended.add(bytes.len() as u64);
        let end = g.next_lsn;
        let cap = self.buffer_cap.load(SeqCst);
        if cap > 0 && g.next_lsn - g.durable_lsn > cap {
            // Best effort: the append itself succeeded, and the force that
            // matters for durability is the one at commit, which reports
            // its own failures. A failed trim retries on the next force.
            self.force_locked(&mut g, end).ok();
        }
        Ok(end)
    }

    /// Forces the whole stream to stable storage.
    pub fn force(&self) -> DbResult<()> {
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        let mut g = self.inner.lock();
        let target = g.next_lsn;
        self.force_locked(&mut g, target)
    }

    /// Forces the stream up to `lsn` if it is not already durable. The
    /// buffer manager calls this before writing a data page whose stamped
    /// LSN is `lsn` (the LSN-before-write rule).
    pub fn force_up_to(&self, lsn: u64) -> DbResult<()> {
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        let mut g = self.inner.lock();
        self.force_locked(&mut g, lsn)
    }

    fn force_locked(&self, g: &mut WalInner, target: u64) -> DbResult<()> {
        if target <= g.durable_lsn {
            return Ok(());
        }
        // Rewrite every non-durable block — see the torn-force rule above.
        // A force failure leaves `durable_lsn` (and the buffer) untouched,
        // so a later force retries the whole tail.
        {
            let _dev = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
            let mut d = self.dev.lock();
            let mut blk = vec![0u8; BLOCK_SIZE];
            for (i, chunk) in g.buf.chunks(BLOCK_PAYLOAD).enumerate() {
                let start = g.buf_base + (i * BLOCK_PAYLOAD) as u64;
                blk.fill(0);
                blk[0..2].copy_from_slice(&BLOCK_MAGIC.to_le_bytes());
                blk[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                blk[4..12].copy_from_slice(&start.to_le_bytes());
                blk[BLOCK_HDR..BLOCK_HDR + chunk.len()].copy_from_slice(chunk);
                let ck = fnv1a(&blk[0..12]) ^ fnv1a(chunk);
                blk[12..16].copy_from_slice(&ck.to_le_bytes());
                d.write_block(self.data_block(g.half, g.epoch_lsn, start), &blk)?;
            }
            d.sync()?;
        }
        g.durable_lsn = g.next_lsn;
        // Complete blocks are never rewritten again; keep only the partial
        // tail block's bytes for the next force.
        let whole = (g.buf.len() / BLOCK_PAYLOAD) * BLOCK_PAYLOAD;
        g.buf.drain(..whole);
        g.buf_base += whole as u64;
        self.stats.wal.log_forces.bump();
        Ok(())
    }

    /// Advances the epoch to `cut`, discarding `[epoch, cut)` and keeping
    /// `[cut, next)`. Legal only when every page change below `cut` is
    /// durably on the data devices and every commit below `cut` is in the
    /// persisted status file (i.e. at the end of a checkpoint whose flush
    /// began after `cut` was read). Forces the tail first if the caller has
    /// not; see the module docs for why the survivors move to the other
    /// half of the data area.
    pub fn truncate_to(&self, cut: u64) -> DbResult<()> {
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        let mut g = self.inner.lock();
        let target = g.next_lsn;
        self.force_locked(&mut g, target)?;
        let cut = cut.clamp(g.epoch_lsn, g.next_lsn);
        if cut == g.epoch_lsn {
            return Ok(()); // Nothing to discard.
        }
        // Read the surviving tail back from the (now fully durable) epoch.
        let survivors = self.read_stream(&g, cut)?;
        let other = 1 - g.half;
        {
            let _dev = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
            let mut d = self.dev.lock();
            let mut blk = vec![0u8; BLOCK_SIZE];
            for (i, chunk) in survivors.chunks(BLOCK_PAYLOAD).enumerate() {
                let start = cut + (i * BLOCK_PAYLOAD) as u64;
                blk.fill(0);
                blk[0..2].copy_from_slice(&BLOCK_MAGIC.to_le_bytes());
                blk[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                blk[4..12].copy_from_slice(&start.to_le_bytes());
                blk[BLOCK_HDR..BLOCK_HDR + chunk.len()].copy_from_slice(chunk);
                let ck = fnv1a(&blk[0..12]) ^ fnv1a(chunk);
                blk[12..16].copy_from_slice(&ck.to_le_bytes());
                d.write_block(self.data_block(other, cut, start), &blk)?;
            }
            d.sync()?;
        }
        // The survivors are stable in the other half; flipping the control
        // block is the atomic switch between the two complete epochs.
        self.write_control(cut, other)?;
        g.epoch_lsn = cut;
        g.half = other;
        let whole = (survivors.len() / BLOCK_PAYLOAD) * BLOCK_PAYLOAD;
        g.buf_base = cut + whole as u64;
        g.buf = survivors[whole..].to_vec();
        if g.next_lsn - g.epoch_lsn <= self.capacity() / 2 {
            self.pressure.store(false, SeqCst);
        }
        Ok(())
    }

    /// Reads the durable stream bytes `[from, next)` back from the current
    /// epoch's half.
    fn read_stream(&self, g: &WalInner, from: u64) -> DbResult<Vec<u8>> {
        let mut out = Vec::with_capacity((g.next_lsn - from) as usize);
        if g.next_lsn == from {
            return Ok(out);
        }
        let _dev = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
        let mut d = self.dev.lock();
        let mut blk = vec![0u8; BLOCK_SIZE];
        let first = g.epoch_lsn + (from - g.epoch_lsn) / BLOCK_PAYLOAD as u64 * BLOCK_PAYLOAD as u64;
        let mut start = first;
        while start < g.next_lsn {
            d.read_block(self.data_block(g.half, g.epoch_lsn, start), &mut blk)?;
            let used = crate::bytes::le_u16(&blk, 2)? as usize;
            let lo = if start < from { (from - start) as usize } else { 0 };
            let hi = used.min((g.next_lsn - start) as usize);
            if crate::bytes::le_u16(&blk, 0)? != BLOCK_MAGIC || hi < lo {
                return Err(DbError::Corrupt(format!(
                    "WAL block for offset {start} unreadable during truncation"
                )));
            }
            out.extend_from_slice(&blk[BLOCK_HDR + lo..BLOCK_HDR + hi]);
            start += BLOCK_PAYLOAD as u64;
        }
        Ok(out)
    }

    fn write_control(&self, epoch: u64, half: u8) -> DbResult<()> {
        let mut blk = vec![0u8; BLOCK_SIZE];
        blk[0..4].copy_from_slice(&CTRL_MAGIC.to_le_bytes());
        blk[4..12].copy_from_slice(&epoch.to_le_bytes());
        blk[12] = half;
        let ck = fnv1a(&blk[0..13]);
        blk[13..17].copy_from_slice(&ck.to_le_bytes());
        let _dev = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
        let mut d = self.dev.lock();
        d.write_block(self.region, &blk)?;
        d.sync()?;
        Ok(())
    }

    /// Whether the epoch has outgrown half the region since the last
    /// truncation — the checkpointer's wake-up cue.
    pub fn over_pressure(&self) -> bool {
        self.pressure.load(SeqCst)
    }

    /// Bytes appended in the current epoch (durable or not).
    pub fn epoch_bytes(&self) -> u64 {
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        let g = self.inner.lock();
        g.next_lsn - g.epoch_lsn
    }

    /// The durable horizon.
    pub fn durable_lsn(&self) -> u64 {
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        self.inner.lock().durable_lsn
    }

    /// The end of the stream — the next record's start LSN. A checkpoint
    /// reads this *before* flushing to learn where its truncation cut may
    /// go: every record below it describes a page already dirty in the
    /// pool, which the flush will write.
    pub fn next_lsn(&self) -> u64 {
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        self.inner.lock().next_lsn
    }

    /// Reads the on-device epoch back as `(end_lsn, record)` pairs, and
    /// repositions the in-memory stream to continue after the last whole
    /// record. The scan stops — without error — at the first block that is
    /// unformatted, checksum-damaged, or out of sequence, and at a record
    /// that runs past the recovered bytes: all of those are torn tails in
    /// unacknowledged territory (a successful force destages every block,
    /// in order, before acknowledging).
    fn scan(&self) -> DbResult<Vec<(u64, WalRecord)>> {
        let _order = crate::lock::order::token(crate::lock::order::WAL);
        let mut g = self.inner.lock();
        let epoch = g.epoch_lsn;
        let mut stream = Vec::new();
        {
            let _dev = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
            let mut d = self.dev.lock();
            let mut blk = vec![0u8; BLOCK_SIZE];
            for i in 0..self.half_blocks {
                let want = epoch + i * BLOCK_PAYLOAD as u64;
                d.read_block(self.data_block(g.half, epoch, want), &mut blk)?;
                let magic = crate::bytes::le_u16(&blk, 0)?;
                let used = crate::bytes::le_u16(&blk, 2)? as usize;
                let start = crate::bytes::le_u64(&blk, 4)?;
                let ck = crate::bytes::le_u32(&blk, 12)?;
                if magic != BLOCK_MAGIC
                    || used > BLOCK_PAYLOAD
                    || start != want
                    || ck != fnv1a(&blk[0..12]) ^ fnv1a(&blk[BLOCK_HDR..BLOCK_HDR + used])
                {
                    break;
                }
                stream.extend_from_slice(&blk[BLOCK_HDR..BLOCK_HDR + used]);
                if used < BLOCK_PAYLOAD {
                    break;
                }
            }
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < stream.len() {
            match WalRecord::decode(&stream[pos..]) {
                Ok(Some((rec, n))) => {
                    pos += n;
                    records.push((epoch + pos as u64, rec));
                }
                // A record that doesn't finish, or scribbled header bytes
                // past the last force, are both torn tail: stop here.
                Ok(None) | Err(_) => break,
            }
        }
        g.next_lsn = epoch + pos as u64;
        g.durable_lsn = g.next_lsn;
        // Keep the partial tail block in memory so the next force can
        // rewrite that block in full.
        let whole = (pos / BLOCK_PAYLOAD) * BLOCK_PAYLOAD;
        g.buf_base = epoch + whole as u64;
        g.buf = stream[whole..pos].to_vec();
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smgr::shared_device;
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    fn log_device(nblocks: u64) -> SharedDevice {
        shared_device(MagneticDisk::new(
            "log",
            SimClock::new(),
            DiskProfile::tiny_for_tests(nblocks),
        ))
    }

    fn reg() -> Arc<StatsRegistry> {
        Arc::new(StatsRegistry::new())
    }

    fn insert_rec(blkno: u64, slot: u16, n: usize) -> WalRecord {
        WalRecord::Insert {
            dev: DeviceId::DEFAULT,
            rel: Oid(7),
            blkno,
            slot,
            tuple: vec![slot as u8; n],
        }
    }

    #[test]
    fn records_roundtrip_through_the_codec() {
        let recs = [
            WalRecord::PageInit {
                dev: DeviceId(3),
                rel: Oid(9),
                blkno: 12,
                special_size: 16,
            },
            insert_rec(5, 2, 40),
            WalRecord::Overwrite {
                dev: DeviceId::DEFAULT,
                rel: Oid(7),
                blkno: 5,
                slot: 2,
                offset: 4,
                bytes: vec![1, 2, 3],
            },
            WalRecord::PageImage {
                dev: DeviceId::DEFAULT,
                rel: Oid(8),
                blkno: 0,
                image: vec![9u8; page::PAGE_SIZE],
            },
            WalRecord::Commit {
                xid: XactId(42),
                time_ns: 123_456,
            },
            WalRecord::Abort { xid: XactId(43) },
        ];
        for rec in &recs {
            let mut bytes = Vec::new();
            rec.encode(&mut bytes);
            let (back, n) = WalRecord::decode(&bytes).unwrap().unwrap();
            assert_eq!(&back, rec);
            assert_eq!(n, bytes.len());
            // A truncated prefix is a torn tail, not an error.
            assert!(WalRecord::decode(&bytes[..n - 1]).unwrap().is_none());
        }
    }

    #[test]
    fn append_force_recover_roundtrip() {
        let dev = log_device(4096);
        let end;
        {
            let wal = Wal::create(dev.clone(), reg()).unwrap();
            wal.append(&insert_rec(0, 0, 100)).unwrap();
            end = wal
                .append(&WalRecord::Commit {
                    xid: XactId(2),
                    time_ns: 5,
                })
                .unwrap();
            wal.force().unwrap();
            assert_eq!(wal.durable_lsn(), end);
            // Appended but never forced: lost on "crash", and that is fine.
            wal.append(&insert_rec(1, 0, 50)).unwrap();
        }
        let (wal, recs) = Wal::recover(dev, reg()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].0, end);
        assert!(matches!(recs[1].1, WalRecord::Commit { xid: XactId(2), .. }));
        assert_eq!(wal.durable_lsn(), end);
        // The recovered log keeps appending where the stream left off.
        wal.append(&insert_rec(2, 0, 10)).unwrap();
        wal.force().unwrap();
    }

    #[test]
    fn records_span_blocks() {
        let dev = log_device(4096);
        let n = 40;
        {
            let wal = Wal::create(dev.clone(), reg()).unwrap();
            for i in 0..n {
                // ~1 KB each: the stream crosses several block boundaries.
                wal.append(&insert_rec(i, 0, 1000)).unwrap();
            }
            wal.force().unwrap();
        }
        let (_, recs) = Wal::recover(dev, reg()).unwrap();
        assert_eq!(recs.len() as u64, n);
        for (i, (_, rec)) in recs.iter().enumerate() {
            assert_eq!(*rec, insert_rec(i as u64, 0, 1000));
        }
    }

    #[test]
    fn failed_force_leaves_no_hole() {
        // A force that dies mid-destage must not let a later force strand
        // earlier records: everything non-durable is rewritten every time.
        let clock = SimClock::new();
        let disk = MagneticDisk::new("log", clock.clone(), DiskProfile::tiny_for_tests(4096));
        let faults = disk.fault_plan();
        let (cache, _handle) = simdev::WriteCacheDisk::new(Box::new(disk));
        let dev = shared_device(cache);
        let wal = Wal::create(dev.clone(), reg()).unwrap();

        for i in 0..4 {
            wal.append(&insert_rec(i, 0, 3000)).unwrap();
        }
        faults.fail_after_writes(1);
        assert!(wal.force().is_err());
        faults.clear_write_fault();

        wal.append(&insert_rec(9, 0, 100)).unwrap();
        wal.force().unwrap();

        let (_, recs) = Wal::recover(dev, reg()).unwrap();
        assert_eq!(recs.len(), 5, "all five records must survive the retry");
        assert_eq!(recs[4].1, insert_rec(9, 0, 100));
    }

    #[test]
    fn truncate_empties_the_epoch() {
        let dev = log_device(4096);
        let wal = Wal::create(dev.clone(), reg()).unwrap();
        for i in 0..10 {
            wal.append(&insert_rec(i, 0, 2000)).unwrap();
        }
        wal.force().unwrap();
        let before = wal.epoch_bytes();
        assert!(before > 0);
        wal.truncate_to(wal.next_lsn()).unwrap();
        assert_eq!(wal.epoch_bytes(), 0);
        let (wal, recs) = Wal::recover(dev.clone(), reg()).unwrap();
        assert!(recs.is_empty(), "truncated log must scan empty");
        // LSNs keep growing across the truncation.
        let end = wal.append(&insert_rec(0, 1, 10)).unwrap();
        assert!(end > before);
        wal.force().unwrap();
        let (_, recs) = Wal::recover(dev, reg()).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn truncate_preserves_the_tail_past_the_cut() {
        // Records appended while a checkpoint flushes land after the cut
        // and must survive the truncation — across repeated truncations,
        // which alternate data-area halves.
        let dev = log_device(4096);
        let wal = Wal::create(dev.clone(), reg()).unwrap();
        for round in 0..3u64 {
            for i in 0..6 {
                wal.append(&insert_rec(round * 100 + i, 0, 2500)).unwrap();
            }
            let cut = wal.next_lsn();
            wal.append(&insert_rec(round * 100 + 90, 0, 2500)).unwrap();
            wal.append(&WalRecord::Commit {
                xid: XactId(round as u32 + 2),
                time_ns: round,
            })
            .unwrap();
            wal.force().unwrap();
            wal.truncate_to(cut).unwrap();
            assert!(wal.epoch_bytes() > 0, "the tail must survive");

            let (wal2, recs) = Wal::recover(dev.clone(), reg()).unwrap();
            assert_eq!(recs.len(), 2, "round {round}: exactly the tail survives");
            assert_eq!(recs[0].1, insert_rec(round * 100 + 90, 0, 2500));
            assert!(matches!(recs[1].1, WalRecord::Commit { .. }));
            assert_eq!(wal2.next_lsn(), wal.next_lsn());
            drop(wal2);
        }
    }

    #[test]
    fn full_epoch_rejects_appends() {
        let dev = log_device(80); // region_start=64 ⇒ 7 data blocks per half.
        let wal = Wal::create(dev, reg()).unwrap();
        let mut appended = 0u64;
        let err = loop {
            match wal.append(&insert_rec(0, 0, 4000)) {
                Ok(_) => appended += 1,
                Err(e) => break e,
            }
        };
        assert!(appended >= 8, "a few appends fit, got {appended}");
        assert!(err.to_string().contains("WAL full"), "{err}");
        assert!(wal.over_pressure());
    }

    #[test]
    fn redo_reproduces_page_mutations() {
        let mut live = vec![0u8; page::PAGE_SIZE];
        page::init(&mut live, 0);
        let mut log = Vec::new();

        let slot = page::insert(&mut live, &[7u8; 64]).unwrap();
        log.push(WalRecord::Insert {
            dev: DeviceId::DEFAULT,
            rel: Oid(7),
            blkno: 0,
            slot,
            tuple: vec![7u8; 64],
        });
        let slot2 = page::insert(&mut live, &[8u8; 32]).unwrap();
        log.push(WalRecord::Insert {
            dev: DeviceId::DEFAULT,
            rel: Oid(7),
            blkno: 0,
            slot: slot2,
            tuple: vec![8u8; 32],
        });
        page::item_mut(&mut live, slot).unwrap()[..4].copy_from_slice(&[1, 2, 3, 4]);
        log.push(WalRecord::Overwrite {
            dev: DeviceId::DEFAULT,
            rel: Oid(7),
            blkno: 0,
            slot,
            offset: 0,
            bytes: vec![1, 2, 3, 4],
        });

        let mut replayed = vec![0u8; page::PAGE_SIZE];
        page::init(&mut replayed, 0);
        for rec in &log {
            rec.redo(&mut replayed).unwrap();
        }
        assert_eq!(live, replayed);

        // Replay against the wrong slot state is corruption, not silence.
        let mut bad = vec![0u8; page::PAGE_SIZE];
        page::init(&mut bad, 0);
        page::insert(&mut bad, b"stray").unwrap();
        assert!(log[0].redo(&mut bad).is_err());
    }

    #[test]
    fn region_start_clamps() {
        assert_eq!(region_start(4096), 1024);
        assert_eq!(region_start(1 << 10), 256);
        assert_eq!(region_start(100), 64);
        assert_eq!(region_start(1 << 20), 1024);
        assert_eq!(region_start(168_457), 1024); // the RZ58
    }
}
