//! `minidb` — a POSTGRES-4.0.1-flavoured storage engine.
//!
//! This crate is the substrate the Inversion file system is built on, as
//! POSTGRES was for the system in Olson's 1993 paper. It reproduces, from
//! scratch, every POSTGRES mechanism the paper leans on:
//!
//! * **No-overwrite storage** ([`heap`], [`xact`]): updated and deleted
//!   records are never overwritten in place; the old version is stamped with
//!   the deleting transaction and a new version is appended. The only commit
//!   bookkeeping is the transaction *status file* — no write-ahead log.
//! * **Time travel** ([`xact::Snapshot::AsOf`]): any transaction-consistent
//!   past state of the database is readable.
//! * **Instant crash recovery**: reopening the database is recovery;
//!   uncommitted updates are invisible by construction.
//! * **The device manager switch** ([`smgr`]): relations live on magnetic
//!   disk, NVRAM, a WORM optical jukebox (with extent allocation and a
//!   magnetic-disk staging cache), or tape, all behind one interface.
//! * **Shared buffer cache** ([`buffer`]): LRU over 8 KB pages, 64 buffers
//!   as shipped, 300 as deployed at Berkeley.
//! * **B-tree indices** ([`btree`]).
//! * **Two-phase locking** ([`lock`]) with deadlock detection.
//! * **The vacuum cleaner** ([`vacuum`]): moves obsolete record versions to
//!   archive relations so history survives garbage collection.
//! * **Type and function extensibility** ([`funcs`], [`catalog`]): users
//!   register Rust callables invokable from the query language.
//! * **A POSTQUEL-style query language** ([`query`]): `retrieve`, `append`,
//!   `delete`, `replace`, `define type/function/rule`, with time travel.
//! * **A predicate rules system** ([`rules`]) used for file migration.
//! * **Queryable statistics** ([`stats`]): every layer reports into a
//!   central registry, snapshot via [`Db::stats`] and scannable from the
//!   query language as virtual `pg_stat_*` system relations.
//!
//! The top-level entry point is [`Db`]; per-transaction work happens through
//! [`Session`].
//!
//! # Example
//!
//! ```
//! use minidb::{Db, Datum, Schema, TypeId};
//!
//! let db = Db::open_in_memory().unwrap();
//! let rel = db
//!     .create_table("emp", Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]))
//!     .unwrap();
//! let mut s = db.begin().unwrap();
//! s.insert(rel, vec![Datum::Text("mao".into()), Datum::Int4(29)]).unwrap();
//! s.commit().unwrap();
//!
//! let mut r = db.begin().unwrap();
//! let rows = r.seq_scan(rel).unwrap();
//! assert_eq!(rows.len(), 1);
//! r.commit().unwrap();
//! ```

pub mod btree;
pub mod buffer;
pub(crate) mod bytes;
pub mod catalog;
pub mod check;
pub mod datum;
pub mod db;
pub mod error;
pub mod funcs;
pub mod heap;
pub mod ids;
pub mod io;
pub mod lock;
pub mod page;
pub mod query;
pub mod recovery;
pub mod rules;
pub mod smgr;
pub mod stats;
pub mod vacuum;
pub mod wal;
pub mod xact;

pub use buffer::{BufferPool, BufferStats, PinnedPage, BERKELEY_BUFFERS, DEFAULT_BUFFERS};
pub use catalog::{IndexInfo, RelKind, RelationEntry};
pub use check::Finding;
pub use datum::{decode_row, encode_row, Column, Datum, Row, Schema, TypeId};
pub use db::{Db, DbConfig, Session};
pub use error::{DbError, DbResult};
pub use funcs::{FuncDef, FunctionRegistry};
pub use ids::{DeviceId, Oid, RelId, Tid, XactId};
pub use query::QueryResult;
pub use smgr::{
    shared_device, DeviceManager, GenericManager, JukeboxConfig, JukeboxManager, SharedDevice, Smgr,
};
pub use stats::{
    DeviceIoStats, StatsRegistry, StatsSnapshot, VirtualRowsFn, VirtualTable, VirtualTables,
};
pub use wal::{Wal, WalRecord};
pub use xact::{Snapshot, XactLog, XactState};
