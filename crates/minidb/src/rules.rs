//! The predicate rules system.
//!
//! "We are exploring strategies for using the POSTGRES predicate rules
//! system to allow users and administrators to define migration policies.
//! Arbitrarily complex rules controlling the locations of files or groups of
//! files would be declared to the database manager. When a file met the
//! announced conditions, it would be moved from one location in the storage
//! hierarchy to another."
//!
//! A rule is `(watched relation, event, qualification, action)`; both
//! qualification and action are query-language expressions evaluated with
//! the matching row bound to the variable `this` (and to unqualified column
//! names). Actions are typically calls to registered functions such as
//! Inversion's `migrate(file, device)`.

use crate::catalog::RuleEvent;
use crate::datum::Datum;
use crate::db::Session;
use crate::error::DbResult;
use crate::ids::RelId;
use crate::query::{eval, parse_expr, Binding};

/// The outcome of one rules sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleRun {
    /// Rows whose qualification matched, per rule, as `(rule, matches)`.
    pub fired: Vec<(String, usize)>,
    /// Action results for inspection (rule name, action value).
    pub actions: Vec<(String, Datum)>,
}

/// Evaluates every rule registered for (`rel`, `event`) against the rows
/// currently visible to `session`, executing actions for matches.
///
/// `OnAccess`/`OnUpdate` rules are evaluated when the storage layer calls
/// this at the corresponding moment; `Periodic` rules are evaluated by
/// administrative sweeps (e.g. a migration daemon).
pub fn run_rules(session: &mut Session, rel: RelId, event: RuleEvent) -> DbResult<RuleRun> {
    let rules: Vec<(String, String, String)> = {
        let cat = session.db().catalog();
        cat.rules_for(rel, event)
            .into_iter()
            .map(|r| (r.name.clone(), r.qual.clone(), r.action.clone()))
            .collect()
    };
    let mut run = RuleRun::default();
    if rules.is_empty() {
        return Ok(run);
    }
    let schema = session.db().schema_of(rel)?;
    let rows = session.seq_scan(rel)?;
    for (name, qual_src, action_src) in rules {
        let qual = parse_expr(&qual_src)?;
        let action = parse_expr(&action_src)?;
        let mut matches = 0usize;
        for (_tid, row) in &rows {
            let binding = Binding::single("this", &schema, row);
            if eval(session, &binding, &qual)?.as_bool()? {
                matches += 1;
                let binding = Binding::single("this", &schema, row);
                let out = eval(session, &binding, &action)?;
                run.actions.push((name.clone(), out));
            }
        }
        run.fired.push((name, matches));
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RuleEntry;
    use crate::datum::{Schema, TypeId};
    use crate::db::Db;

    fn setup() -> (Db, RelId) {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table(
                "fileatt",
                Schema::new([("file", TypeId::OID), ("size", TypeId::INT8)]),
            )
            .unwrap();
        let mut s = db.begin().unwrap();
        for (f, sz) in [(1u32, 10i64), (2, 5000), (3, 20_000)] {
            s.insert(rel, vec![Datum::Oid(f), Datum::Int8(sz)]).unwrap();
        }
        s.commit().unwrap();
        (db, rel)
    }

    #[test]
    fn periodic_rule_fires_on_matching_rows() {
        let (db, rel) = setup();
        let moved = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let moved2 = moved.clone();
        db.functions().register("t.note", move |_s, args| {
            moved2.fetch_add(args[0].as_oid()?, std::sync::atomic::Ordering::SeqCst);
            Ok(Datum::Bool(true))
        });
        db.define_function("note", 1, TypeId::BOOL, "t.note", None)
            .unwrap();
        db.define_rule(RuleEntry {
            name: "big_files".into(),
            on_rel: rel,
            event: RuleEvent::Periodic,
            qual: "size > 1000".into(),
            action: "note(this.file)".into(),
        })
        .unwrap();

        let mut s = db.begin().unwrap();
        let run = run_rules(&mut s, rel, RuleEvent::Periodic).unwrap();
        s.commit().unwrap();
        assert_eq!(run.fired, vec![("big_files".into(), 2)]);
        assert_eq!(run.actions.len(), 2);
        // Files 2 and 3 matched: 2 + 3 = 5.
        assert_eq!(moved.load(std::sync::atomic::Ordering::SeqCst), 5);
    }

    #[test]
    fn no_rules_is_a_cheap_noop() {
        let (db, rel) = setup();
        let mut s = db.begin().unwrap();
        let run = run_rules(&mut s, rel, RuleEvent::Periodic).unwrap();
        assert!(run.fired.is_empty());
        s.commit().unwrap();
    }

    #[test]
    fn events_are_independent() {
        let (db, rel) = setup();
        db.functions()
            .register("t.tru", |_s, _| Ok(Datum::Bool(true)));
        db.define_function("tru", 0, TypeId::BOOL, "t.tru", None)
            .unwrap();
        db.define_rule(RuleEntry {
            name: "on_access_only".into(),
            on_rel: rel,
            event: RuleEvent::OnAccess,
            qual: "true".into(),
            action: "tru()".into(),
        })
        .unwrap();
        let mut s = db.begin().unwrap();
        let run = run_rules(&mut s, rel, RuleEvent::Periodic).unwrap();
        assert!(run.fired.is_empty());
        let run = run_rules(&mut s, rel, RuleEvent::OnAccess).unwrap();
        assert_eq!(run.fired[0].1, 3);
        s.commit().unwrap();
    }

    #[test]
    fn rule_defined_through_query_language_fires() {
        let (db, rel) = setup();
        db.functions()
            .register("t.tru", |_s, _| Ok(Datum::Bool(true)));
        db.define_function("tru", 0, TypeId::BOOL, "t.tru", None)
            .unwrap();
        let mut s = db.begin().unwrap();
        s.query(r#"define rule huge on periodic to fileatt where size >= 20000 do tru()"#)
            .unwrap();
        let run = run_rules(&mut s, rel, RuleEvent::Periodic).unwrap();
        assert_eq!(run.fired, vec![("huge".into(), 1)]);
        s.commit().unwrap();
    }
}
