//! amcheck-style structural verification.
//!
//! The paper's robustness claim is that Inversion needs *no fsck*: after a
//! crash, uncommitted updates are invisible by construction of the
//! no-overwrite storage manager. This module is the mechanized form of that
//! claim — a verifier that walks every page, heap, index, the transaction
//! log, and the catalog, and reports each violated invariant as a
//! [`Finding`] instead of asserting or panicking.
//!
//! Entry points:
//!
//! * [`crate::Db::check_all`] — runs every check, returns all findings;
//! * the `pg_check` virtual relation — the same report from the query
//!   language (`retrieve (c.all) from c in pg_check`).
//!
//! Per-layer hooks live next to the structures they verify:
//! [`crate::page::verify`], [`crate::heap::Heap::check`],
//! [`crate::btree::BTree::check`], [`crate::xact::XactLog::check`], and
//! [`crate::catalog::Catalog::check`].
//!
//! ## What is corruption, and what is legal crash debris?
//!
//! Because pages are flushed at commit (and, under memory pressure, at any
//! time), a crash legitimately leaves behind:
//!
//! * tuples whose `xmin` never reached the status log (state `Unknown`) —
//!   invisible by construction, *not* corruption;
//! * uninitialized (all-zero) pages at the end of a relation — extended but
//!   never flushed;
//! * index entries whose heap tuple never reached disk — dangling by tid,
//!   skipped by readers after visibility filtering.
//!
//! The verifier therefore anchors its cross-reference checks on *committed*
//! state: every committed tuple must be decodable, must match its schema,
//! and must be present in every index on the relation; every index entry
//! that resolves to a heap tuple must agree with that tuple's key bytes.

use std::fmt;

use crate::btree::BTree;
use crate::catalog::{RelKind, RelationEntry};
use crate::datum::decode_row;
use crate::db::Db;
use crate::error::DbResult;
use crate::heap::Heap;
use crate::ids::Tid;
use crate::xact::{TupleHeader, XactState};

/// One structural problem found by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The relation the problem is in (or a pseudo-relation such as
    /// `xact-log` / `catalog`).
    pub relation: String,
    /// Page number, when the problem is page-scoped.
    pub page: Option<u64>,
    /// Slot number, when the problem is slot-scoped.
    pub slot: Option<u16>,
    /// Stable machine-readable code, e.g. `page-invariant`.
    pub code: String,
    /// Human-readable description.
    pub detail: String,
}

impl Finding {
    /// Creates a finding scoped to a whole relation.
    pub fn new(
        relation: impl Into<String>,
        code: impl Into<String>,
        detail: impl Into<String>,
    ) -> Finding {
        Finding {
            relation: relation.into(),
            page: None,
            slot: None,
            code: code.into(),
            detail: detail.into(),
        }
    }

    /// Scopes the finding to a page.
    pub fn on_page(mut self, page: u64) -> Finding {
        self.page = Some(page);
        self
    }

    /// Scopes the finding to a slot.
    pub fn on_slot(mut self, slot: u16) -> Finding {
        self.slot = Some(slot);
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.relation)?;
        if let Some(p) = self.page {
            write!(f, " page {p}")?;
        }
        if let Some(s) = self.slot {
            write!(f, " slot {s}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Runs every structural check and returns all findings (empty = clean).
///
/// Infallible by design: I/O and decode errors surface as `check-error`
/// findings rather than aborting the run, so a damaged database still
/// produces a full report.
pub fn check_all(db: &Db) -> Vec<Finding> {
    let mut out = Vec::new();
    let rels: Vec<RelationEntry> = {
        let _order = crate::lock::order::token(crate::lock::order::CATALOG);
        let cat = db.inner.catalog.read();
        out.extend(cat.check());
        cat.relations().cloned().collect()
    };
    out.extend(db.inner.xlog.check());
    // The buffer pool's structural self-audit: every shard's map and clock
    // ring must describe the same set of cached pages.
    out.extend(
        db.inner
            .pool
            .check_consistency()
            .into_iter()
            .map(|detail| Finding::new("buffer-pool", "buffer-inconsistent", detail)),
    );

    for e in &rels {
        match db.inner.smgr.with(e.device, |m| Ok(m.has_rel(e.id))) {
            Ok(true) => {}
            Ok(false) => {
                out.push(Finding::new(
                    &e.name,
                    "catalog-dangling-rel",
                    format!("relation {} is catalogued but absent from {}", e.id, e.device),
                ));
                continue;
            }
            Err(err) => {
                out.push(Finding::new(
                    &e.name,
                    "check-error",
                    format!("cannot reach device {}: {err}", e.device),
                ));
                continue;
            }
        }
        match e.kind {
            RelKind::Heap => {
                let heap = Heap {
                    wal: None,
                    pool: &db.inner.pool,
                    smgr: &db.inner.smgr,
                    xlog: &db.inner.xlog,
                    dev: e.device,
                    rel: e.id,
                    stats: &db.inner.stats,
                };
                out.extend(heap.check(&e.name, &e.schema));
            }
            RelKind::BTreeIndex => {
                let bt = BTree {
                    wal: None,
                    pool: &db.inner.pool,
                    smgr: &db.inner.smgr,
                    dev: e.device,
                    rel: e.id,
                    stats: &db.inner.stats,
                };
                let (findings, entries) = bt.check(&e.name);
                out.extend(findings);
                index_to_heap(db, e, &rels, entries, &mut out);
            }
        }
    }

    for e in rels.iter().filter(|e| e.kind == RelKind::Heap) {
        if !e.indexes.is_empty() {
            if let Err(err) = heap_to_index(db, e, &rels, &mut out) {
                out.push(Finding::new(
                    &e.name,
                    "check-error",
                    format!("heap/index cross-reference aborted: {err}"),
                ));
            }
        }
    }
    out
}

fn relation(rels: &[RelationEntry], id: crate::ids::RelId) -> Option<&RelationEntry> {
    rels.iter().find(|e| e.id == id)
}

/// Index → heap: every index entry that *resolves* to an on-disk tuple must
/// agree with the tuple's key bytes. Entries whose tid does not resolve are
/// legal crash debris (the index page reached disk, the heap page did not)
/// and are skipped — see the module docs.
fn index_to_heap(
    db: &Db,
    index_rel: &RelationEntry,
    rels: &[RelationEntry],
    entries: Vec<(crate::btree::Key, Tid)>,
    out: &mut Vec<Finding>,
) {
    let Some(info) = &index_rel.index else {
        return; // Catalog::check already reported the missing IndexInfo.
    };
    let Some(table) = relation(rels, info.table) else {
        return; // Catalog::check already reported the dangling table.
    };
    let nblocks = match db
        .inner
        .smgr
        .with(table.device, |m| m.nblocks(info.table))
    {
        Ok(n) => n,
        Err(err) => {
            out.push(Finding::new(
                &index_rel.name,
                "check-error",
                format!("cannot size heap {}: {err}", table.name),
            ));
            return;
        }
    };
    for (key, tid) in entries {
        if u64::from(tid.blkno) >= nblocks {
            continue; // Dangling tid: crash debris.
        }
        let resolved: DbResult<Option<Vec<Finding>>> = (|| {
            let pref =
                db.inner
                    .pool
                    .get_page(&db.inner.smgr, table.device, info.table, tid.blkno.into())?;
            let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
            let pbuf = pref.read();
            let data = pbuf.data();
            if !crate::page::is_initialized(data) {
                return Ok(None); // Crash debris.
            }
            let Some(item) = crate::page::item_even_dead(data, tid.slot) else {
                return Ok(None); // Crash debris (or reported by the heap pass).
            };
            let hdr = TupleHeader::decode(item)?;
            if !matches!(db.inner.xlog.state(hdr.xmin), XactState::Committed(_)) {
                return Ok(None); // Uncommitted writer: nothing to cross-check.
            }
            let row = decode_row(&item[TupleHeader::SIZE.min(item.len())..])?;
            let mut local = Vec::new();
            for (ki, &col) in info.key_columns.iter().enumerate() {
                let heap_datum = row.get(col);
                let index_datum = key.get(ki);
                if heap_datum != index_datum {
                    local.push(
                        Finding::new(
                            &index_rel.name,
                            "index-key-mismatch",
                            format!(
                                "entry {key:?} at {tid} disagrees with heap column {col}: \
                                 index {index_datum:?} vs heap {heap_datum:?}"
                            ),
                        )
                        .on_page(tid.blkno.into())
                        .on_slot(tid.slot),
                    );
                }
            }
            Ok(Some(local))
        })();
        match resolved {
            Ok(Some(findings)) => out.extend(findings),
            Ok(None) => {}
            Err(err) => out.push(
                Finding::new(
                    &index_rel.name,
                    "check-error",
                    format!("entry at {tid} unreadable: {err}"),
                )
                .on_page(tid.blkno.into()),
            ),
        }
    }
}

/// Heap → index: every tuple whose inserting transaction committed must have
/// an entry (same key, same tid) in every index on the relation. Commit
/// flushes all dirty pages before writing the status file, so a committed
/// tuple implies its index entries reached disk.
fn heap_to_index(
    db: &Db,
    heap_rel: &RelationEntry,
    rels: &[RelationEntry],
    out: &mut Vec<Finding>,
) -> DbResult<()> {
    let mut indexes = Vec::new();
    for &idx in &heap_rel.indexes {
        let Some(ie) = relation(rels, idx) else {
            continue; // Catalog::check reports dangling index ids.
        };
        let Some(info) = &ie.index else { continue };
        indexes.push((ie, info.key_columns.clone()));
    }
    if indexes.is_empty() {
        return Ok(());
    }
    let heap = Heap {
        wal: None,
        pool: &db.inner.pool,
        smgr: &db.inner.smgr,
        xlog: &db.inner.xlog,
        dev: heap_rel.device,
        rel: heap_rel.id,
        stats: &db.inner.stats,
    };
    heap.scan_all_raw(|tid, hdr, bytes| {
        if !matches!(db.inner.xlog.state(hdr.xmin), XactState::Committed(_)) {
            return Ok(()); // Uncommitted or crashed writer: no entry required.
        }
        let Ok(row) = decode_row(bytes) else {
            return Ok(()); // Heap::check already reported the bad tuple.
        };
        for (ie, key_columns) in &indexes {
            let mut key = Vec::with_capacity(key_columns.len());
            let mut skip = false;
            for &col in key_columns {
                match row.get(col) {
                    Some(d) => key.push(d.clone()),
                    None => skip = true, // Arity findings come from Heap::check.
                }
            }
            if skip {
                continue;
            }
            let bt = BTree {
                wal: None,
                pool: &db.inner.pool,
                smgr: &db.inner.smgr,
                dev: ie.device,
                rel: ie.id,
                stats: &db.inner.stats,
            };
            match bt.search(&key) {
                Ok(tids) if tids.contains(&tid) => {}
                Ok(_) => out.push(
                    Finding::new(
                        &ie.name,
                        "index-missing-entry",
                        format!(
                            "committed tuple at {tid} in {} has no entry for key {key:?}",
                            heap_rel.name
                        ),
                    )
                    .on_page(tid.blkno.into())
                    .on_slot(tid.slot),
                ),
                Err(err) => out.push(Finding::new(
                    &ie.name,
                    "check-error",
                    format!("search for {key:?} failed: {err}"),
                )),
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::{Datum, Schema, TypeId};
    use crate::ids::XactId;

    fn sample_db() -> (Db, crate::ids::RelId) {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table(
                "emp",
                Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
            )
            .unwrap();
        db.create_index("emp_name_idx", rel, &["name"]).unwrap();
        let mut s = db.begin().unwrap();
        for (n, a) in [("mao", 29), ("mike", 31), ("wei", 27)] {
            s.insert(rel, vec![Datum::Text(n.into()), Datum::Int4(a)])
                .unwrap();
        }
        s.commit().unwrap();
        (db, rel)
    }

    #[test]
    fn clean_database_has_zero_findings() {
        let (db, _) = sample_db();
        let findings = db.check_all();
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn clean_after_deletes_updates_and_aborts() {
        let (db, rel) = sample_db();
        let mut s = db.begin().unwrap();
        let rows = s.seq_scan(rel).unwrap();
        let (tid, _) = rows[0].clone();
        s.delete(rel, tid).unwrap();
        let (tid2, mut row2) = rows[1].clone();
        row2[1] = Datum::Int4(99);
        s.update(rel, tid2, row2).unwrap();
        s.commit().unwrap();
        let mut a = db.begin().unwrap();
        a.insert(rel, vec![Datum::Text("gone".into()), Datum::Int4(1)])
            .unwrap();
        a.abort().unwrap();
        let findings = db.check_all();
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    /// Flips bytes inside a cached heap page and asserts the checker sees
    /// the damage (the corruption-seeding half of the acceptance criteria).
    #[test]
    fn detects_seeded_page_header_corruption() {
        let (db, rel) = sample_db();
        let e = {
            let cat = db.catalog();
            cat.relation(rel).unwrap().clone()
        };
        let pref = db
            .inner
            .pool
            .get_page(&db.inner.smgr, e.device, rel, 0)
            .unwrap();
        {
            let mut pbuf = pref.write();
            // Scribble the slot array (it starts right after the 20-byte
            // header): point slot 0 past the page end.
            let data = pbuf.data_mut();
            data[20..22].copy_from_slice(&(crate::page::PAGE_SIZE as u16 - 2).to_le_bytes());
        }
        let findings = db.check_all();
        assert!(
            findings.iter().any(|f| f.relation == "emp" && f.code == "page-invariant"),
            "corruption not detected: {findings:?}"
        );
    }

    #[test]
    fn detects_invalid_xmin() {
        let (db, rel) = sample_db();
        let e = {
            let cat = db.catalog();
            cat.relation(rel).unwrap().clone()
        };
        let pref = db
            .inner
            .pool
            .get_page(&db.inner.smgr, e.device, rel, 0)
            .unwrap();
        {
            let mut pbuf = pref.write();
            let data = pbuf.data_mut();
            let item = crate::page::item_mut(data, 0).unwrap();
            item[..4].copy_from_slice(&XactId::INVALID.0.to_le_bytes());
        }
        let findings = db.check_all();
        assert!(
            findings.iter().any(|f| f.code == "mvcc-xmin-invalid"),
            "invalid xmin not detected: {findings:?}"
        );
    }

    #[test]
    fn detects_missing_index_entry() {
        let (db, rel) = sample_db();
        // Remove one committed key from the index behind the heap's back.
        let (idx_entry, key, tid) = {
            let cat = db.catalog();
            let e = cat.relation(rel).unwrap();
            let ie = cat.relation(e.indexes[0]).unwrap().clone();
            drop(cat);
            let mut s = db.begin().unwrap();
            let (tid, row) = s.seq_scan(rel).unwrap()[0].clone();
            s.commit().unwrap();
            (ie, vec![row[0].clone()], tid)
        };
        let bt = BTree {
            wal: None,
            pool: &db.inner.pool,
            smgr: &db.inner.smgr,
            dev: idx_entry.device,
            rel: idx_entry.id,
            stats: &db.inner.stats,
        };
        assert!(bt.delete(&key, tid).unwrap());
        let findings = db.check_all();
        assert!(
            findings.iter().any(|f| f.code == "index-missing-entry"),
            "missing index entry not detected: {findings:?}"
        );
    }

    #[test]
    fn detects_corrupt_btree_meta() {
        let (db, rel) = sample_db();
        let idx = {
            let cat = db.catalog();
            let e = cat.relation(rel).unwrap();
            cat.relation(e.indexes[0]).unwrap().clone()
        };
        let pref = db
            .inner
            .pool
            .get_page(&db.inner.smgr, idx.device, idx.id, 0)
            .unwrap();
        {
            let mut pbuf = pref.write();
            let data = pbuf.data_mut();
            let sp = crate::page::special_mut(data);
            sp[..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        }
        let findings = db.check_all();
        assert!(
            findings.iter().any(|f| f.relation == idx.name && f.code == "btree-meta"),
            "corrupt meta not detected: {findings:?}"
        );
    }

    #[test]
    fn pg_check_relation_reports_findings() {
        let (db, _) = sample_db();
        let mut s = db.begin().unwrap();
        let res = s
            .query("retrieve (c.relation, c.code) from c in pg_check")
            .unwrap();
        s.commit().unwrap();
        assert!(res.rows.is_empty(), "clean db, got {:?}", res.rows);
    }

    #[test]
    fn finding_display_is_readable() {
        let f = Finding::new("emp", "page-invariant", "slot 3 overlaps slot 4")
            .on_page(7)
            .on_slot(3);
        assert_eq!(
            f.to_string(),
            "[page-invariant] emp page 7 slot 3: slot 3 overlaps slot 4"
        );
    }
}
