//! No-overwrite heap relations.
//!
//! "When a record is updated or deleted, the original record is marked
//! invalid, but remains in place. For updates, a new record containing the
//! new values is added to the database." Deletion stamps the deleting
//! transaction id (`xmax`) into the tuple header in place — the only in-place
//! mutation the storage manager ever performs — and inserts append. Old
//! versions stay readable forever (or until the vacuum cleaner archives
//! them), which is what makes time travel work.

use crate::buffer::BufferPool;
use crate::datum::{decode_row, encode_row, Row};
use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, RelId, Tid, XactId};
use crate::page;
use crate::smgr::Smgr;
use crate::stats::StatsRegistry;
use crate::xact::{Snapshot, TupleHeader, XactLog};

/// The largest encoded row that fits in one heap tuple.
pub const MAX_ROW: usize = page::MAX_ITEM - TupleHeader::SIZE;

/// A handle binding a heap relation to the machinery needed to operate on it.
pub struct Heap<'a> {
    /// The shared buffer cache.
    pub pool: &'a BufferPool,
    /// The device manager switch.
    pub smgr: &'a Smgr,
    /// The transaction status file (for visibility checks).
    pub xlog: &'a XactLog,
    /// Device the relation lives on.
    pub dev: DeviceId,
    /// The relation.
    pub rel: RelId,
    /// Where scan/fetch/append counts go.
    pub stats: &'a StatsRegistry,
    /// The write-ahead log, when mutations must be logged. `None` runs
    /// unlogged — read paths, integrity checks, and vacuum rewrites that
    /// checkpoint before and after instead.
    pub wal: Option<&'a crate::wal::Wal>,
}

impl<'a> Heap<'a> {
    /// Appends `rec` to the WAL (if one is attached) and stamps `data`'s
    /// page LSN with the record's end, upholding the LSN-before-write rule
    /// the buffer manager enforces on writeback.
    fn log(&self, data: &mut [u8], rec: &crate::wal::WalRecord) -> DbResult<()> {
        if let Some(wal) = self.wal {
            let end = wal.append(rec)?;
            page::set_lsn(data, end);
        }
        Ok(())
    }

    /// Number of pages in the relation.
    pub fn nblocks(&self) -> DbResult<u64> {
        self.smgr.with(self.dev, |m| m.nblocks(self.rel))
    }

    /// Structurally verifies every page and tuple of this heap, reporting
    /// problems as [`crate::check::Finding`]s (empty = clean).
    ///
    /// Uninitialized pages and tuples with an `Unknown` `xmin` are legal
    /// crash debris, not corruption — see [`crate::check`]. Committed tuples
    /// must carry a valid header, decode as a row, and match `schema`'s
    /// arity.
    pub fn check(&self, name: &str, schema: &crate::datum::Schema) -> Vec<crate::check::Finding> {
        use crate::check::Finding;
        use crate::xact::XactState;
        let mut out = Vec::new();
        let nblocks = match self.nblocks() {
            Ok(n) => n,
            Err(e) => {
                out.push(Finding::new(
                    name,
                    "check-error",
                    format!("cannot size relation: {e}"),
                ));
                return out;
            }
        };
        for blkno in 0..nblocks {
            let pref = match self.pool.get_page(self.smgr, self.dev, self.rel, blkno) {
                Ok(p) => p,
                Err(e) => {
                    out.push(
                        Finding::new(name, "check-error", format!("page unreadable: {e}"))
                            .on_page(blkno),
                    );
                    continue;
                }
            };
            let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
            let pbuf = pref.read();
            let data = pbuf.data();
            if !page::is_initialized(data) {
                continue; // Extended but never flushed: legal crash debris.
            }
            for v in page::verify(data) {
                out.push(Finding::new(name, "page-invariant", v).on_page(blkno));
            }
            for slot in 0..page::nslots(data) {
                let Some(item) = page::item_even_dead(data, slot) else {
                    continue; // Out-of-range slots were reported by verify.
                };
                let hdr = match TupleHeader::decode(item) {
                    Ok(h) => h,
                    Err(e) => {
                        out.push(
                            Finding::new(name, "tuple-header", e.to_string())
                                .on_page(blkno)
                                .on_slot(slot),
                        );
                        continue;
                    }
                };
                if hdr.xmin == XactId::INVALID {
                    out.push(
                        Finding::new(name, "mvcc-xmin-invalid", "tuple with xmin 0")
                            .on_page(blkno)
                            .on_slot(slot),
                    );
                    continue;
                }
                if matches!(self.xlog.state(hdr.xmin), XactState::Committed(_)) {
                    match decode_row(&item[TupleHeader::SIZE..]) {
                        Ok(row) => {
                            if row.len() != schema.len() {
                                out.push(
                                    Finding::new(
                                        name,
                                        "tuple-arity",
                                        format!(
                                            "committed tuple has {} columns, schema has {}",
                                            row.len(),
                                            schema.len()
                                        ),
                                    )
                                    .on_page(blkno)
                                    .on_slot(slot),
                                );
                            }
                        }
                        Err(e) => {
                            out.push(
                                Finding::new(
                                    name,
                                    "tuple-undecodable",
                                    format!("committed tuple does not decode: {e}"),
                                )
                                .on_page(blkno)
                                .on_slot(slot),
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// Inserts `row` on behalf of `xid`, returning the new tuple's id.
    pub fn insert(&self, xid: XactId, row: &[crate::datum::Datum]) -> DbResult<Tid> {
        self.insert_bytes(
            TupleHeader {
                xmin: xid,
                xmax: XactId::INVALID,
            },
            &encode_row(row),
        )
    }

    /// Inserts a pre-encoded row under an explicit header (vacuum uses this
    /// to move tuples while preserving their visibility information).
    pub fn insert_bytes(&self, hdr: TupleHeader, row_bytes: &[u8]) -> DbResult<Tid> {
        self.stats.heap.appends.bump();
        if row_bytes.len() > MAX_ROW {
            return Err(DbError::TupleTooBig {
                size: row_bytes.len(),
                max: MAX_ROW,
            });
        }
        let mut tuple = Vec::with_capacity(TupleHeader::SIZE + row_bytes.len());
        tuple.extend_from_slice(&hdr.encode());
        tuple.extend_from_slice(row_bytes);

        // Try the last page first; extend if it will not fit.
        let nblocks = self.nblocks()?;
        if nblocks > 0 {
            let blkno = nblocks - 1;
            let pref = self.pool.get_page(self.smgr, self.dev, self.rel, blkno)?;
            let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
            let mut pbuf = pref.write();
            let data = pbuf.data_mut();
            if !page::is_initialized(data) {
                page::init(data, 0);
                self.log_init(data, blkno)?;
            }
            if page::fits(data, tuple.len()) {
                let slot = page::insert(data, &tuple)?;
                self.log_insert(data, blkno, slot, &tuple)?;
                return Ok(Tid::new(blkno as u32, slot));
            }
        }
        let (blkno, pref) = self.pool.new_page(self.smgr, self.dev, self.rel)?;
        let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
        let mut pbuf = pref.write();
        let data = pbuf.data_mut();
        page::init(data, 0);
        self.log_init(data, blkno)?;
        let slot = page::insert(data, &tuple)?;
        self.log_insert(data, blkno, slot, &tuple)?;
        Ok(Tid::new(blkno as u32, slot))
    }

    fn log_init(&self, data: &mut [u8], blkno: u64) -> DbResult<()> {
        self.log(
            data,
            &crate::wal::WalRecord::PageInit {
                dev: self.dev,
                rel: self.rel,
                blkno,
                special_size: 0,
            },
        )
    }

    fn log_insert(&self, data: &mut [u8], blkno: u64, slot: u16, tuple: &[u8]) -> DbResult<()> {
        self.log(
            data,
            &crate::wal::WalRecord::Insert {
                dev: self.dev,
                rel: self.rel,
                blkno,
                slot,
                tuple: tuple.to_vec(),
            },
        )
    }

    /// Marks the tuple at `tid` as deleted by `xid`.
    ///
    /// Returns `false` if the tuple was already deleted (its `xmax` is set
    /// and the deleter did not abort).
    pub fn delete(&self, xid: XactId, tid: Tid) -> DbResult<bool> {
        let pref = self
            .pool
            .get_page(self.smgr, self.dev, self.rel, tid.blkno as u64)?;
        let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
        let mut pbuf = pref.write();
        let data = pbuf.data_mut();
        let item = page::item_mut(data, tid.slot)
            .ok_or_else(|| DbError::NotFound(format!("tuple {tid} in {}", self.rel)))?;
        let hdr = TupleHeader::decode(item)?;
        if hdr.xmax.is_valid() {
            // An aborted deleter leaves a stale xmax we may overwrite.
            match self.xlog.state(hdr.xmax) {
                crate::xact::XactState::Aborted | crate::xact::XactState::Unknown => {}
                _ => return Ok(false),
            }
        }
        let new_hdr = TupleHeader {
            xmin: hdr.xmin,
            xmax: xid,
        };
        item[..TupleHeader::SIZE].copy_from_slice(&new_hdr.encode());
        self.log(
            data,
            &crate::wal::WalRecord::Overwrite {
                dev: self.dev,
                rel: self.rel,
                blkno: tid.blkno as u64,
                slot: tid.slot,
                offset: 0,
                bytes: new_hdr.encode().to_vec(),
            },
        )?;
        Ok(true)
    }

    /// Replaces the tuple at `tid` with `row`: stamps the old version and
    /// appends the new one, returning its id.
    pub fn update(&self, xid: XactId, tid: Tid, row: &[crate::datum::Datum]) -> DbResult<Tid> {
        if !self.delete(xid, tid)? {
            return Err(DbError::Invalid(format!(
                "tuple {tid} concurrently deleted"
            )));
        }
        self.insert(xid, row)
    }

    /// Fetches the row at `tid` if it is visible under `snap`.
    pub fn fetch(&self, snap: &Snapshot, tid: Tid) -> DbResult<Option<Row>> {
        self.stats.heap.fetches.bump();
        if matches!(snap, Snapshot::AsOf(_)) {
            self.stats.xact.time_travel_reads.bump();
        }
        let nblocks = self.nblocks()?;
        if tid.blkno as u64 >= nblocks {
            return Ok(None);
        }
        let pref = self
            .pool
            .get_page(self.smgr, self.dev, self.rel, tid.blkno as u64)?;
        let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
        let pbuf = pref.read();
        let data = pbuf.data();
        if !page::is_initialized(data) {
            return Ok(None);
        }
        let Some(item) = page::item(data, tid.slot) else {
            return Ok(None);
        };
        let hdr = TupleHeader::decode(item)?;
        if !snap.visible(hdr, self.xlog) {
            return Ok(None);
        }
        Ok(Some(decode_row(&item[TupleHeader::SIZE..])?))
    }

    /// Calls `f` for every tuple visible under `snap`, in physical order.
    /// `f` returns `false` to stop the scan early.
    pub fn scan_visible(
        &self,
        snap: &Snapshot,
        mut f: impl FnMut(Tid, Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.stats.heap.scans.bump();
        if matches!(snap, Snapshot::AsOf(_)) {
            self.stats.xact.time_travel_reads.bump();
        }
        let nblocks = self.nblocks()?;
        for blkno in 0..nblocks {
            let pref = self.pool.get_page(self.smgr, self.dev, self.rel, blkno)?;
            // Collect matches under the read lock, then release before
            // calling out (f may want to fetch other pages).
            let mut visible_rows = Vec::new();
            {
                let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
                let pbuf = pref.read();
                let data = pbuf.data();
                if !page::is_initialized(data) {
                    continue;
                }
                for (slot, item) in page::iter(data) {
                    let hdr = TupleHeader::decode(item)?;
                    if snap.visible(hdr, self.xlog) {
                        visible_rows.push((
                            Tid::new(blkno as u32, slot),
                            decode_row(&item[TupleHeader::SIZE..])?,
                        ));
                    }
                }
            }
            for (tid, row) in visible_rows {
                if !f(tid, row)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Collects every visible tuple (convenience over [`Heap::scan_visible`]).
    pub fn scan_collect(&self, snap: &Snapshot) -> DbResult<Vec<(Tid, Row)>> {
        let mut out = Vec::new();
        self.scan_visible(snap, |tid, row| {
            out.push((tid, row));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Calls `f` for every tuple regardless of visibility, including ones in
    /// dead page slots, with raw header and bytes. The vacuum cleaner's scan.
    pub fn scan_all_raw(
        &self,
        mut f: impl FnMut(Tid, TupleHeader, &[u8]) -> DbResult<()>,
    ) -> DbResult<()> {
        self.stats.heap.scans.bump();
        let nblocks = self.nblocks()?;
        for blkno in 0..nblocks {
            let pref = self.pool.get_page(self.smgr, self.dev, self.rel, blkno)?;
            let _order = crate::lock::order::token(crate::lock::order::HEAP_PAGE);
            let pbuf = pref.read();
            let data = pbuf.data();
            if !page::is_initialized(data) {
                continue;
            }
            for slot in 0..page::nslots(data) {
                if let Some(item) = page::item_even_dead(data, slot) {
                    let hdr = TupleHeader::decode(item)?;
                    f(
                        Tid::new(blkno as u32, slot),
                        hdr,
                        &item[TupleHeader::SIZE..],
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;
    use crate::ids::Oid;
    use crate::smgr::{shared_device, GenericManager};
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    struct Fixture {
        pool: BufferPool,
        smgr: Smgr,
        xlog: XactLog,
        rel: RelId,
        stats: StatsRegistry,
    }

    impl Fixture {
        fn new() -> Fixture {
            let clock = SimClock::new();
            let dev = shared_device(MagneticDisk::new(
                "d",
                clock.clone(),
                DiskProfile::tiny_for_tests(16384),
            ));
            let logdev = shared_device(MagneticDisk::new(
                "log",
                clock,
                DiskProfile::tiny_for_tests(256),
            ));
            let mut smgr = Smgr::new();
            smgr.register(
                DeviceId::DEFAULT,
                Box::new(GenericManager::format(dev).unwrap()),
            )
            .unwrap();
            let rel = Oid(50);
            smgr.with(DeviceId::DEFAULT, |m| m.create_rel(rel)).unwrap();
            Fixture {
                pool: BufferPool::new(16),
                smgr,
                xlog: XactLog::create(logdev).unwrap(),
                rel,
                stats: StatsRegistry::new(),
            }
        }

        fn heap(&self) -> Heap<'_> {
            Heap {
                pool: &self.pool,
                smgr: &self.smgr,
                xlog: &self.xlog,
                dev: DeviceId::DEFAULT,
                rel: self.rel,
                stats: &self.stats,
                wal: None,
            }
        }

        fn begin(&self) -> (XactId, Snapshot) {
            let xid = self.xlog.start().unwrap();
            let mut active = self.xlog.active_set();
            active.remove(&xid);
            (xid, Snapshot::Current { xid, active })
        }
    }

    fn row(n: i32) -> Row {
        vec![Datum::Int4(n), Datum::Text(format!("row{n}"))]
    }

    #[test]
    fn insert_fetch_visible_to_self() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (xid, snap) = fx.begin();
        let tid = h.insert(xid, &row(1)).unwrap();
        assert_eq!(h.fetch(&snap, tid).unwrap(), Some(row(1)));
    }

    #[test]
    fn uncommitted_insert_invisible_to_others() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        let tid = h.insert(x1, &row(1)).unwrap();
        let (_, snap2) = fx.begin();
        assert_eq!(h.fetch(&snap2, tid).unwrap(), None);
        // After commit, a *new* snapshot sees it.
        fx.xlog
            .commit(x1, simdev::SimInstant::from_nanos(10))
            .unwrap();
        let (_, snap3) = fx.begin();
        assert_eq!(h.fetch(&snap3, tid).unwrap(), Some(row(1)));
    }

    #[test]
    fn delete_hides_from_later_snapshots_keeps_history() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        let tid = h.insert(x1, &row(7)).unwrap();
        fx.xlog
            .commit(x1, simdev::SimInstant::from_nanos(10))
            .unwrap();

        let (x2, snap2) = fx.begin();
        assert!(h.delete(x2, tid).unwrap());
        assert_eq!(
            h.fetch(&snap2, tid).unwrap(),
            None,
            "deleter no longer sees it"
        );
        fx.xlog
            .commit(x2, simdev::SimInstant::from_nanos(20))
            .unwrap();

        let (_, snap3) = fx.begin();
        assert_eq!(h.fetch(&snap3, tid).unwrap(), None);

        // Time travel to before the delete: the row is there.
        let t15 = Snapshot::AsOf(simdev::SimInstant::from_nanos(15));
        assert_eq!(h.fetch(&t15, tid).unwrap(), Some(row(7)));
        // And before the insert: nothing.
        let t5 = Snapshot::AsOf(simdev::SimInstant::from_nanos(5));
        assert_eq!(h.fetch(&t5, tid).unwrap(), None);
    }

    #[test]
    fn aborted_delete_leaves_tuple_visible_and_redeletable() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        let tid = h.insert(x1, &row(3)).unwrap();
        fx.xlog
            .commit(x1, simdev::SimInstant::from_nanos(10))
            .unwrap();

        let (x2, _) = fx.begin();
        assert!(h.delete(x2, tid).unwrap());
        fx.xlog.abort(x2).unwrap();

        let (x3, snap3) = fx.begin();
        assert_eq!(h.fetch(&snap3, tid).unwrap(), Some(row(3)));
        // A new transaction can delete it again (stale aborted xmax).
        assert!(h.delete(x3, tid).unwrap());
    }

    #[test]
    fn double_delete_by_committed_xact_returns_false() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        let tid = h.insert(x1, &row(3)).unwrap();
        fx.xlog
            .commit(x1, simdev::SimInstant::from_nanos(10))
            .unwrap();
        let (x2, _) = fx.begin();
        assert!(h.delete(x2, tid).unwrap());
        assert!(!h.delete(x2, tid).unwrap());
    }

    #[test]
    fn update_creates_new_version() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        let t1 = h.insert(x1, &row(1)).unwrap();
        fx.xlog
            .commit(x1, simdev::SimInstant::from_nanos(10))
            .unwrap();

        let (x2, snap2) = fx.begin();
        let t2 = h.update(x2, t1, &row(2)).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(h.fetch(&snap2, t1).unwrap(), None);
        assert_eq!(h.fetch(&snap2, t2).unwrap(), Some(row(2)));
        fx.xlog
            .commit(x2, simdev::SimInstant::from_nanos(20))
            .unwrap();

        // Both versions reachable through time travel.
        let t15 = Snapshot::AsOf(simdev::SimInstant::from_nanos(15));
        assert_eq!(h.fetch(&t15, t1).unwrap(), Some(row(1)));
        let t25 = Snapshot::AsOf(simdev::SimInstant::from_nanos(25));
        assert_eq!(h.fetch(&t25, t2).unwrap(), Some(row(2)));
    }

    #[test]
    fn scan_sees_only_visible() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        for i in 0..5 {
            h.insert(x1, &row(i)).unwrap();
        }
        fx.xlog
            .commit(x1, simdev::SimInstant::from_nanos(10))
            .unwrap();
        let (x2, _) = fx.begin();
        h.insert(x2, &row(99)).unwrap(); // Uncommitted.

        let (_, snap) = fx.begin();
        let rows = h.scan_collect(&snap).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(_, r)| r[0] != Datum::Int4(99)));
    }

    #[test]
    fn scan_early_stop() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, snap) = fx.begin();
        for i in 0..10 {
            h.insert(x1, &row(i)).unwrap();
        }
        let mut seen = 0;
        h.scan_visible(&snap, |_, _| {
            seen += 1;
            Ok(seen < 3)
        })
        .unwrap();
        assert_eq!(seen, 3);
    }

    #[test]
    fn multi_page_insert_and_scan() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, snap) = fx.begin();
        // ~2 KB rows: 3-4 per page, so 50 rows span many pages.
        for i in 0..50 {
            let big = vec![Datum::Int4(i), Datum::Bytes(vec![i as u8; 2000])];
            h.insert(x1, &big).unwrap();
        }
        assert!(h.nblocks().unwrap() > 5);
        let rows = h.scan_collect(&snap).unwrap();
        assert_eq!(rows.len(), 50);
        for (i, (_, r)) in rows.iter().enumerate() {
            assert_eq!(r[0], Datum::Int4(i as i32), "physical order preserved");
        }
    }

    #[test]
    fn oversized_row_rejected() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        let huge = vec![Datum::Bytes(vec![0u8; MAX_ROW + 1])];
        assert!(matches!(
            h.insert(x1, &huge),
            Err(DbError::TupleTooBig { .. })
        ));
    }

    #[test]
    fn max_size_row_fits_one_per_page() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, snap) = fx.begin();
        // Encoded row: 2 (ncols) + 1 (tag) + 4 (len) + n  = MAX_ROW.
        let n = MAX_ROW - 7;
        let tid = h.insert(x1, &[Datum::Bytes(vec![9u8; n])]).unwrap();
        let got = h.fetch(&snap, tid).unwrap().unwrap();
        assert_eq!(got[0].as_bytes().unwrap().len(), n);
        // The next insert of the same size must go to a fresh page.
        let tid2 = h.insert(x1, &[Datum::Bytes(vec![8u8; n])]).unwrap();
        assert_ne!(tid.blkno, tid2.blkno);
    }

    #[test]
    fn fetch_out_of_range_is_none() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (_, snap) = fx.begin();
        assert_eq!(h.fetch(&snap, Tid::new(99, 0)).unwrap(), None);
    }

    #[test]
    fn scan_all_raw_sees_deleted_versions() {
        let fx = Fixture::new();
        let h = fx.heap();
        let (x1, _) = fx.begin();
        let tid = h.insert(x1, &row(1)).unwrap();
        fx.xlog
            .commit(x1, simdev::SimInstant::from_nanos(10))
            .unwrap();
        let (x2, _) = fx.begin();
        h.delete(x2, tid).unwrap();
        fx.xlog
            .commit(x2, simdev::SimInstant::from_nanos(20))
            .unwrap();

        let mut count = 0;
        h.scan_all_raw(|_, hdr, _| {
            count += 1;
            assert_eq!(hdr.xmin, x1);
            assert_eq!(hdr.xmax, x2);
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 1);
    }
}
