//! Model-based checking of the no-overwrite storage manager's core claim:
//! after any sequence of transactions (committed and aborted), the database
//! state visible *now* and at *every past checkpoint* equals what a trivial
//! reference model says it should be.

use std::collections::BTreeMap;

use minidb::{Datum, Db, Schema, Tid, TypeId};
use proptest::prelude::*;
use simdev::SimInstant;

/// One step of a transaction script.
#[derive(Debug, Clone)]
enum Step {
    /// Insert a row with this value.
    Insert(i32),
    /// Delete the k-th currently-live row (modulo live count).
    Delete(usize),
    /// Update the k-th currently-live row to a new value.
    Update(usize, i32),
}

/// A whole transaction: steps plus whether it commits.
#[derive(Debug, Clone)]
struct Txn {
    steps: Vec<Step>,
    commit: bool,
}

fn txn_strategy() -> impl Strategy<Value = Txn> {
    (
        prop::collection::vec(
            prop_oneof![
                (0..1000i32).prop_map(Step::Insert),
                (0..64usize).prop_map(Step::Delete),
                (0..64usize, 0..1000i32).prop_map(|(k, v)| Step::Update(k, v)),
            ],
            1..8,
        ),
        prop::bool::ANY,
    )
        .prop_map(|(steps, commit)| Txn { steps, commit })
}

/// Multiset of values visible in the reference model.
type ModelState = BTreeMap<i32, usize>;

fn add(m: &mut ModelState, v: i32) {
    *m.entry(v).or_insert(0) += 1;
}

fn remove(m: &mut ModelState, v: i32) {
    if let Some(n) = m.get_mut(&v) {
        *n -= 1;
        if *n == 0 {
            m.remove(&v);
        }
    }
}

fn observed(db: &Db, rel: minidb::RelId, at: Option<SimInstant>) -> ModelState {
    let rows = match at {
        Some(t) => db.snapshot_at(t).seq_scan(rel).unwrap(),
        None => {
            let mut s = db.begin().unwrap();
            let rows = s.seq_scan(rel).unwrap();
            s.commit().unwrap();
            rows
        }
    };
    let mut m = ModelState::new();
    for (_, row) in rows {
        add(&mut m, row[0].as_int().unwrap() as i32);
    }
    m
}

fn run_script(txns: Vec<Txn>) {
    let db = Db::open_in_memory().unwrap();
    let rel = db
        .create_table("t", Schema::new([("v", TypeId::INT4)]))
        .unwrap();

    // Model state and live tids mirror *committed* reality; per-transaction
    // scratch copies absorb the steps and are adopted only on commit.
    let mut committed: ModelState = ModelState::new();
    let mut committed_tids: Vec<(Tid, i32)> = Vec::new();
    let mut checkpoints: Vec<(SimInstant, ModelState)> = vec![(db.now(), committed.clone())];

    for txn in txns {
        let mut s = db.begin().unwrap();
        let mut scratch = committed.clone();
        let mut scratch_tids = committed_tids.clone();
        for step in txn.steps {
            match step {
                Step::Insert(v) => {
                    let tid = s.insert(rel, vec![Datum::Int4(v)]).unwrap();
                    add(&mut scratch, v);
                    scratch_tids.push((tid, v));
                }
                Step::Delete(k) => {
                    if scratch_tids.is_empty() {
                        continue;
                    }
                    let (tid, v) = scratch_tids.remove(k % scratch_tids.len());
                    assert!(s.delete(rel, tid).unwrap());
                    remove(&mut scratch, v);
                }
                Step::Update(k, nv) => {
                    if scratch_tids.is_empty() {
                        continue;
                    }
                    let i = k % scratch_tids.len();
                    let (tid, old) = scratch_tids[i];
                    let new_tid = s.update(rel, tid, vec![Datum::Int4(nv)]).unwrap();
                    scratch_tids[i] = (new_tid, nv);
                    remove(&mut scratch, old);
                    add(&mut scratch, nv);
                }
            }
        }
        if txn.commit {
            s.commit().unwrap();
            committed = scratch;
            committed_tids = scratch_tids;
        } else {
            s.abort().unwrap();
        }
        // Checkpoint after every transaction boundary.
        checkpoints.push((db.now(), committed.clone()));
        // The present always matches the model.
        assert_eq!(
            observed(&db, rel, None),
            committed,
            "current state diverged"
        );
    }

    // Every checkpoint in history still reads exactly as recorded.
    for (i, (t, expect)) in checkpoints.iter().enumerate() {
        assert_eq!(
            &observed(&db, rel, Some(*t)),
            expect,
            "checkpoint {i} at {t} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mvcc_matches_reference_model(txns in prop::collection::vec(txn_strategy(), 1..12)) {
        run_script(txns);
    }
}

#[test]
fn mvcc_model_hand_picked_scenarios() {
    // Abort-heavy and delete-heavy scripts that regressions like stale-xmax
    // handling would trip over.
    run_script(vec![
        Txn {
            steps: vec![Step::Insert(1), Step::Insert(2)],
            commit: true,
        },
        Txn {
            steps: vec![Step::Delete(0), Step::Update(0, 9)],
            commit: false,
        },
        Txn {
            steps: vec![Step::Delete(0)],
            commit: true,
        },
        Txn {
            steps: vec![Step::Update(0, 7), Step::Delete(0)],
            commit: true,
        },
        Txn {
            steps: vec![Step::Insert(5)],
            commit: false,
        },
        Txn {
            steps: vec![Step::Insert(6)],
            commit: true,
        },
    ]);
}

#[test]
fn mvcc_model_after_vacuum_history_still_matches() {
    // Same invariant, but run the vacuum cleaner midway: checkpoints before
    // the vacuum must still read correctly (from the archive).
    let db = Db::open_in_memory().unwrap();
    let rel = db
        .create_table("t", Schema::new([("v", TypeId::INT4)]))
        .unwrap();
    let mut s = db.begin().unwrap();
    let t1 = s.insert(rel, vec![Datum::Int4(1)]).unwrap();
    s.insert(rel, vec![Datum::Int4(2)]).unwrap();
    s.commit().unwrap();
    let cp1 = db.now();

    let mut s = db.begin().unwrap();
    s.update(rel, t1, vec![Datum::Int4(10)]).unwrap();
    s.commit().unwrap();
    let cp2 = db.now();

    minidb::vacuum::vacuum(&db, rel, minidb::DeviceId::DEFAULT).unwrap();

    let m1 = observed(&db, rel, Some(cp1));
    assert_eq!(m1, BTreeMap::from([(1, 1), (2, 1)]));
    let m2 = observed(&db, rel, Some(cp2));
    assert_eq!(m2, BTreeMap::from([(10, 1), (2, 1)]));
}
