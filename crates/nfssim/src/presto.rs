//! The PRESTOserve non-volatile write cache.
//!
//! "PRESTOserve consists of a board containing 1 MByte of battery-backed
//! RAM and driver software to cache NFS writes in non-volatile memory. As
//! will be seen below, this substantially improved the write throughput of
//! NFS." And in the results: "the NFS measurements show no degradation due
//! to random accesses, since the whole 1 MByte write fits in the
//! PRESTOserve cache, and is not flushed to disk."
//!
//! [`PrestoDisk`] wraps a disk as a [`BlockDevice`]: writes land in the
//! NVRAM at memory speed and are already *stable*, so a synchronous-write
//! file system on top gets its durability guarantee without touching the
//! disk — until the board fills and old entries must drain.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simdev::{BlockDevice, DevResult, Nvram, SimClock};

/// A disk fronted by a PRESTOserve NVRAM write cache.
pub struct PrestoDisk {
    disk: Arc<Mutex<dyn BlockDevice>>,
    nvram: Nvram,
    /// disk block -> NVRAM slot for blocks not yet drained.
    pending: HashMap<u64, u64>,
    /// FIFO of pending disk blocks (drain order).
    order: Vec<u64>,
    free_slots: Vec<u64>,
    stats: PrestoStats,
}

/// Counters for the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrestoStats {
    /// Writes absorbed by NVRAM.
    pub absorbed: u64,
    /// Blocks drained to disk because the board filled.
    pub drained: u64,
    /// Reads served from pending NVRAM contents.
    pub read_hits: u64,
}

impl PrestoDisk {
    /// Wraps `disk` with the standard 1 MB board.
    pub fn new(clock: SimClock, disk: Arc<Mutex<dyn BlockDevice>>) -> PrestoDisk {
        Self::with_nvram(Nvram::prestoserve(clock), disk)
    }

    /// Wraps `disk` with a custom-size NVRAM (ablation studies).
    pub fn with_nvram(nvram: Nvram, disk: Arc<Mutex<dyn BlockDevice>>) -> PrestoDisk {
        let free_slots = (0..nvram.nblocks()).rev().collect();
        PrestoDisk {
            disk,
            nvram,
            pending: HashMap::new(),
            order: Vec::new(),
            free_slots,
            stats: PrestoStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PrestoStats {
        self.stats
    }

    /// Number of blocks currently pending in NVRAM.
    pub fn pending_blocks(&self) -> usize {
        self.pending.len()
    }

    /// Drains every pending block to the disk (administrative flush; the
    /// benchmark's cache-flush step uses this).
    pub fn drain_all(&mut self) -> DevResult<()> {
        // Drain in disk-block order — the elevator sweep the driver does.
        let mut blocks: Vec<u64> = self.pending.keys().copied().collect();
        blocks.sort_unstable();
        for b in blocks {
            self.drain_one(b)?;
        }
        self.order.clear();
        Ok(())
    }

    fn drain_one(&mut self, blkno: u64) -> DevResult<()> {
        if let Some(slot) = self.pending.remove(&blkno) {
            let mut buf = vec![0u8; self.nvram.block_size()];
            self.nvram.read_block(slot, &mut buf)?;
            self.disk.lock().write_block(blkno, &buf)?;
            self.free_slots.push(slot);
            self.stats.drained += 1;
        }
        Ok(())
    }
}

impl BlockDevice for PrestoDisk {
    fn name(&self) -> &str {
        "prestoserve-disk"
    }

    fn block_size(&self) -> usize {
        self.nvram.block_size()
    }

    fn nblocks(&self) -> u64 {
        self.disk.lock().nblocks()
    }

    fn read_block(&mut self, blkno: u64, buf: &mut [u8]) -> DevResult<()> {
        if let Some(&slot) = self.pending.get(&blkno) {
            self.stats.read_hits += 1;
            return self.nvram.read_block(slot, buf);
        }
        self.disk.lock().read_block(blkno, buf)
    }

    fn write_block(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()> {
        if let Some(&slot) = self.pending.get(&blkno) {
            // Overwrite in place in NVRAM: still one fast write.
            self.stats.absorbed += 1;
            return self.nvram.write_block(slot, buf);
        }
        if self.free_slots.is_empty() {
            // Board full: drain the oldest pending block to make room.
            let victim = self.order.remove(0);
            self.drain_one(victim)?;
        }
        let slot = self.free_slots.pop().expect("slot freed above");
        self.nvram.write_block(slot, buf)?;
        self.pending.insert(blkno, slot);
        self.order.push(blkno);
        self.stats.absorbed += 1;
        Ok(())
    }

    fn sync(&mut self) -> DevResult<()> {
        // NVRAM *is* stable storage: sync is satisfied with data still on
        // the board. This is the entire PRESTOserve trick.
        Ok(())
    }

    fn is_stable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{DiskProfile, MagneticDisk, SimDuration};

    fn setup(nvram_blocks: u64) -> (SimClock, PrestoDisk) {
        let clock = SimClock::new();
        let disk: Arc<Mutex<dyn BlockDevice>> = Arc::new(Mutex::new(MagneticDisk::new(
            "d",
            clock.clone(),
            DiskProfile::rz58(),
        )));
        let nvram = Nvram::new("nv", clock.clone(), nvram_blocks);
        (clock.clone(), PrestoDisk::with_nvram(nvram, disk))
    }

    #[test]
    fn writes_within_capacity_cost_microseconds() {
        let (clock, mut pd) = setup(128);
        let buf = vec![7u8; pd.block_size()];
        let t0 = clock.now();
        for b in 0..128 {
            pd.write_block(b * 50, &buf).unwrap(); // Random-ish placement.
        }
        let took = clock.now().since(t0);
        // 128 NVRAM writes at ~25 µs: well under 10 ms; a disk would need
        // seconds for 128 random writes.
        assert!(took < SimDuration::from_millis(10), "took {took}");
        assert_eq!(pd.stats().absorbed, 128);
        assert_eq!(pd.stats().drained, 0);
    }

    #[test]
    fn overflow_drains_to_disk() {
        let (clock, mut pd) = setup(4);
        let buf = vec![1u8; pd.block_size()];
        let t0 = clock.now();
        for b in 0..12 {
            pd.write_block(b * 1000, &buf).unwrap();
        }
        let took = clock.now().since(t0);
        assert_eq!(pd.stats().drained, 8);
        assert!(
            took > SimDuration::from_millis(10),
            "drains hit the disk: {took}"
        );
    }

    #[test]
    fn reads_see_pending_writes() {
        let (_clock, mut pd) = setup(8);
        let data = vec![0xABu8; pd.block_size()];
        pd.write_block(100, &data).unwrap();
        let mut out = vec![0u8; pd.block_size()];
        pd.read_block(100, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(pd.stats().read_hits, 1);
        // Unpended blocks come from disk.
        pd.read_block(99, &mut out).unwrap();
        assert_eq!(out, vec![0u8; 8192]);
    }

    #[test]
    fn rewrite_of_pending_block_stays_in_nvram() {
        let (_clock, mut pd) = setup(2);
        let a = vec![1u8; pd.block_size()];
        let b = vec![2u8; pd.block_size()];
        pd.write_block(5, &a).unwrap();
        pd.write_block(5, &b).unwrap();
        assert_eq!(pd.pending_blocks(), 1);
        assert_eq!(pd.stats().drained, 0);
        let mut out = vec![0u8; pd.block_size()];
        pd.read_block(5, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn drain_all_persists_everything() {
        let (_clock, mut pd) = setup(8);
        for blk in 0..5u64 {
            pd.write_block(blk, &vec![blk as u8; 8192]).unwrap();
        }
        pd.drain_all().unwrap();
        assert_eq!(pd.pending_blocks(), 0);
        let mut out = vec![0u8; 8192];
        for blk in 0..5u64 {
            pd.read_block(blk, &mut out).unwrap();
            assert_eq!(out, vec![blk as u8; 8192], "block {blk}");
        }
    }

    #[test]
    fn sync_is_free_because_nvram_is_stable() {
        let (clock, mut pd) = setup(8);
        pd.write_block(0, &vec![1u8; 8192]).unwrap();
        let t0 = clock.now();
        pd.sync().unwrap();
        assert_eq!(clock.now().since(t0), SimDuration::ZERO);
        assert_eq!(pd.pending_blocks(), 1, "sync need not drain");
    }
}
