//! An FFS-style local file system.
//!
//! Modeled on the Berkeley Fast File System \[MCKU84\] that ULTRIX used:
//! a superblock, a fixed inode region, sequential-preference data block
//! allocation ("data for a single file are kept close together"), 12 direct
//! block pointers plus single and double indirect blocks, hierarchical
//! directories, and a UNIX-style write-back buffer cache with an explicit
//! sync. The practical 4 GB file-size ceiling the paper mentions falls out
//! of the pointer structure.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use simdev::{BlockDevice, DevError};

/// Block size (matches the device and the rest of the system).
pub const BLOCK_SIZE: usize = simdev::BLOCK_SIZE;
/// Direct block pointers per inode.
pub const NDIRECT: usize = 12;
/// Block pointers per indirect block.
pub const NINDIRECT: usize = BLOCK_SIZE / 8;

/// An inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeNo(pub u32);

impl fmt::Display for InodeNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// File system errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FfsError {
    /// Device failure.
    Device(DevError),
    /// Path or component not found.
    NotFound(String),
    /// Name already exists.
    Exists(String),
    /// Component is not a directory.
    NotADirectory(String),
    /// Operation needs a file, found a directory.
    IsADirectory(String),
    /// Directory not empty on remove.
    NotEmpty(String),
    /// Out of inodes or blocks.
    NoSpace,
    /// Malformed path.
    BadPath(String),
    /// On-disk structure corrupt.
    Corrupt(String),
}

impl fmt::Display for FfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfsError::Device(e) => write!(f, "device error: {e}"),
            FfsError::NotFound(p) => write!(f, "not found: {p}"),
            FfsError::Exists(p) => write!(f, "exists: {p}"),
            FfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FfsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FfsError::NoSpace => write!(f, "file system full"),
            FfsError::BadPath(p) => write!(f, "bad path: {p}"),
            FfsError::Corrupt(m) => write!(f, "corrupt file system: {m}"),
        }
    }
}

impl std::error::Error for FfsError {}

impl From<DevError> for FfsError {
    fn from(e: DevError) -> Self {
        FfsError::Device(e)
    }
}

/// Convenience alias.
pub type FfsResult<T> = Result<T, FfsError>;

/// Tunables for an [`Ffs`].
#[derive(Debug, Clone)]
pub struct FfsConfig {
    /// Maximum number of inodes.
    pub max_inodes: u32,
    /// Buffer cache capacity in blocks.
    pub cache_blocks: usize,
    /// Force every write through to the device immediately (the NFS server
    /// turns this on; a local mount leaves it off).
    pub sync_writes: bool,
}

impl Default for FfsConfig {
    fn default() -> Self {
        FfsConfig {
            max_inodes: 4096,
            cache_blocks: 64,
            sync_writes: false,
        }
    }
}

const MODE_FREE: u16 = 0;
const MODE_FILE: u16 = 1;
const MODE_DIR: u16 = 2;

/// On-disk inode: 128 bytes.
#[derive(Debug, Clone, PartialEq)]
struct Inode {
    mode: u16,
    size: u64,
    direct: [u64; NDIRECT],
    indirect: u64,
    dindirect: u64,
}

impl Inode {
    const SIZE: usize = 128;
    const PER_BLOCK: usize = BLOCK_SIZE / Inode::SIZE;

    fn empty() -> Inode {
        Inode {
            mode: MODE_FREE,
            size: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
        }
    }

    fn encode(&self) -> [u8; Inode::SIZE] {
        let mut out = [0u8; Inode::SIZE];
        out[0..2].copy_from_slice(&self.mode.to_le_bytes());
        out[2..10].copy_from_slice(&self.size.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            out[10 + i * 8..18 + i * 8].copy_from_slice(&d.to_le_bytes());
        }
        out[106..114].copy_from_slice(&self.indirect.to_le_bytes());
        out[114..122].copy_from_slice(&self.dindirect.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Inode {
        let mut direct = [0u64; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u64::from_le_bytes(buf[10 + i * 8..18 + i * 8].try_into().unwrap());
        }
        Inode {
            mode: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            size: u64::from_le_bytes(buf[2..10].try_into().unwrap()),
            direct,
            indirect: u64::from_le_bytes(buf[106..114].try_into().unwrap()),
            dindirect: u64::from_le_bytes(buf[114..122].try_into().unwrap()),
        }
    }
}

struct CacheEntry {
    data: Vec<u8>,
    dirty: bool,
}

/// The file system over a shared block device.
pub struct Ffs {
    dev: Arc<Mutex<dyn BlockDevice>>,
    config: FfsConfig,
    inode_blocks: u64,
    next_free_block: u64,
    cache: HashMap<u64, CacheEntry>,
    lru: Vec<u64>,
}

/// The root directory's inode.
pub const ROOT_INO: InodeNo = InodeNo(1);

impl Ffs {
    /// Formats `dev` and returns a mounted file system with `/`.
    pub fn format(dev: Arc<Mutex<dyn BlockDevice>>, config: FfsConfig) -> FfsResult<Ffs> {
        let inode_blocks = (config.max_inodes as u64).div_ceil(Inode::PER_BLOCK as u64);
        let mut fs = Ffs {
            dev,
            config,
            inode_blocks,
            next_free_block: 1 + inode_blocks,
            cache: HashMap::new(),
            lru: Vec::new(),
        };
        // Zero the inode region (freshly formatted).
        for b in 1..=inode_blocks {
            fs.put_block(b, vec![0u8; BLOCK_SIZE])?;
        }
        // Root directory.
        let mut root = Inode::empty();
        root.mode = MODE_DIR;
        fs.write_inode(ROOT_INO, &root)?;
        fs.write_superblock()?;
        fs.sync()?;
        Ok(fs)
    }

    fn write_superblock(&mut self) -> FfsResult<()> {
        let mut sb = vec![0u8; BLOCK_SIZE];
        sb[..4].copy_from_slice(b"FFS1");
        sb[4..12].copy_from_slice(&self.next_free_block.to_le_bytes());
        sb[12..16].copy_from_slice(&self.config.max_inodes.to_le_bytes());
        self.put_block(0, sb)
    }

    // ---- buffer cache --------------------------------------------------

    fn touch(&mut self, blk: u64) {
        if let Some(pos) = self.lru.iter().position(|&b| b == blk) {
            self.lru.remove(pos);
        }
        self.lru.push(blk);
    }

    fn evict_if_needed(&mut self) -> FfsResult<()> {
        while self.cache.len() >= self.config.cache_blocks.max(4) {
            let victim = self.lru.remove(0);
            if let Some(e) = self.cache.remove(&victim) {
                if e.dirty {
                    self.dev.lock().write_block(victim, &e.data)?;
                }
            }
        }
        Ok(())
    }

    fn get_block(&mut self, blk: u64) -> FfsResult<Vec<u8>> {
        if let Some(e) = self.cache.get(&blk) {
            let data = e.data.clone();
            self.touch(blk);
            return Ok(data);
        }
        self.evict_if_needed()?;
        let mut data = vec![0u8; BLOCK_SIZE];
        self.dev.lock().read_block(blk, &mut data)?;
        self.cache.insert(
            blk,
            CacheEntry {
                data: data.clone(),
                dirty: false,
            },
        );
        self.touch(blk);
        Ok(data)
    }

    fn put_block(&mut self, blk: u64, data: Vec<u8>) -> FfsResult<()> {
        if self.config.sync_writes {
            self.dev.lock().write_block(blk, &data)?;
            self.cache.insert(blk, CacheEntry { data, dirty: false });
        } else {
            self.evict_if_needed()?;
            self.cache.insert(blk, CacheEntry { data, dirty: true });
        }
        self.touch(blk);
        Ok(())
    }

    /// Number of blocks reserved for the inode region.
    pub fn inode_region_blocks(&self) -> u64 {
        self.inode_blocks
    }

    /// Writes every dirty cached block to the device.
    pub fn sync(&mut self) -> FfsResult<()> {
        // Flush in block order: the elevator sweep a real sync would do.
        let mut dirty: Vec<u64> = self
            .cache
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&b, _)| b)
            .collect();
        dirty.sort_unstable();
        for b in dirty {
            let data = self.cache.get(&b).expect("present").data.clone();
            self.dev.lock().write_block(b, &data)?;
            self.cache.get_mut(&b).expect("present").dirty = false;
        }
        self.dev.lock().sync()?;
        Ok(())
    }

    /// Flushes and empties the buffer cache (benchmark cache flush).
    pub fn flush_caches(&mut self) -> FfsResult<()> {
        self.sync()?;
        self.cache.clear();
        self.lru.clear();
        Ok(())
    }

    // ---- inodes ---------------------------------------------------------

    fn inode_location(&self, ino: InodeNo) -> (u64, usize) {
        let blk = 1 + (ino.0 as u64) / Inode::PER_BLOCK as u64;
        let off = (ino.0 as usize % Inode::PER_BLOCK) * Inode::SIZE;
        (blk, off)
    }

    fn read_inode(&mut self, ino: InodeNo) -> FfsResult<Inode> {
        if ino.0 >= self.config.max_inodes {
            return Err(FfsError::Corrupt(format!("{ino} out of range")));
        }
        let (blk, off) = self.inode_location(ino);
        let data = self.get_block(blk)?;
        Ok(Inode::decode(&data[off..off + Inode::SIZE]))
    }

    fn write_inode(&mut self, ino: InodeNo, inode: &Inode) -> FfsResult<()> {
        let (blk, off) = self.inode_location(ino);
        let mut data = self.get_block(blk)?;
        data[off..off + Inode::SIZE].copy_from_slice(&inode.encode());
        self.put_block(blk, data)
    }

    fn alloc_inode(&mut self) -> FfsResult<InodeNo> {
        // Inode 0 is reserved as "invalid".
        for i in 1..self.config.max_inodes {
            let ino = InodeNo(i);
            if self.read_inode(ino)?.mode == MODE_FREE {
                return Ok(ino);
            }
        }
        Err(FfsError::NoSpace)
    }

    fn alloc_block(&mut self) -> FfsResult<u64> {
        let blk = self.next_free_block;
        if blk >= self.dev.lock().nblocks() {
            return Err(FfsError::NoSpace);
        }
        self.next_free_block += 1;
        Ok(blk)
    }

    // ---- block mapping ---------------------------------------------------

    /// Maps file block `fblk` of `inode` to a device block, allocating the
    /// path if `alloc`.
    fn bmap(&mut self, inode: &mut Inode, fblk: u64, alloc: bool) -> FfsResult<Option<u64>> {
        let nind = NINDIRECT as u64;
        if fblk < NDIRECT as u64 {
            let slot = &mut inode.direct[fblk as usize];
            if *slot == 0 {
                if !alloc {
                    return Ok(None);
                }
                *slot = self.alloc_block()?;
            }
            return Ok(Some(*slot));
        }
        let fblk = fblk - NDIRECT as u64;
        if fblk < nind {
            if inode.indirect == 0 {
                if !alloc {
                    return Ok(None);
                }
                inode.indirect = self.alloc_block()?;
                self.put_block(inode.indirect, vec![0u8; BLOCK_SIZE])?;
            }
            return self.indirect_slot(inode.indirect, fblk, alloc);
        }
        let fblk = fblk - nind;
        if fblk < nind * nind {
            if inode.dindirect == 0 {
                if !alloc {
                    return Ok(None);
                }
                inode.dindirect = self.alloc_block()?;
                self.put_block(inode.dindirect, vec![0u8; BLOCK_SIZE])?;
            }
            let outer = fblk / nind;
            let inner = fblk % nind;
            let Some(mid) = self.indirect_slot(inode.dindirect, outer, alloc)? else {
                return Ok(None);
            };
            if mid == 0 {
                return Ok(None);
            }
            return self.indirect_slot(mid, inner, alloc);
        }
        Err(FfsError::NoSpace) // Beyond double-indirect: >8 GB.
    }

    /// Reads/allocates slot `idx` of the indirect block `blk`.
    fn indirect_slot(&mut self, blk: u64, idx: u64, alloc: bool) -> FfsResult<Option<u64>> {
        let mut data = self.get_block(blk)?;
        let off = idx as usize * 8;
        let mut ptr = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
        if ptr == 0 {
            if !alloc {
                return Ok(None);
            }
            ptr = self.alloc_block()?;
            // Newly allocated indirect targets start zeroed.
            self.put_block(ptr, vec![0u8; BLOCK_SIZE])?;
            data[off..off + 8].copy_from_slice(&ptr.to_le_bytes());
            self.put_block(blk, data)?;
        }
        Ok(Some(ptr))
    }

    // ---- files ------------------------------------------------------------

    /// Size of the file at `ino`.
    pub fn size_of(&mut self, ino: InodeNo) -> FfsResult<u64> {
        Ok(self.read_inode(ino)?.size)
    }

    /// Whether `ino` is a directory.
    pub fn is_dir(&mut self, ino: InodeNo) -> FfsResult<bool> {
        Ok(self.read_inode(ino)?.mode == MODE_DIR)
    }

    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read.
    pub fn read(&mut self, ino: InodeNo, offset: u64, buf: &mut [u8]) -> FfsResult<usize> {
        let mut inode = self.read_inode(ino)?;
        let len = (buf.len() as u64).min(inode.size.saturating_sub(offset)) as usize;
        let mut done = 0usize;
        while done < len {
            let pos = offset + done as u64;
            let fblk = pos / BLOCK_SIZE as u64;
            let boff = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - boff).min(len - done);
            match self.bmap(&mut inode, fblk, false)? {
                Some(phys) if phys != 0 => {
                    let data = self.get_block(phys)?;
                    buf[done..done + take].copy_from_slice(&data[boff..boff + take]);
                }
                _ => buf[done..done + take].fill(0), // Hole.
            }
            done += take;
        }
        Ok(len)
    }

    /// Writes `data` at `offset`, growing the file as needed. With
    /// `sync_writes`, every touched block reaches the device before return.
    pub fn write(&mut self, ino: InodeNo, offset: u64, data: &[u8]) -> FfsResult<usize> {
        let mut inode = self.read_inode(ino)?;
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let fblk = pos / BLOCK_SIZE as u64;
            let boff = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - boff).min(data.len() - done);
            let phys = self
                .bmap(&mut inode, fblk, true)?
                .ok_or(FfsError::NoSpace)?;
            let mut blk = if boff == 0 && take == BLOCK_SIZE {
                vec![0u8; BLOCK_SIZE] // Full overwrite: skip the read.
            } else {
                self.get_block(phys)?
            };
            blk[boff..boff + take].copy_from_slice(&data[done..done + take]);
            self.put_block(phys, blk)?;
            done += take;
        }
        inode.size = inode.size.max(offset + data.len() as u64);
        self.write_inode(ino, &inode)?;
        self.write_superblock()?; // next_free_block moved.
        Ok(data.len())
    }

    // ---- directories -------------------------------------------------------

    fn dir_entries(&mut self, dir: InodeNo) -> FfsResult<Vec<(String, InodeNo)>> {
        let inode = self.read_inode(dir)?;
        if inode.mode != MODE_DIR {
            return Err(FfsError::NotADirectory(format!("{dir}")));
        }
        let mut raw = vec![0u8; inode.size as usize];
        self.read(dir, 0, &mut raw)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 5 <= raw.len() {
            let ino = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap());
            let nlen = raw[pos + 4] as usize;
            let name = raw
                .get(pos + 5..pos + 5 + nlen)
                .ok_or_else(|| FfsError::Corrupt("truncated directory".into()))?;
            pos += 5 + nlen;
            if ino != 0 {
                out.push((
                    String::from_utf8(name.to_vec())
                        .map_err(|_| FfsError::Corrupt("bad name".into()))?,
                    InodeNo(ino),
                ));
            }
        }
        Ok(out)
    }

    fn dir_add(&mut self, dir: InodeNo, name: &str, ino: InodeNo) -> FfsResult<()> {
        let size = self.read_inode(dir)?.size;
        let mut entry = Vec::with_capacity(5 + name.len());
        entry.extend_from_slice(&ino.0.to_le_bytes());
        entry.push(name.len() as u8);
        entry.extend_from_slice(name.as_bytes());
        self.write(dir, size, &entry)?;
        Ok(())
    }

    fn dir_remove(&mut self, dir: InodeNo, name: &str) -> FfsResult<InodeNo> {
        let entries = self.dir_entries(dir)?;
        let victim = entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| *i)
            .ok_or_else(|| FfsError::NotFound(name.to_string()))?;
        // Rewrite the directory without the entry.
        let mut raw = Vec::new();
        for (n, i) in entries.into_iter().filter(|(n, _)| n != name) {
            raw.extend_from_slice(&i.0.to_le_bytes());
            raw.push(n.len() as u8);
            raw.extend_from_slice(n.as_bytes());
        }
        let mut inode = self.read_inode(dir)?;
        inode.size = 0;
        self.write_inode(dir, &inode)?;
        if !raw.is_empty() {
            self.write(dir, 0, &raw)?;
        }
        Ok(victim)
    }

    fn split(path: &str) -> FfsResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(FfsError::BadPath(path.to_string()));
        }
        Ok(path
            .split('/')
            .filter(|c| !c.is_empty() && *c != ".")
            .collect())
    }

    /// Resolves an absolute path to an inode.
    pub fn lookup(&mut self, path: &str) -> FfsResult<InodeNo> {
        let mut cur = ROOT_INO;
        for comp in Self::split(path)? {
            let entries = self.dir_entries(cur)?;
            cur = entries
                .into_iter()
                .find(|(n, _)| n == comp)
                .map(|(_, i)| i)
                .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        }
        Ok(cur)
    }

    fn create_node(&mut self, path: &str, mode: u16) -> FfsResult<InodeNo> {
        let comps = Self::split(path)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(FfsError::BadPath(path.to_string()));
        };
        let mut dir = ROOT_INO;
        for comp in parents {
            let entries = self.dir_entries(dir)?;
            dir = entries
                .into_iter()
                .find(|(n, _)| n == comp)
                .map(|(_, i)| i)
                .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        }
        if self.dir_entries(dir)?.iter().any(|(n, _)| n == name) {
            return Err(FfsError::Exists(path.to_string()));
        }
        let ino = self.alloc_inode()?;
        let mut inode = Inode::empty();
        inode.mode = mode;
        self.write_inode(ino, &inode)?;
        self.dir_add(dir, name, ino)?;
        Ok(ino)
    }

    /// Creates a regular file.
    pub fn create(&mut self, path: &str) -> FfsResult<InodeNo> {
        self.create_node(path, MODE_FILE)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> FfsResult<InodeNo> {
        self.create_node(path, MODE_DIR)
    }

    /// Lists a directory by path.
    pub fn readdir(&mut self, path: &str) -> FfsResult<Vec<(String, InodeNo)>> {
        let ino = self.lookup(path)?;
        self.dir_entries(ino)
    }

    /// Removes a name; directories must be empty. (Blocks are not
    /// reclaimed — 1993 file systems leaked them until fsck too, and the
    /// benchmarks never reuse them.)
    pub fn unlink(&mut self, path: &str) -> FfsResult<()> {
        let comps = Self::split(path)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(FfsError::BadPath(path.to_string()));
        };
        let mut dir = ROOT_INO;
        for comp in parents {
            let entries = self.dir_entries(dir)?;
            dir = entries
                .into_iter()
                .find(|(n, _)| n == comp)
                .map(|(_, i)| i)
                .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        }
        let entries = self.dir_entries(dir)?;
        let (_, victim) = entries
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        let vnode = self.read_inode(*victim)?;
        if vnode.mode == MODE_DIR && !self.dir_entries(*victim)?.is_empty() {
            return Err(FfsError::NotEmpty(path.to_string()));
        }
        let victim = self.dir_remove(dir, name)?;
        let mut vnode = self.read_inode(victim)?;
        vnode.mode = MODE_FREE;
        self.write_inode(victim, &vnode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    fn make_fs(sync_writes: bool) -> Ffs {
        let clock = SimClock::new();
        let dev: Arc<Mutex<dyn BlockDevice>> = Arc::new(Mutex::new(MagneticDisk::new(
            "d",
            clock,
            DiskProfile::tiny_for_tests(1 << 15),
        )));
        Ffs::format(
            dev,
            FfsConfig {
                max_inodes: 256,
                cache_blocks: 32,
                sync_writes,
            },
        )
        .unwrap()
    }

    #[test]
    fn create_write_read() {
        let mut fs = make_fs(false);
        let ino = fs.create("/hello").unwrap();
        fs.write(ino, 0, b"hello ffs").unwrap();
        let mut buf = [0u8; 16];
        let n = fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello ffs");
        assert_eq!(fs.size_of(ino).unwrap(), 9);
        assert_eq!(fs.lookup("/hello").unwrap(), ino);
    }

    #[test]
    fn large_file_spans_indirect_blocks() {
        let mut fs = make_fs(false);
        let ino = fs.create("/big").unwrap();
        // 13 blocks: past the 12 direct pointers into the indirect block.
        let data: Vec<u8> = (0..13 * BLOCK_SIZE + 100)
            .map(|i| (i % 247) as u8)
            .collect();
        fs.write(ino, 0, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
    }

    #[test]
    fn double_indirect_region_reachable() {
        let mut fs = make_fs(false);
        let ino = fs.create("/huge").unwrap();
        // Write one block far past the single-indirect region.
        let offset = (NDIRECT as u64 + NINDIRECT as u64 + 5) * BLOCK_SIZE as u64;
        fs.write(ino, offset, b"way out there").unwrap();
        let mut buf = [0u8; 13];
        fs.read(ino, offset, &mut buf).unwrap();
        assert_eq!(&buf, b"way out there");
        // The hole before it reads zero.
        let mut hole = [1u8; 16];
        fs.read(ino, BLOCK_SIZE as u64 * 20, &mut hole).unwrap();
        assert_eq!(hole, [0u8; 16]);
    }

    #[test]
    fn directories_nest() {
        let mut fs = make_fs(false);
        fs.mkdir("/usr").unwrap();
        fs.mkdir("/usr/local").unwrap();
        let f = fs.create("/usr/local/file").unwrap();
        assert_eq!(fs.lookup("/usr/local/file").unwrap(), f);
        let names: Vec<String> = fs
            .readdir("/usr")
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["local"]);
        let usr = fs.lookup("/usr").unwrap();
        assert!(fs.is_dir(usr).unwrap());
        assert!(!fs.is_dir(f).unwrap());
    }

    #[test]
    fn unlink_semantics() {
        let mut fs = make_fs(false);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        assert!(matches!(fs.unlink("/d"), Err(FfsError::NotEmpty(_))));
        fs.unlink("/d/f").unwrap();
        assert!(matches!(fs.lookup("/d/f"), Err(FfsError::NotFound(_))));
        fs.unlink("/d").unwrap();
        // Name can be reused.
        fs.create("/d").unwrap();
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut fs = make_fs(false);
        fs.create("/x").unwrap();
        assert!(matches!(fs.create("/x"), Err(FfsError::Exists(_))));
        assert!(matches!(fs.create("relative"), Err(FfsError::BadPath(_))));
        assert!(matches!(fs.lookup("/nope"), Err(FfsError::NotFound(_))));
    }

    #[test]
    fn data_survives_cache_flush() {
        let mut fs = make_fs(false);
        let ino = fs.create("/persist").unwrap();
        let data: Vec<u8> = (0..3 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        fs.write(ino, 0, &data).unwrap();
        fs.flush_caches().unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn sync_writes_hit_the_device_immediately() {
        let clock = SimClock::new();
        let dev: Arc<Mutex<dyn BlockDevice>> = Arc::new(Mutex::new(MagneticDisk::new(
            "d",
            clock.clone(),
            DiskProfile::tiny_for_tests(4096),
        )));
        let mut sync_fs = Ffs::format(
            dev,
            FfsConfig {
                max_inodes: 64,
                cache_blocks: 32,
                sync_writes: true,
            },
        )
        .unwrap();
        let ino = sync_fs.create("/s").unwrap();
        let t0 = clock.now();
        sync_fs.write(ino, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let sync_cost = clock.now().since(t0);

        let mut async_fs = make_fs(false);
        let clock2 = SimClock::new(); // make_fs uses its own clock; recreate for timing
        let _ = clock2;
        let ino2 = async_fs.create("/a").unwrap();
        // Async write cost: measure via its own device clock is hidden;
        // instead verify the *sync* path cost is nonzero and that async
        // writes defer (dirty blocks flushed only at sync).
        async_fs.write(ino2, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        assert!(async_fs.cache.values().any(|e| e.dirty));
        assert!(sync_cost.as_nanos() > 0);
        assert!(!sync_fs.cache.values().any(|e| e.dirty));
    }

    #[test]
    fn sequential_allocation_keeps_file_blocks_contiguous() {
        let mut fs = make_fs(false);
        let ino = fs.create("/seq").unwrap();
        fs.write(ino, 0, &vec![0u8; 8 * BLOCK_SIZE]).unwrap();
        let mut inode = fs.read_inode(ino).unwrap();
        let blocks: Vec<u64> = (0..8)
            .map(|i| fs.bmap(&mut inode, i, false).unwrap().unwrap())
            .collect();
        assert!(
            blocks.windows(2).all(|w| w[1] == w[0] + 1),
            "blocks not contiguous: {blocks:?}"
        );
    }

    #[test]
    fn out_of_space_is_an_error() {
        let clock = SimClock::new();
        let dev: Arc<Mutex<dyn BlockDevice>> = Arc::new(Mutex::new(MagneticDisk::new(
            "tiny",
            clock,
            DiskProfile::tiny_for_tests(16),
        )));
        let mut fs = Ffs::format(
            dev,
            FfsConfig {
                max_inodes: 64,
                cache_blocks: 8,
                sync_writes: false,
            },
        )
        .unwrap();
        let ino = fs.create("/f").unwrap();
        let r = fs.write(ino, 0, &vec![0u8; 64 * BLOCK_SIZE]);
        assert!(matches!(r, Err(FfsError::NoSpace)));
    }
}
