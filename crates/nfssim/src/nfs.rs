//! A stateless NFS-v2-flavoured server.
//!
//! "To guarantee that NFS servers remain stateless, NFS must force every
//! write to stable storage synchronously." Every mutating operation
//! therefore syncs the underlying [`Ffs`] before replying. File handles are
//! just inode numbers — the server keeps no per-client state at all, which
//! is the point.

use crate::ffs::{Ffs, FfsResult, InodeNo};

/// File attributes returned by `getattr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NfsAttr {
    /// The file handle.
    pub ino: InodeNo,
    /// Size in bytes.
    pub size: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
}

/// The server: stateless operations over an [`Ffs`].
pub struct NfsServer {
    fs: Ffs,
}

impl NfsServer {
    /// Serves `fs`. The caller should have formatted it with
    /// `sync_writes: true` (a stateless server cannot rely on a volatile
    /// cache), typically over a [`crate::PrestoDisk`].
    pub fn new(fs: Ffs) -> NfsServer {
        NfsServer { fs }
    }

    /// Access to the underlying file system (benchmark cache flushes).
    pub fn fs_mut(&mut self) -> &mut Ffs {
        &mut self.fs
    }

    /// LOOKUP: path to file handle.
    pub fn lookup(&mut self, path: &str) -> FfsResult<NfsAttr> {
        let ino = self.fs.lookup(path)?;
        self.getattr(ino)
    }

    /// GETATTR.
    pub fn getattr(&mut self, ino: InodeNo) -> FfsResult<NfsAttr> {
        Ok(NfsAttr {
            ino,
            size: self.fs.size_of(ino)?,
            is_dir: self.fs.is_dir(ino)?,
        })
    }

    /// CREATE: the new file is durable before the reply.
    pub fn create(&mut self, path: &str) -> FfsResult<NfsAttr> {
        let ino = self.fs.create(path)?;
        self.fs.sync()?;
        self.getattr(ino)
    }

    /// MKDIR.
    pub fn mkdir(&mut self, path: &str) -> FfsResult<NfsAttr> {
        let ino = self.fs.mkdir(path)?;
        self.fs.sync()?;
        self.getattr(ino)
    }

    /// READ.
    pub fn read(&mut self, ino: InodeNo, offset: u64, buf: &mut [u8]) -> FfsResult<usize> {
        self.fs.read(ino, offset, buf)
    }

    /// WRITE: forced to stable storage before the reply (the sync that
    /// PRESTOserve exists to absorb).
    pub fn write(&mut self, ino: InodeNo, offset: u64, data: &[u8]) -> FfsResult<usize> {
        let n = self.fs.write(ino, offset, data)?;
        self.fs.sync()?;
        Ok(n)
    }

    /// REMOVE.
    pub fn remove(&mut self, path: &str) -> FfsResult<()> {
        self.fs.unlink(path)?;
        self.fs.sync()
    }

    /// READDIR.
    pub fn readdir(&mut self, path: &str) -> FfsResult<Vec<(String, InodeNo)>> {
        self.fs.readdir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffs::FfsConfig;
    use simdev::{BlockDevice, DiskProfile, MagneticDisk, SimClock};
    use std::sync::Arc;

    fn server() -> NfsServer {
        let clock = SimClock::new();
        let dev: Arc<parking_lot::Mutex<dyn BlockDevice>> = Arc::new(parking_lot::Mutex::new(
            MagneticDisk::new("d", clock, DiskProfile::tiny_for_tests(1 << 14)),
        ));
        let fs = Ffs::format(
            dev,
            FfsConfig {
                max_inodes: 256,
                cache_blocks: 32,
                sync_writes: true,
            },
        )
        .unwrap();
        NfsServer::new(fs)
    }

    #[test]
    fn create_write_read_lookup() {
        let mut srv = server();
        let attr = srv.create("/f").unwrap();
        assert!(!attr.is_dir);
        srv.write(attr.ino, 0, b"nfs data").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(srv.read(attr.ino, 0, &mut buf).unwrap(), 8);
        assert_eq!(&buf, b"nfs data");
        let found = srv.lookup("/f").unwrap();
        assert_eq!(found.ino, attr.ino);
        assert_eq!(found.size, 8);
    }

    #[test]
    fn statelessness_every_write_durable() {
        let mut srv = server();
        let attr = srv.create("/durable").unwrap();
        srv.write(attr.ino, 0, &vec![9u8; 8192]).unwrap();
        // Drop all volatile cache state; data must still be on the device.
        srv.fs_mut().flush_caches().unwrap();
        let mut buf = vec![0u8; 8192];
        srv.read(attr.ino, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 8192]);
    }

    #[test]
    fn dirs_and_remove() {
        let mut srv = server();
        srv.mkdir("/home").unwrap();
        srv.create("/home/f").unwrap();
        let names: Vec<String> = srv
            .readdir("/home")
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["f"]);
        srv.remove("/home/f").unwrap();
        assert!(srv.lookup("/home/f").is_err());
    }
}
