//! The NFS client: one UDP RPC per operation over the simulated Ethernet.
//!
//! NFS v2 moved data in 8 KB READ/WRITE calls, each a synchronous RPC. The
//! client pays the (lighter-than-TCP) UDP RPC cost per call plus the user
//! buffer copies; server execution charges device time on the shared clock.

use simdev::{CpuModel, Endpoint};

use crate::ffs::{FfsResult, InodeNo};
use crate::nfs::{NfsAttr, NfsServer};

/// NFS transfer size (one data page per RPC).
pub const NFS_XFER: usize = 8192;

/// A remote NFS client.
pub struct NfsClient {
    server: NfsServer,
    ep: Endpoint,
    cpu: CpuModel,
}

impl NfsClient {
    /// Mounts the server over `ep` (use [`simdev::NetProfile::nfs_udp`]).
    pub fn mount(server: NfsServer, ep: Endpoint, cpu: CpuModel) -> NfsClient {
        NfsClient { server, ep, cpu }
    }

    /// Server access (benchmark cache flushing).
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.server
    }

    /// Network statistics.
    pub fn net_stats(&self) -> simdev::net::EndpointStats {
        self.ep.stats()
    }

    /// LOOKUP RPC.
    pub fn lookup(&mut self, path: &str) -> FfsResult<NfsAttr> {
        self.cpu.charge_call();
        let attr = self.server.lookup(path)?;
        self.ep.rpc(64 + path.len(), 96);
        Ok(attr)
    }

    /// CREATE RPC.
    pub fn create(&mut self, path: &str) -> FfsResult<NfsAttr> {
        self.cpu.charge_call();
        let attr = self.server.create(path)?;
        self.ep.rpc(64 + path.len(), 96);
        Ok(attr)
    }

    /// MKDIR RPC.
    pub fn mkdir(&mut self, path: &str) -> FfsResult<NfsAttr> {
        self.cpu.charge_call();
        let attr = self.server.mkdir(path)?;
        self.ep.rpc(64 + path.len(), 96);
        Ok(attr)
    }

    /// READ: issues one RPC per [`NFS_XFER`] bytes.
    pub fn read(&mut self, ino: InodeNo, offset: u64, buf: &mut [u8]) -> FfsResult<usize> {
        self.cpu.charge_call();
        let mut done = 0usize;
        while done < buf.len() {
            let want = (buf.len() - done).min(NFS_XFER);
            let n = self
                .server
                .read(ino, offset + done as u64, &mut buf[done..done + want])?;
            self.ep.rpc(88, 56 + n);
            self.cpu.charge_copy(n); // Into the user buffer.
            done += n;
            if n < want {
                break;
            }
        }
        Ok(done)
    }

    /// WRITE: one synchronous RPC per [`NFS_XFER`] bytes; each is stable
    /// before the next is sent.
    pub fn write(&mut self, ino: InodeNo, offset: u64, data: &[u8]) -> FfsResult<usize> {
        self.cpu.charge_call();
        let mut done = 0usize;
        while done < data.len() {
            let take = (data.len() - done).min(NFS_XFER);
            self.cpu.charge_copy(take); // Out of the user buffer.
            self.ep.rpc(88 + take, 96);
            let n = self
                .server
                .write(ino, offset + done as u64, &data[done..done + take])?;
            done += n;
        }
        Ok(done)
    }

    /// REMOVE RPC.
    pub fn remove(&mut self, path: &str) -> FfsResult<()> {
        self.cpu.charge_call();
        self.server.remove(path)?;
        self.ep.rpc(64 + path.len(), 48);
        Ok(())
    }

    /// READDIR RPC.
    pub fn readdir(&mut self, path: &str) -> FfsResult<Vec<(String, InodeNo)>> {
        self.cpu.charge_call();
        let entries = self.server.readdir(path)?;
        let payload: usize = entries.iter().map(|(n, _)| n.len() + 8).sum();
        self.ep.rpc(64 + path.len(), 56 + payload);
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffs::{Ffs, FfsConfig};
    use crate::presto::PrestoDisk;
    use simdev::{BlockDevice, DiskProfile, MagneticDisk, NetProfile, Network, SimClock};
    use std::sync::Arc;

    fn mounted(presto: bool) -> (SimClock, NfsClient) {
        let clock = SimClock::new();
        let disk: Arc<parking_lot::Mutex<dyn BlockDevice>> = Arc::new(parking_lot::Mutex::new(
            MagneticDisk::new("d", clock.clone(), DiskProfile::rz58()),
        ));
        let backing: Arc<parking_lot::Mutex<dyn BlockDevice>> = if presto {
            Arc::new(parking_lot::Mutex::new(PrestoDisk::new(
                clock.clone(),
                disk,
            )))
        } else {
            disk
        };
        let fs = Ffs::format(
            backing,
            FfsConfig {
                max_inodes: 1024,
                cache_blocks: 64,
                sync_writes: true,
            },
        )
        .unwrap();
        let net = Network::ethernet_10mbit(clock.clone());
        let ep = Endpoint::new(net, NetProfile::nfs_udp());
        let cpu = CpuModel::decsystem5900(clock.clone());
        (clock, NfsClient::mount(NfsServer::new(fs), ep, cpu))
    }

    #[test]
    fn remote_roundtrip() {
        let (_c, mut nc) = mounted(true);
        let attr = nc.create("/f").unwrap();
        let data: Vec<u8> = (0..30_000).map(|i| (i % 233) as u8).collect();
        assert_eq!(nc.write(attr.ino, 0, &data).unwrap(), data.len());
        let mut buf = vec![0u8; data.len()];
        assert_eq!(nc.read(attr.ino, 0, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
        assert!(nc.net_stats().rpcs >= 8);
    }

    #[test]
    fn prestoserve_makes_writes_much_faster() {
        let (clock_p, mut with_presto) = mounted(true);
        let (clock_n, mut without) = mounted(false);
        let data = vec![5u8; 256 * 1024]; // Fits in the 1 MB board.

        let a = with_presto.create("/w").unwrap();
        let t0 = clock_p.now();
        with_presto.write(a.ino, 0, &data).unwrap();
        let fast = clock_p.now().since(t0);

        let b = without.create("/w").unwrap();
        let t0 = clock_n.now();
        without.write(b.ino, 0, &data).unwrap();
        let slow = clock_n.now().since(t0);

        assert!(
            slow.as_nanos() > fast.as_nanos() * 2,
            "sync to disk {slow} should dwarf NVRAM-backed {fast}"
        );
    }

    #[test]
    fn dir_operations_remote() {
        let (_c, mut nc) = mounted(true);
        nc.mkdir("/home").unwrap();
        nc.create("/home/a").unwrap();
        nc.create("/home/b").unwrap();
        let names: Vec<String> = nc
            .readdir("/home")
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        nc.remove("/home/a").unwrap();
        assert_eq!(nc.readdir("/home").unwrap().len(), 1);
        assert!(nc.lookup("/home/a").is_err());
    }

    #[test]
    fn wire_time_accrues_per_operation() {
        let (clock, mut nc) = mounted(true);
        let attr = nc.create("/t").unwrap();
        let t0 = clock.now();
        nc.write(attr.ino, 0, &vec![1u8; 1 << 20]).unwrap();
        let took = clock.now().since(t0).as_secs_f64();
        // 1 MB at 10 Mbit/s is >= 0.84 s regardless of NVRAM.
        assert!(took > 0.8, "took {took}");
    }
}
