//! The ULTRIX NFS baseline the paper benchmarks Inversion against.
//!
//! "Inversion is compared to NFS running on identical hardware. ... The NFS
//! implementation on the DECsystem 5900 used a service called PRESTOserve to
//! speed up writes. To guarantee that NFS servers remain stateless, NFS must
//! force every write to stable storage synchronously. PRESTOserve consists
//! of a board containing 1 MByte of battery-backed RAM and driver software
//! to cache NFS writes in non-volatile memory."
//!
//! Four layers, composable exactly like the 1993 stack:
//!
//! * [`ffs`] — an FFS-style local file system (inodes, direct + indirect +
//!   double-indirect blocks, hierarchical directories, a UNIX-style buffer
//!   cache) over any [`simdev::BlockDevice`]. Data blocks are laid out
//!   sequentially, which is the layout advantage the paper credits NFS with
//!   on file creation.
//! * [`presto`] — the PRESTOserve board as a block-device wrapper: writes
//!   land in battery-backed RAM (stable!) and drain to disk lazily, so
//!   "synchronous" NFS writes cost microseconds until the 1 MB fills.
//! * [`nfs`] — a stateless NFS-v2-flavoured server: every write reaches
//!   stable storage before the reply.
//! * [`client`] — a remote client issuing one UDP RPC per 8 KB operation
//!   over the simulated Ethernet.

pub mod client;
pub mod ffs;
pub mod nfs;
pub mod presto;

pub use client::NfsClient;
pub use ffs::{Ffs, FfsConfig, FfsError, FfsResult, InodeNo};
pub use nfs::NfsServer;
pub use presto::PrestoDisk;
