//! A vendored, dependency-free stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the small slice of the `parking_lot` API it actually uses, implemented on
//! `std::sync`. Semantics match where it matters to this codebase:
//!
//! * guards are returned directly (no `Result`), and a poisoned lock is
//!   recovered instead of panicking — like `parking_lot`, lock acquisition
//!   never fails;
//! * [`Condvar::wait_for`] takes the guard by `&mut` and returns a
//!   [`WaitTimeoutResult`];
//! * `Mutex<T>` and `RwLock<T>` support `T: ?Sized`, so
//!   `Arc<Mutex<dyn Trait>>` coercions work.
//!
//! Fairness, eventual-fairness timeouts, and the `raw` APIs of the real
//! crate are intentionally absent.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with infallible, non-poisoning acquisition.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait_for`] can temporarily
/// take the underlying std guard while the thread is parked.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks on `guard`'s mutex until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks on `guard`'s mutex until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

/// A reader-writer lock with infallible, non-poisoning acquisition.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `t`.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn unsized_coercion_through_arc() {
        trait Speak: Send {
            fn n(&self) -> u32;
        }
        struct S;
        impl Speak for S {
            fn n(&self) -> u32 {
                7
            }
        }
        let obj: Arc<Mutex<dyn Speak>> = Arc::new(Mutex::new(S));
        assert_eq!(obj.lock().n(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        // Guard is still usable after the wait.
        *g = true;
        drop(g);
        assert!(*m.lock());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                let timed_out = cv.wait_for(&mut g, Duration::from_secs(5)).timed_out();
                assert!(!timed_out, "should be woken, not timed out");
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
