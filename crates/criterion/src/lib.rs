//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the macro/type surface its `harness = false` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is a plain median-of-samples wall-clock measurement — good enough
//! to rank implementations and catch order-of-magnitude regressions, with
//! none of the real crate's statistics, plotting, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Timed samples collected per benchmark.
const SAMPLES: usize = 11;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name`, printing a per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the iteration count until one sample is long
        // enough to time reliably.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed * (SAMPLES as u32) >= TARGET || b.iters >= 1 << 20 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (TARGET.as_nanos() / (SAMPLES as u128) / b.elapsed.as_nanos().max(1)).clamp(2, 16)
                    as u64
            };
            b.iters = (b.iters * grow).min(1 << 20);
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort();
        let median = samples[SAMPLES / 2];
        let per_iter = median.as_nanos() as f64 / b.iters as f64;
        println!("{name:<40} {:>12}/iter  ({} iters/sample)", fmt_ns(per_iter), b.iters);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f` (setup outside the closure is not
    /// measured).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name (the plain `name, fn...` form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1))
        });
        assert!(calls > 0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
