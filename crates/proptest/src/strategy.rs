//! Input-generation strategies.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy {}..{}", self.start, self.end);
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($n:ident . $i:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Generates `Vec`s of `elem`-generated values with a length in `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Generates `true`/`false` with equal probability (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values now and then: edge cases are
                // where codecs and size arithmetic break.
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Boxes a strategy for use in heterogeneous collections ([`Union`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Chooses uniformly among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// String strategies from a small regex subset.
///
/// The real proptest compiles a full regex; this workspace only ever uses
/// `.{lo,hi}` ("any `lo..=hi` characters"), so that is what is supported —
/// plus plain literals, which generate themselves. Anything else panics so
/// unsupported patterns fail loudly rather than silently weakening a test.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| random_char(rng)).collect()
        } else if !self.contains(['.', '*', '+', '[', '(', '\\', '?', '{']) {
            (*self).to_string()
        } else {
            panic!("unsupported regex strategy pattern: {self:?}");
        }
    }
}

/// Parses `".{lo,hi}"`, the one regex form this workspace uses.
fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let rest = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A character mix that exercises ASCII, multi-byte UTF-8, and quoting.
fn random_char(rng: &mut TestRng) -> char {
    match rng.below(8) {
        // Mostly printable ASCII.
        0..=5 => (0x20 + rng.below(0x5f) as u8) as char,
        6 => ['é', 'ß', '中', 'Ω', 'π'][rng.below(5) as usize],
        _ => ['🦀', '𝔘', '☃'][rng.below(3) as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut r = rng();
        let s = 5..9i32;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((5..9).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4, "all values of a tiny range should appear");
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let s = (0..10i32, 0..10i32).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!((0..19).contains(&s.generate(&mut r)));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![boxed(Just(1)), boxed(Just(2)), boxed(Just(3))]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut r));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn dot_repeat_parses() {
        assert_eq!(parse_dot_repeat(".{0,80}"), Some((0, 80)));
        assert_eq!(parse_dot_repeat(".{3,3}"), Some((3, 3)));
        assert_eq!(parse_dot_repeat("abc"), None);
    }

    #[test]
    fn string_strategy_generates_valid_utf8_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = ".{0,10}".generate(&mut r);
            assert!(s.chars().count() <= 10);
            assert_eq!(s, String::from_utf8(s.as_bytes().to_vec()).unwrap());
        }
    }

    #[test]
    fn literal_pattern_is_identity() {
        let mut r = rng();
        assert_eq!("hello".generate(&mut r), "hello");
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_pattern_panics() {
        let mut r = rng();
        let _ = "[a-z]+".generate(&mut r);
    }

    #[test]
    fn arbitrary_ints_include_extremes() {
        let mut r = rng();
        let mut saw_min = false;
        let mut saw_max = false;
        for _ in 0..500 {
            let v = i64::arbitrary(&mut r);
            saw_min |= v == i64::MIN;
            saw_max |= v == i64::MAX;
        }
        assert!(saw_min && saw_max, "boundary bias should surface extremes");
    }
}
