//! A vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of the proptest API its tests use: the [`Strategy`] trait with
//! `prop_map`, range/tuple/`vec`/`any`/`Just`/regex-string strategies, the
//! [`proptest!`]/[`prop_oneof!`]/[`prop_assert!`]/[`prop_assert_eq!`]
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Inputs are generated from a deterministic per-test RNG (seeded from the
//! test's module path and name), so failures reproduce across runs and
//! hosts. Shrinking is not implemented: a failing case panics with the
//! full debug rendering of its inputs instead.

pub mod strategy;
pub mod test_runner;

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::BoolAny;
        /// Generates `true` or `false` with equal probability.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a regular test that generates inputs for `cases`
/// iterations and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Render inputs before the body may consume them, so a
                    // failure can still report what was fed in.
                    let inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property failed on case {}/{}: {}\ninputs:\n{}",
                            case + 1, cfg.cases, e, inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly among the given strategies (all must share one value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Like `assert!`, but fails the current property case with a
/// [`test_runner::TestCaseError`] instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current property case with a
/// [`test_runner::TestCaseError`] instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(i32),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![(0..100i32).prop_map(Op::Push), Just(Op::Pop)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..17i32, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn tuples_and_maps_compose(
            ops in prop::collection::vec(op_strategy(), 1..20),
            flag in prop::bool::ANY,
        ) {
            let _ = flag;
            prop_assert!(!ops.is_empty());
        }

        #[test]
        fn regex_strings_bound_length(s in ".{0,12}") {
            prop_assert!(s.chars().count() <= 12);
        }

        #[test]
        fn any_i64_spans_sign(v in any::<i64>()) {
            // Just exercise the generator; the value is unconstrained.
            let _ = v;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::strategy::vec(crate::strategy::any::<u8>(), 5..50);
        let mut a = crate::test_runner::TestRng::from_name("seed");
        let mut b = crate::test_runner::TestRng::from_name("seed");
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
        let mut c = crate::test_runner::TestRng::from_name("other-seed");
        let eq = (0..10).all(|_| {
            let mut a = crate::test_runner::TestRng::from_name("seed");
            strat.generate(&mut a) == strat.generate(&mut c)
        });
        assert!(!eq, "different seeds should diverge");
    }
}
