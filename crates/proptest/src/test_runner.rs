//! Per-test configuration, deterministic RNG, and case failure plumbing.

use std::fmt;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!`-family macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A deterministic splitmix64 RNG seeded from the test's name.
///
/// Identical names always yield identical input sequences, making failures
/// reproducible across runs and machines without a regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-input quality.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
