//! Deterministic virtual time.
//!
//! All simulated devices share one [`SimClock`]. Device operations *advance*
//! the clock by their modeled cost; benchmark harnesses read elapsed virtual
//! time instead of host wall time, making results deterministic and
//! host-independent.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimInstant = SimInstant(0);

    /// The largest representable instant; used as an "end of time" sentinel.
    pub const MAX: SimInstant = SimInstant(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the simulation epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds since the simulation epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// This instant advanced by `d`, saturating at [`SimInstant::MAX`].
    #[must_use]
    pub fn plus(self, d: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(d.as_nanos()))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating on overflow.
    ///
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Sum of two durations, saturating.
    #[must_use]
    pub fn plus(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// This duration scaled by `n`, saturating.
    #[must_use]
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.plus(rhs)
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = self.plus(rhs);
    }
}

/// A shared, thread-safe, monotonically advancing virtual clock.
///
/// Cloning a `SimClock` yields a handle to the same underlying time source.
/// Time only moves when a device (or a test) calls [`SimClock::advance`];
/// there is no background ticking, so identical workloads always produce
/// identical timings.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a new clock at the epoch.
    pub fn new() -> Self {
        SimClock {
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.nanos.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let prev = self.nanos.fetch_add(d.as_nanos(), Ordering::SeqCst);
        SimInstant(prev.saturating_add(d.as_nanos()))
    }

    /// Advances the clock by a fractional number of seconds.
    pub fn advance_secs(&self, s: f64) -> SimInstant {
        self.advance(SimDuration::from_secs_f64(s))
    }

    /// Runs `f` and returns its result together with the virtual time it took.
    pub fn timed<T>(&self, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let start = self.now();
        let out = f();
        (out, self.now().since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_epoch() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimInstant::EPOCH);
        assert_eq!(c.now().as_nanos(), 0);
    }

    #[test]
    fn advance_moves_time_forward() {
        let c = SimClock::new();
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now().as_nanos(), 5_000_000);
        c.advance(SimDuration::from_micros(1));
        assert_eq!(c.now().as_nanos(), 5_001_000);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_secs(1));
        assert_eq!(b.now().as_secs(), 1);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::from_nanos(100);
        let t1 = t0.plus(SimDuration::from_nanos(50));
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1.since(t0).as_nanos(), 50);
        // Saturating, never panics.
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn timed_measures_virtual_not_wall_time() {
        let c = SimClock::new();
        let (val, took) = c.timed(|| {
            c.advance(SimDuration::from_millis(7));
            42
        });
        assert_eq!(val, 42);
        assert_eq!(took, SimDuration::from_millis(7));
    }

    #[test]
    fn duration_ops() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(3);
        assert_eq!((a + b).as_millis_f64(), 5.0);
        assert_eq!(a.times(4).as_millis_f64(), 8.0);
        let mut acc = SimDuration::ZERO;
        acc += b;
        assert_eq!(acc, b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500000s");
        assert_eq!(
            format!("{}", SimInstant::from_nanos(2_000_000_000)),
            "t+2.000000s"
        );
    }
}
