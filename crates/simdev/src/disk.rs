//! Magnetic disk model (the paper's DEC RZ58).
//!
//! The cost of an access is `controller + seek + rotation + transfer`:
//!
//! * accesses sequential with the previous one (next block, same head
//!   position) pay neither seek nor rotational latency;
//! * non-sequential accesses pay a seek scaled between track-to-track and
//!   full-stroke by the head travel distance, plus half a rotation on
//!   average.
//!
//! This captures exactly the effect the paper blames for Inversion's slow
//! file creation: "Btree writes are interleaved with data file writes,
//! penalizing Inversion by forcing the disk head to move frequently", while
//! NFS "writes the data file sequentially, improving throughput".

use crate::block::{BlockDevice, MemBlockStore};
use crate::clock::{SimClock, SimDuration};
use crate::error::DevResult;
use crate::fault::FaultPlan;

/// Timing and geometry parameters for a [`MagneticDisk`].
#[derive(Debug, Clone)]
pub struct DiskProfile {
    /// Capacity in 8 KB blocks.
    pub nblocks: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Fixed per-operation controller/driver overhead.
    pub controller_overhead: SimDuration,
    /// Track-to-track (minimum) seek time.
    pub seek_min: SimDuration,
    /// Full-stroke (maximum) seek time.
    pub seek_max: SimDuration,
    /// Average rotational latency (half a revolution).
    pub rotational_latency: SimDuration,
    /// Media transfer rate in bytes per second.
    pub transfer_rate: f64,
}

impl DiskProfile {
    /// The DEC RZ58: 1.38 GB, 5400 rpm-class SCSI disk of the early 1990s.
    ///
    /// Parameters follow the RZ58 data sheet ballpark: ~2.5 ms track-to-track,
    /// ~24 ms full stroke, 5.56 ms average rotational latency, ~2.5 MB/s
    /// sustained media rate, ~1 ms controller overhead.
    pub fn rz58() -> Self {
        DiskProfile {
            nblocks: 1_380_000_000 / crate::BLOCK_SIZE as u64,
            block_size: crate::BLOCK_SIZE,
            controller_overhead: SimDuration::from_micros(1000),
            seek_min: SimDuration::from_micros(2500),
            seek_max: SimDuration::from_millis(24),
            rotational_latency: SimDuration::from_micros(5560),
            transfer_rate: 2.5e6,
        }
    }

    /// A small, fast test profile (few blocks, microsecond costs).
    pub fn tiny_for_tests(nblocks: u64) -> Self {
        DiskProfile {
            nblocks,
            block_size: crate::BLOCK_SIZE,
            controller_overhead: SimDuration::from_micros(10),
            seek_min: SimDuration::from_micros(20),
            seek_max: SimDuration::from_micros(200),
            rotational_latency: SimDuration::from_micros(50),
            transfer_rate: 100e6,
        }
    }

    /// Transfer time for one block at the media rate.
    pub fn transfer_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.block_size as f64 / self.transfer_rate)
    }
}

/// A seek/rotate/transfer model of a magnetic disk.
pub struct MagneticDisk {
    name: String,
    clock: SimClock,
    profile: DiskProfile,
    store: MemBlockStore,
    faults: FaultPlan,
    head: u64,
    last_was: Option<u64>,
    stats: DiskStats,
}

/// Operation counters for a [`MagneticDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Accesses that required head movement.
    pub seeks: u64,
    /// Accesses that continued sequentially from the previous access.
    pub sequential: u64,
    /// Operations failed by an armed [`FaultPlan`] fault (reads + writes).
    pub fault_trips: u64,
}

impl MagneticDisk {
    /// Creates a disk with the given profile on a fresh zeroed medium.
    pub fn new(name: impl Into<String>, clock: SimClock, profile: DiskProfile) -> Self {
        let store = MemBlockStore::new(profile.block_size, profile.nblocks);
        MagneticDisk {
            name: name.into(),
            clock,
            profile,
            store,
            faults: FaultPlan::none(),
            head: 0,
            last_was: None,
            stats: DiskStats::default(),
        }
    }

    /// The fault-injection plan attached to this disk.
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults.clone()
    }

    /// Accumulated operation counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The disk's timing profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Charges the positioning + transfer cost of accessing `blkno`.
    fn charge(&mut self, blkno: u64) {
        let mut cost = self.profile.controller_overhead;
        let sequential =
            self.last_was == Some(blkno.wrapping_sub(1)) || self.last_was == Some(blkno);
        if sequential {
            self.stats.sequential += 1;
        } else {
            self.stats.seeks += 1;
            let dist = self.head.abs_diff(blkno) as f64 / self.profile.nblocks.max(1) as f64;
            // Seek time scales between min and max with sqrt of distance, the
            // classic accelerate/decelerate head model.
            let span =
                self.profile.seek_max.as_nanos() as f64 - self.profile.seek_min.as_nanos() as f64;
            let seek_ns = self.profile.seek_min.as_nanos() as f64 + span * dist.sqrt();
            cost += SimDuration::from_nanos(seek_ns as u64);
            cost += self.profile.rotational_latency;
        }
        cost += self.profile.transfer_time();
        self.head = blkno;
        self.last_was = Some(blkno);
        self.clock.advance(cost);
    }
}

impl BlockDevice for MagneticDisk {
    fn name(&self) -> &str {
        &self.name
    }

    fn block_size(&self) -> usize {
        self.profile.block_size
    }

    fn nblocks(&self) -> u64 {
        self.profile.nblocks
    }

    fn read_block(&mut self, blkno: u64, buf: &mut [u8]) -> DevResult<()> {
        if let Err(e) = self.faults.check_read() {
            self.stats.fault_trips += 1;
            return Err(e);
        }
        self.charge(blkno);
        self.store.read(blkno, buf)?;
        if self.faults.is_corrupt(blkno) {
            // Media corruption: hand back garbage rather than stored data.
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(251).wrapping_add(13);
            }
        }
        self.stats.reads += 1;
        Ok(())
    }

    fn write_block(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()> {
        if let Err(e) = self.faults.check_write() {
            self.stats.fault_trips += 1;
            return Err(e);
        }
        self.charge(blkno);
        self.store.write(blkno, buf)?;
        self.stats.writes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> (SimClock, MagneticDisk) {
        let clock = SimClock::new();
        let d = MagneticDisk::new("t", clock.clone(), DiskProfile::rz58());
        (clock, d)
    }

    #[test]
    fn sequential_access_cheaper_than_random() {
        let (clock, mut d) = disk();
        let buf = vec![0u8; d.block_size()];
        // Prime head position.
        d.write_block(0, &buf).unwrap();
        let t0 = clock.now();
        for b in 1..65 {
            d.write_block(b, &buf).unwrap();
        }
        let seq = clock.now().since(t0);

        let t1 = clock.now();
        for i in 0..64u64 {
            // Jump around the disk.
            d.write_block((i * 7919 + 100_000) % d.nblocks(), &buf)
                .unwrap();
        }
        let rand = clock.now().since(t1);
        assert!(
            rand.as_nanos() > seq.as_nanos() * 3,
            "random ({rand}) should be much slower than sequential ({seq})"
        );
    }

    #[test]
    fn data_roundtrips() {
        let (_c, mut d) = disk();
        let mut buf = vec![0u8; d.block_size()];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        d.write_block(42, &buf).unwrap();
        let mut out = vec![0u8; d.block_size()];
        d.read_block(42, &mut out).unwrap();
        assert_eq!(buf, out);
    }

    #[test]
    fn stats_count_ops_and_seeks() {
        let (_c, mut d) = disk();
        let buf = vec![0u8; d.block_size()];
        d.write_block(0, &buf).unwrap();
        d.write_block(1, &buf).unwrap();
        d.write_block(10_000, &buf).unwrap();
        let mut out = vec![0u8; d.block_size()];
        d.read_block(10_000, &mut out).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.sequential, 2); // block 1 follows 0; re-read of 10_000.
        assert_eq!(s.seeks, 2); // block 0 (from unknown) and the jump.
    }

    #[test]
    fn rz58_sequential_write_rate_is_about_media_rate() {
        let (clock, mut d) = disk();
        let buf = vec![0u8; d.block_size()];
        let n = 1280u64; // 10 MB
        let t0 = clock.now();
        for b in 0..n {
            d.write_block(b, &buf).unwrap();
        }
        let took = clock.now().since(t0).as_secs_f64();
        let rate = (n as f64 * 8192.0) / took;
        // Controller overhead keeps us below media rate but same order.
        assert!(rate > 1.0e6 && rate < 2.5e6, "rate was {rate}");
    }

    #[test]
    fn corrupt_block_reads_garbage() {
        let (_c, mut d) = disk();
        let buf = vec![7u8; d.block_size()];
        d.write_block(5, &buf).unwrap();
        d.fault_plan().corrupt_block(5);
        let mut out = vec![0u8; d.block_size()];
        d.read_block(5, &mut out).unwrap();
        assert_ne!(out, buf);
    }

    #[test]
    fn offline_disk_fails() {
        let (_c, mut d) = disk();
        d.fault_plan().set_offline(true);
        let mut buf = vec![0u8; d.block_size()];
        assert!(d.read_block(0, &mut buf).is_err());
        assert!(d.write_block(0, &buf).is_err());
    }
}
