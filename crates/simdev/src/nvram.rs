//! Battery-backed RAM (the PRESTOserve board's medium).
//!
//! PRESTOserve was "a board containing 1 MByte of battery-backed RAM and
//! driver software to cache NFS writes in non-volatile memory". The medium
//! itself is modeled here: memory-speed access, stable across power failure.
//! The *write-cache policy* lives in `nfssim::presto`.

use crate::block::{BlockDevice, MemBlockStore};
use crate::clock::{SimClock, SimDuration};
use crate::error::DevResult;
use crate::fault::FaultPlan;

/// A non-volatile RAM block device with memory-speed access.
pub struct Nvram {
    name: String,
    clock: SimClock,
    store: MemBlockStore,
    access_cost: SimDuration,
    faults: FaultPlan,
}

impl Nvram {
    /// Creates an NVRAM device of `nblocks` 8 KB blocks.
    ///
    /// Access cost models a bus copy: ~25 µs per 8 KB block (tens of MB/s
    /// across an early-90s I/O bus).
    pub fn new(name: impl Into<String>, clock: SimClock, nblocks: u64) -> Self {
        Nvram {
            name: name.into(),
            clock,
            store: MemBlockStore::new(crate::BLOCK_SIZE, nblocks),
            access_cost: SimDuration::from_micros(25),
            faults: FaultPlan::none(),
        }
    }

    /// Creates the 1 MB PRESTOserve board (128 blocks of 8 KB).
    pub fn prestoserve(clock: SimClock) -> Self {
        Nvram::new("prestoserve", clock, 128)
    }

    /// The fault-injection plan attached to this device.
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults.clone()
    }
}

impl BlockDevice for Nvram {
    fn name(&self) -> &str {
        &self.name
    }

    fn block_size(&self) -> usize {
        self.store.block_size()
    }

    fn nblocks(&self) -> u64 {
        self.store.nblocks()
    }

    fn read_block(&mut self, blkno: u64, buf: &mut [u8]) -> DevResult<()> {
        self.faults.check_read()?;
        self.clock.advance(self.access_cost);
        self.store.read(blkno, buf)
    }

    fn write_block(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()> {
        self.faults.check_write()?;
        self.clock.advance(self.access_cost);
        self.store.write(blkno, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskProfile, MagneticDisk};

    #[test]
    fn prestoserve_is_one_megabyte() {
        let nv = Nvram::prestoserve(SimClock::new());
        assert_eq!(nv.nblocks() * nv.block_size() as u64, 1 << 20);
    }

    #[test]
    fn roundtrip() {
        let mut nv = Nvram::new("nv", SimClock::new(), 8);
        let buf = vec![3u8; nv.block_size()];
        nv.write_block(3, &buf).unwrap();
        let mut out = vec![0u8; nv.block_size()];
        nv.read_block(3, &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn much_faster_than_disk() {
        let clock = SimClock::new();
        let mut nv = Nvram::new("nv", clock.clone(), 8);
        let mut dk = MagneticDisk::new("dk", clock.clone(), DiskProfile::rz58());
        let buf = vec![0u8; 8192];

        let t0 = clock.now();
        nv.write_block(0, &buf).unwrap();
        let nv_cost = clock.now().since(t0);

        let t1 = clock.now();
        dk.write_block(500_000 % dk.nblocks(), &buf).unwrap();
        let dk_cost = clock.now().since(t1);

        assert!(dk_cost.as_nanos() > nv_cost.as_nanos() * 50);
    }

    #[test]
    fn nvram_is_stable() {
        let nv = Nvram::prestoserve(SimClock::new());
        assert!(nv.is_stable());
        assert!(!nv.is_write_once());
    }
}
