//! Fault injection for crash-recovery and media-failure tests.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{DevError, DevResult};

#[derive(Debug, Default)]
struct Inner {
    offline: bool,
    fail_after_writes: Option<u64>,
    writes_seen: u64,
    fail_after_reads: Option<u64>,
    reads_seen: u64,
    write_trips: u64,
    read_trips: u64,
    corrupt_blocks: HashSet<u64>,
}

/// A shared, cloneable fault-injection plan attached to a device model.
///
/// The plan is consulted on every device operation; tests use it to take a
/// device offline mid-transaction, to kill power after a fixed number of
/// writes, or to corrupt individual blocks (exercising the paper's
/// "self-identifying blocks" discussion).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// Creates a plan with no faults armed.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Takes the device offline (all subsequent operations fail) or back online.
    pub fn set_offline(&self, offline: bool) {
        self.inner.lock().offline = offline;
    }

    /// Arms a fault that fails every write after `n` more writes succeed.
    pub fn fail_after_writes(&self, n: u64) {
        let mut g = self.inner.lock();
        g.fail_after_writes = Some(n);
        g.writes_seen = 0;
    }

    /// Disarms the write-failure fault.
    pub fn clear_write_fault(&self) {
        self.inner.lock().fail_after_writes = None;
    }

    /// Arms a fault that fails every read after `n` more reads succeed.
    pub fn fail_after_reads(&self, n: u64) {
        let mut g = self.inner.lock();
        g.fail_after_reads = Some(n);
        g.reads_seen = 0;
    }

    /// Disarms the read-failure fault.
    pub fn clear_read_fault(&self) {
        self.inner.lock().fail_after_reads = None;
    }

    /// How many writes the armed write fault has failed so far.
    pub fn write_trips(&self) -> u64 {
        self.inner.lock().write_trips
    }

    /// How many reads the armed read fault has failed so far.
    pub fn read_trips(&self) -> u64 {
        self.inner.lock().read_trips
    }

    /// Total injected-fault trips (reads + writes) — the battery asserts
    /// this to prove an armed fault actually fired.
    pub fn trips(&self) -> u64 {
        let g = self.inner.lock();
        g.write_trips + g.read_trips
    }

    /// Marks `blkno` as corrupted: reads of it yield garbage (see device impls).
    pub fn corrupt_block(&self, blkno: u64) {
        self.inner.lock().corrupt_blocks.insert(blkno);
    }

    /// Whether `blkno` is marked corrupted.
    pub fn is_corrupt(&self, blkno: u64) -> bool {
        self.inner.lock().corrupt_blocks.contains(&blkno)
    }

    /// Gate for device read paths; counts reads against an armed fault.
    pub fn check_read(&self) -> DevResult<()> {
        let mut g = self.inner.lock();
        if g.offline {
            return Err(DevError::Offline);
        }
        if let Some(n) = g.fail_after_reads {
            if g.reads_seen >= n {
                g.read_trips += 1;
                return Err(DevError::InjectedFault {
                    what: format!("read failure armed after {n} reads"),
                });
            }
            g.reads_seen += 1;
        }
        Ok(())
    }

    /// Gate for device write paths; counts writes against an armed fault.
    pub fn check_write(&self) -> DevResult<()> {
        let mut g = self.inner.lock();
        if g.offline {
            return Err(DevError::Offline);
        }
        if let Some(n) = g.fail_after_writes {
            if g.writes_seen >= n {
                g.write_trips += 1;
                return Err(DevError::InjectedFault {
                    what: format!("write failure armed after {n} writes"),
                });
            }
            g.writes_seen += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_transparent() {
        let p = FaultPlan::none();
        assert!(p.check_read().is_ok());
        for _ in 0..100 {
            assert!(p.check_write().is_ok());
        }
    }

    #[test]
    fn offline_fails_everything() {
        let p = FaultPlan::none();
        p.set_offline(true);
        assert_eq!(p.check_read(), Err(DevError::Offline));
        assert_eq!(p.check_write(), Err(DevError::Offline));
        p.set_offline(false);
        assert!(p.check_read().is_ok());
    }

    #[test]
    fn fail_after_n_writes() {
        let p = FaultPlan::none();
        p.fail_after_writes(3);
        assert!(p.check_write().is_ok());
        assert!(p.check_write().is_ok());
        assert!(p.check_write().is_ok());
        assert!(matches!(
            p.check_write(),
            Err(DevError::InjectedFault { .. })
        ));
        p.clear_write_fault();
        assert!(p.check_write().is_ok());
    }

    #[test]
    fn fail_after_n_reads_and_trip_counters() {
        let p = FaultPlan::none();
        p.fail_after_reads(2);
        assert!(p.check_read().is_ok());
        assert!(p.check_read().is_ok());
        assert!(matches!(p.check_read(), Err(DevError::InjectedFault { .. })));
        assert!(matches!(p.check_read(), Err(DevError::InjectedFault { .. })));
        assert_eq!(p.read_trips(), 2);
        assert_eq!(p.write_trips(), 0);
        p.clear_read_fault();
        assert!(p.check_read().is_ok());
        // Trip counters persist past disarming — they record history.
        assert_eq!(p.trips(), 2);

        p.fail_after_writes(0);
        assert!(p.check_write().is_err());
        assert_eq!(p.write_trips(), 1);
        assert_eq!(p.trips(), 3);
    }

    #[test]
    fn corrupt_blocks_tracked() {
        let p = FaultPlan::none();
        assert!(!p.is_corrupt(7));
        p.corrupt_block(7);
        assert!(p.is_corrupt(7));
    }

    #[test]
    fn clones_share_state() {
        let p = FaultPlan::none();
        let q = p.clone();
        q.set_offline(true);
        assert!(p.check_read().is_err());
    }
}
