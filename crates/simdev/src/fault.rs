//! Fault injection for crash-recovery and media-failure tests.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{DevError, DevResult};

#[derive(Debug, Default)]
struct Inner {
    offline: bool,
    fail_after_writes: Option<u64>,
    writes_seen: u64,
    corrupt_blocks: HashSet<u64>,
}

/// A shared, cloneable fault-injection plan attached to a device model.
///
/// The plan is consulted on every device operation; tests use it to take a
/// device offline mid-transaction, to kill power after a fixed number of
/// writes, or to corrupt individual blocks (exercising the paper's
/// "self-identifying blocks" discussion).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// Creates a plan with no faults armed.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Takes the device offline (all subsequent operations fail) or back online.
    pub fn set_offline(&self, offline: bool) {
        self.inner.lock().offline = offline;
    }

    /// Arms a fault that fails every write after `n` more writes succeed.
    pub fn fail_after_writes(&self, n: u64) {
        let mut g = self.inner.lock();
        g.fail_after_writes = Some(n);
        g.writes_seen = 0;
    }

    /// Disarms the write-failure fault.
    pub fn clear_write_fault(&self) {
        self.inner.lock().fail_after_writes = None;
    }

    /// Marks `blkno` as corrupted: reads of it yield garbage (see device impls).
    pub fn corrupt_block(&self, blkno: u64) {
        self.inner.lock().corrupt_blocks.insert(blkno);
    }

    /// Whether `blkno` is marked corrupted.
    pub fn is_corrupt(&self, blkno: u64) -> bool {
        self.inner.lock().corrupt_blocks.contains(&blkno)
    }

    /// Gate for device read paths.
    pub fn check_read(&self) -> DevResult<()> {
        if self.inner.lock().offline {
            return Err(DevError::Offline);
        }
        Ok(())
    }

    /// Gate for device write paths; counts writes against an armed fault.
    pub fn check_write(&self) -> DevResult<()> {
        let mut g = self.inner.lock();
        if g.offline {
            return Err(DevError::Offline);
        }
        if let Some(n) = g.fail_after_writes {
            if g.writes_seen >= n {
                return Err(DevError::InjectedFault {
                    what: format!("write failure armed after {n} writes"),
                });
            }
            g.writes_seen += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_transparent() {
        let p = FaultPlan::none();
        assert!(p.check_read().is_ok());
        for _ in 0..100 {
            assert!(p.check_write().is_ok());
        }
    }

    #[test]
    fn offline_fails_everything() {
        let p = FaultPlan::none();
        p.set_offline(true);
        assert_eq!(p.check_read(), Err(DevError::Offline));
        assert_eq!(p.check_write(), Err(DevError::Offline));
        p.set_offline(false);
        assert!(p.check_read().is_ok());
    }

    #[test]
    fn fail_after_n_writes() {
        let p = FaultPlan::none();
        p.fail_after_writes(3);
        assert!(p.check_write().is_ok());
        assert!(p.check_write().is_ok());
        assert!(p.check_write().is_ok());
        assert!(matches!(
            p.check_write(),
            Err(DevError::InjectedFault { .. })
        ));
        p.clear_write_fault();
        assert!(p.check_write().is_ok());
    }

    #[test]
    fn corrupt_blocks_tracked() {
        let p = FaultPlan::none();
        assert!(!p.is_corrupt(7));
        p.corrupt_block(7);
        assert!(p.is_corrupt(7));
    }

    #[test]
    fn clones_share_state() {
        let p = FaultPlan::none();
        let q = p.clone();
        q.set_offline(true);
        assert!(p.check_read().is_err());
    }
}
