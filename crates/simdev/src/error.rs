//! Device error types.

use std::fmt;

/// Errors surfaced by simulated devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// A block number beyond the device capacity was addressed.
    OutOfRange {
        /// The offending block number.
        blkno: u64,
        /// Device capacity in blocks.
        nblocks: u64,
    },
    /// A write targeted an already-written block on write-once media.
    WriteOnceViolation {
        /// The offending block number.
        blkno: u64,
    },
    /// The buffer length did not match the device block size.
    BadBufferLen {
        /// Caller-supplied length.
        got: usize,
        /// Required length.
        want: usize,
    },
    /// The device is full.
    NoSpace,
    /// An injected fault fired (see [`crate::fault::FaultPlan`]).
    InjectedFault {
        /// Human-readable description of the injected fault.
        what: String,
    },
    /// The device was administratively taken offline.
    Offline,
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::OutOfRange { blkno, nblocks } => {
                write!(
                    f,
                    "block {blkno} out of range (device has {nblocks} blocks)"
                )
            }
            DevError::WriteOnceViolation { blkno } => {
                write!(f, "block {blkno} already written on write-once medium")
            }
            DevError::BadBufferLen { got, want } => {
                write!(f, "buffer length {got} does not match block size {want}")
            }
            DevError::NoSpace => write!(f, "device full"),
            DevError::InjectedFault { what } => write!(f, "injected fault: {what}"),
            DevError::Offline => write!(f, "device offline"),
        }
    }
}

impl std::error::Error for DevError {}

/// Convenience alias for device operation results.
pub type DevResult<T> = Result<T, DevError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DevError::OutOfRange {
            blkno: 9,
            nblocks: 4,
        };
        assert!(e.to_string().contains("block 9"));
        assert!(e.to_string().contains("4 blocks"));
        let e = DevError::WriteOnceViolation { blkno: 3 };
        assert!(e.to_string().contains("write-once"));
        let e = DevError::BadBufferLen { got: 1, want: 8192 };
        assert!(e.to_string().contains("8192"));
    }
}
