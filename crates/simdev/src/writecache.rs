//! A volatile write-back cache wrapper for crash simulation.
//!
//! [`WriteCacheDisk`] wraps any [`BlockDevice`] and holds every write in a
//! volatile in-memory cache until [`BlockDevice::sync`] is called, at which
//! point the cached blocks are applied to the inner device in block order.
//! The paired [`CacheCrashHandle`] lets a test model a power failure by
//! discarding everything that was never synced — exactly the state a real
//! disk's track buffer would lose.
//!
//! This is the device the crash-recovery property tests run on: a commit is
//! only durable if the commit path actually issued a `sync` that covered it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::block::BlockDevice;
use crate::error::DevResult;

/// Shared volatile cache state: blkno → buffered (unsynced) contents.
type Pending = Arc<Mutex<HashMap<u64, Box<[u8]>>>>;

/// A write-back caching wrapper around another block device.
///
/// Reads see the cache overlay; writes land only in the cache; `sync`
/// destages everything to the inner device and then syncs it. Because the
/// cache is volatile, [`WriteCacheDisk::is_stable`] reports `false`.
pub struct WriteCacheDisk {
    inner: Box<dyn BlockDevice>,
    pending: Pending,
}

/// A handle onto a [`WriteCacheDisk`]'s volatile cache, held by the test
/// harness so it can "pull the plug" while the device itself is owned by
/// the storage manager.
#[derive(Clone)]
pub struct CacheCrashHandle {
    pending: Pending,
}

impl WriteCacheDisk {
    /// Wraps `inner`, returning the device and the crash handle.
    pub fn new(inner: Box<dyn BlockDevice>) -> (Self, CacheCrashHandle) {
        let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
        let handle = CacheCrashHandle {
            pending: pending.clone(),
        };
        (Self { inner, pending }, handle)
    }
}

impl CacheCrashHandle {
    /// Simulates a power failure: every write that was never covered by a
    /// `sync` vanishes. Returns how many blocks were lost.
    pub fn drop_unsynced(&self) -> usize {
        let mut p = self.pending.lock().expect("cache poisoned");
        let lost = p.len();
        p.clear();
        lost
    }

    /// Number of blocks currently buffered but not yet durable.
    pub fn unsynced_blocks(&self) -> usize {
        self.pending.lock().expect("cache poisoned").len()
    }
}

impl BlockDevice for WriteCacheDisk {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn nblocks(&self) -> u64 {
        self.inner.nblocks()
    }

    fn read_block(&mut self, blkno: u64, buf: &mut [u8]) -> DevResult<()> {
        let cached = {
            let p = self.pending.lock().expect("cache poisoned");
            p.get(&blkno).cloned()
        };
        match cached {
            Some(data) => {
                buf.copy_from_slice(&data);
                Ok(())
            }
            None => self.inner.read_block(blkno, buf),
        }
    }

    fn write_block(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()> {
        // Validate against the inner device's geometry without dirtying it:
        // out-of-range or bad-length writes must still fail loudly.
        if blkno >= self.inner.nblocks() {
            return Err(crate::error::DevError::OutOfRange {
                blkno,
                nblocks: self.inner.nblocks(),
            });
        }
        if buf.len() != self.inner.block_size() {
            return Err(crate::error::DevError::BadBufferLen {
                got: buf.len(),
                want: self.inner.block_size(),
            });
        }
        self.pending
            .lock()
            .expect("cache poisoned")
            .insert(blkno, buf.to_vec().into_boxed_slice());
        Ok(())
    }

    fn sync(&mut self) -> DevResult<()> {
        let mut destage: Vec<(u64, Box<[u8]>)> = {
            let mut p = self.pending.lock().expect("cache poisoned");
            p.drain().collect()
        };
        destage.sort_by_key(|(blkno, _)| *blkno);
        for (blkno, data) in destage {
            self.inner.write_block(blkno, &data)?;
        }
        self.inner.sync()
    }

    fn is_write_once(&self) -> bool {
        self.inner.is_write_once()
    }

    fn is_stable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::disk::{DiskProfile, MagneticDisk};

    fn cached_disk() -> (WriteCacheDisk, CacheCrashHandle) {
        let clock = SimClock::new();
        let disk = MagneticDisk::new("rz58", clock, DiskProfile::tiny_for_tests(64));
        WriteCacheDisk::new(Box::new(disk))
    }

    #[test]
    fn writes_are_volatile_until_sync() {
        let (mut dev, handle) = cached_disk();
        let bs = dev.block_size();
        let page = vec![7u8; bs];
        dev.write_block(3, &page).unwrap();
        assert_eq!(handle.unsynced_blocks(), 1);

        // Reads see the cached copy.
        let mut buf = vec![0u8; bs];
        dev.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, page);

        // Crash before sync: the write is gone, reads see zeroes.
        assert_eq!(handle.drop_unsynced(), 1);
        dev.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; bs]);
    }

    #[test]
    fn sync_makes_writes_survive_a_crash() {
        let (mut dev, handle) = cached_disk();
        let bs = dev.block_size();
        let page = vec![9u8; bs];
        dev.write_block(0, &page).unwrap();
        dev.sync().unwrap();
        assert_eq!(handle.unsynced_blocks(), 0);
        assert_eq!(handle.drop_unsynced(), 0);
        let mut buf = vec![0u8; bs];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf, page);
    }

    #[test]
    fn geometry_errors_pass_through() {
        let (mut dev, _handle) = cached_disk();
        let bs = dev.block_size();
        let n = dev.nblocks();
        assert!(dev.write_block(n, &vec![0u8; bs]).is_err());
        assert!(dev.write_block(0, &[0u8; 3]).is_err());
        assert!(!dev.is_stable());
    }
}
