//! Network model: 10 Mbit/s Ethernet carrying TCP/IP or NFS-style UDP RPC.
//!
//! The paper's client/server measurements ran over "TCP/IP over a
//! 10 Mbit/sec Ethernet" and conclude that "the client/server communication
//! protocol used by the file system is much too heavy-weight". The model
//! therefore separates the *wire* (bandwidth + propagation latency, shared by
//! every protocol) from the *protocol* (per-message CPU overhead and per-byte
//! processing cost, which differ sharply between 1993 TCP/IP stacks and the
//! leaner NFS UDP RPC path).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::{SimClock, SimDuration};

/// Per-protocol cost parameters layered on a [`Network`].
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// Fixed CPU + stack traversal cost charged per message (each direction).
    pub per_msg_overhead: SimDuration,
    /// Per-byte protocol processing cost (checksums, copies in the stack).
    pub per_byte_cpu: SimDuration,
}

impl NetProfile {
    /// A 1993 TCP/IP stack: ~3 ms per message, ~150 ns/byte of stack
    /// processing. This is the "much too heavy-weight" path Inversion used.
    pub fn tcp_1993() -> Self {
        NetProfile {
            per_msg_overhead: SimDuration::from_micros(3000),
            per_byte_cpu: SimDuration::from_nanos(150),
        }
    }

    /// The NFS UDP RPC path: ~1.2 ms per message, ~60 ns/byte.
    pub fn nfs_udp() -> Self {
        NetProfile {
            per_msg_overhead: SimDuration::from_micros(1200),
            per_byte_cpu: SimDuration::from_nanos(60),
        }
    }

    /// A free profile for tests that want data movement without time cost.
    pub fn zero_cost() -> Self {
        NetProfile {
            per_msg_overhead: SimDuration::ZERO,
            per_byte_cpu: SimDuration::ZERO,
        }
    }
}

#[derive(Debug, Default)]
struct WireStats {
    messages: u64,
    bytes: u64,
}

/// A shared network segment with finite bandwidth and propagation latency.
#[derive(Clone)]
pub struct Network {
    clock: SimClock,
    bandwidth_bps: f64,
    latency: SimDuration,
    stats: Arc<Mutex<WireStats>>,
}

impl Network {
    /// Creates a network with the given raw bandwidth (bits/second) and
    /// one-way propagation + medium-access latency.
    pub fn new(clock: SimClock, bandwidth_bps: f64, latency: SimDuration) -> Self {
        Network {
            clock,
            bandwidth_bps,
            latency,
            stats: Arc::new(Mutex::new(WireStats::default())),
        }
    }

    /// The 10 Mbit/s Ethernet of the paper's testbed (≈0.3 ms access latency).
    pub fn ethernet_10mbit(clock: SimClock) -> Self {
        Network::new(clock, 10e6, SimDuration::from_micros(300))
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Total messages carried.
    pub fn messages(&self) -> u64 {
        self.stats.lock().messages
    }

    /// Total payload bytes carried.
    pub fn bytes(&self) -> u64 {
        self.stats.lock().bytes
    }

    /// Charges the wire cost of moving `bytes` in one direction.
    fn charge_wire(&self, bytes: usize) {
        // Frame overhead: ~58 bytes of Ethernet+IP+transport headers per
        // 1500-byte MTU frame.
        let frames = (bytes / 1440).max(1) as f64;
        let on_wire = bytes as f64 + frames * 58.0;
        let cost = self.latency.plus(SimDuration::from_secs_f64(
            on_wire * 8.0 / self.bandwidth_bps,
        ));
        self.clock.advance(cost);
        let mut s = self.stats.lock();
        s.messages += 1;
        s.bytes += bytes as u64;
    }
}

/// Per-endpoint counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// RPCs issued (request/response pairs).
    pub rpcs: u64,
    /// Bytes sent (requests).
    pub bytes_out: u64,
    /// Bytes received (responses).
    pub bytes_in: u64,
}

/// One side of a protocol session on a [`Network`].
///
/// Endpoints model *synchronous* request/response traffic, which is all the
/// Inversion library protocol and NFS need. Each RPC charges: protocol
/// overhead on both hosts, per-byte stack cost, and the wire time of both
/// messages.
pub struct Endpoint {
    net: Network,
    profile: NetProfile,
    stats: EndpointStats,
}

impl Endpoint {
    /// Creates an endpoint speaking `profile` over `net`.
    pub fn new(net: Network, profile: NetProfile) -> Self {
        Endpoint {
            net,
            profile,
            stats: EndpointStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Charges one synchronous RPC of `req_bytes` out and `resp_bytes` back.
    pub fn rpc(&mut self, req_bytes: usize, resp_bytes: usize) {
        // Sender-side and receiver-side protocol work for each message:
        // 2 messages x 2 hosts = 4 fixed overheads.
        let fixed = self.profile.per_msg_overhead.times(4);
        let per_byte = SimDuration::from_nanos(
            self.profile.per_byte_cpu.as_nanos() * (req_bytes + resp_bytes) as u64 * 2,
        );
        self.net.clock.advance(fixed.plus(per_byte));
        self.net.charge_wire(req_bytes);
        self.net.charge_wire(resp_bytes);
        self.stats.rpcs += 1;
        self.stats.bytes_out += req_bytes as u64;
        self.stats.bytes_in += resp_bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_takes_about_a_second_on_the_wire() {
        let clock = SimClock::new();
        let net = Network::ethernet_10mbit(clock.clone());
        let mut ep = Endpoint::new(net, NetProfile::zero_cost());
        let t0 = clock.now();
        // 128 RPCs x 8 KB responses = 1 MB transferred.
        for _ in 0..128 {
            ep.rpc(100, 8192);
        }
        let took = clock.now().since(t0).as_secs_f64();
        // 1 MB at 10 Mbit/s is ~0.84 s; headers and latency push it up a bit.
        assert!((0.8..1.5).contains(&took), "took {took}s");
    }

    #[test]
    fn tcp_costs_more_than_udp() {
        let clock = SimClock::new();
        let net = Network::ethernet_10mbit(clock.clone());
        let mut tcp = Endpoint::new(net.clone(), NetProfile::tcp_1993());
        let mut udp = Endpoint::new(net, NetProfile::nfs_udp());

        let t0 = clock.now();
        for _ in 0..64 {
            tcp.rpc(128, 8192);
        }
        let tcp_cost = clock.now().since(t0);

        let t1 = clock.now();
        for _ in 0..64 {
            udp.rpc(128, 8192);
        }
        let udp_cost = clock.now().since(t1);
        assert!(tcp_cost.as_nanos() > udp_cost.as_nanos());
    }

    #[test]
    fn stats_accumulate() {
        let clock = SimClock::new();
        let net = Network::ethernet_10mbit(clock);
        let mut ep = Endpoint::new(net.clone(), NetProfile::nfs_udp());
        ep.rpc(10, 20);
        ep.rpc(30, 40);
        assert_eq!(ep.stats().rpcs, 2);
        assert_eq!(ep.stats().bytes_out, 40);
        assert_eq!(ep.stats().bytes_in, 60);
        assert_eq!(net.messages(), 4);
        assert_eq!(net.bytes(), 100);
    }

    #[test]
    fn zero_byte_rpc_still_pays_latency() {
        let clock = SimClock::new();
        let net = Network::ethernet_10mbit(clock.clone());
        let mut ep = Endpoint::new(net, NetProfile::zero_cost());
        ep.rpc(0, 0);
        assert!(clock.now().as_nanos() > 0);
    }
}
