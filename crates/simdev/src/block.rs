//! The block device abstraction and its in-memory backing store.

use crate::error::{DevError, DevResult};

/// A fixed-block-size random-access storage device.
///
/// This is the interface the storage manager's *device manager switch* (the
/// paper's `bdevsw`-style table) programs against. Implementations charge
/// their modeled access cost to the shared [`crate::SimClock`] on every call,
/// while actually moving the bytes so that higher layers are exercised for
/// real.
pub trait BlockDevice: Send {
    /// A short human-readable device name (e.g. `"rz58"`).
    fn name(&self) -> &str;

    /// The device block size in bytes (8192 throughout this system).
    fn block_size(&self) -> usize;

    /// Device capacity in blocks.
    fn nblocks(&self) -> u64;

    /// Reads block `blkno` into `buf` (`buf.len()` must equal the block size).
    fn read_block(&mut self, blkno: u64, buf: &mut [u8]) -> DevResult<()>;

    /// Writes `buf` to block `blkno` (`buf.len()` must equal the block size).
    fn write_block(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()>;

    /// Forces all buffered writes to stable storage.
    ///
    /// The in-memory models write through, so the default is a no-op; devices
    /// with internal volatile caches (e.g. [`crate::Nvram`] in write-back
    /// mode) override it.
    fn sync(&mut self) -> DevResult<()> {
        Ok(())
    }

    /// Whether the medium is write-once (WORM optical platters).
    fn is_write_once(&self) -> bool {
        false
    }

    /// Whether the device contents survive a power failure.
    fn is_stable(&self) -> bool {
        true
    }
}

/// Sparse in-memory block storage shared by all device models.
///
/// Blocks are materialized on first write; reads of never-written blocks
/// return zeroes, like a freshly formatted medium.
#[derive(Debug, Default)]
pub struct MemBlockStore {
    block_size: usize,
    nblocks: u64,
    blocks: std::collections::HashMap<u64, Box<[u8]>>,
}

impl MemBlockStore {
    /// Creates a store of `nblocks` blocks of `block_size` bytes each.
    pub fn new(block_size: usize, nblocks: u64) -> Self {
        MemBlockStore {
            block_size,
            nblocks,
            blocks: std::collections::HashMap::new(),
        }
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configured capacity in blocks.
    pub fn nblocks(&self) -> u64 {
        self.nblocks
    }

    /// Number of blocks actually materialized (written at least once).
    pub fn blocks_written(&self) -> usize {
        self.blocks.len()
    }

    /// Whether `blkno` has ever been written.
    pub fn is_written(&self, blkno: u64) -> bool {
        self.blocks.contains_key(&blkno)
    }

    fn check(&self, blkno: u64, len: usize) -> DevResult<()> {
        if blkno >= self.nblocks {
            return Err(DevError::OutOfRange {
                blkno,
                nblocks: self.nblocks,
            });
        }
        if len != self.block_size {
            return Err(DevError::BadBufferLen {
                got: len,
                want: self.block_size,
            });
        }
        Ok(())
    }

    /// Copies block `blkno` into `buf`.
    pub fn read(&self, blkno: u64, buf: &mut [u8]) -> DevResult<()> {
        self.check(blkno, buf.len())?;
        match self.blocks.get(&blkno) {
            Some(b) => buf.copy_from_slice(b),
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Stores `buf` as block `blkno`.
    pub fn write(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()> {
        self.check(blkno, buf.len())?;
        self.blocks.insert(blkno, buf.into());
        Ok(())
    }

    /// Discards all contents (models a volatile device losing power).
    pub fn clear(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_zero() {
        let store = MemBlockStore::new(16, 4);
        let mut buf = [0xFFu8; 16];
        store.read(2, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert!(!store.is_written(2));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut store = MemBlockStore::new(4, 4);
        store.write(1, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        store.read(1, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(store.blocks_written(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut store = MemBlockStore::new(4, 4);
        let err = store.write(4, &[0; 4]).unwrap_err();
        assert!(matches!(
            err,
            DevError::OutOfRange {
                blkno: 4,
                nblocks: 4
            }
        ));
        let mut buf = [0u8; 4];
        assert!(store.read(100, &mut buf).is_err());
    }

    #[test]
    fn bad_buffer_len_rejected() {
        let mut store = MemBlockStore::new(4, 4);
        assert!(matches!(
            store.write(0, &[0; 3]),
            Err(DevError::BadBufferLen { got: 3, want: 4 })
        ));
        let mut small = [0u8; 2];
        assert!(store.read(0, &mut small).is_err());
    }

    #[test]
    fn clear_drops_contents() {
        let mut store = MemBlockStore::new(4, 4);
        store.write(0, &[9; 4]).unwrap();
        store.clear();
        let mut buf = [9u8; 4];
        store.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }
}
