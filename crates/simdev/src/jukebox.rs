//! Tertiary storage robots: the Sony WORM optical jukebox and the Metrum
//! VHS tape jukebox.
//!
//! The paper's installation managed "a 327 GByte Sony optical disk WORM
//! jukebox", with "extremely high setup costs (many seconds to load an
//! optical platter) and relatively low transfer rates"; "in the near future,
//! a 9 TByte Metrum VHS-form factor tape jukebox will also be supported".
//!
//! Both are exposed as flat [`BlockDevice`] address spaces; the robot
//! mechanics (platter/cartridge exchange, tape winding) are charged on
//! boundary crossings. The magnetic-disk *staging cache* the Sony device
//! manager kept in front of the jukebox belongs to the device manager, not
//! the medium, and lives in `minidb::smgr`.

use crate::block::{BlockDevice, MemBlockStore};
use crate::clock::{SimClock, SimDuration};
use crate::error::{DevError, DevResult};
use crate::fault::FaultPlan;

/// Timing and capacity parameters for an [`OpticalJukebox`].
#[derive(Debug, Clone)]
pub struct JukeboxProfile {
    /// Number of platter sides the robot can mount.
    pub nplatters: u64,
    /// Blocks per platter side.
    pub blocks_per_platter: u64,
    /// Robot exchange + spin-up cost when switching platters.
    pub platter_swap: SimDuration,
    /// Per-access positioning cost once the right platter is mounted.
    pub access_overhead: SimDuration,
    /// Media transfer rate in bytes/second.
    pub transfer_rate: f64,
}

impl JukeboxProfile {
    /// The Sony 327 GB WORM autochanger: ~100 double-sided 3.27 GB platters,
    /// ~8 s exchange, ~40 ms access, ~400 KB/s sustained transfer.
    pub fn sony_worm() -> Self {
        JukeboxProfile {
            nplatters: 100,
            blocks_per_platter: 3_270_000_000 / crate::BLOCK_SIZE as u64,
            platter_swap: SimDuration::from_secs(8),
            access_overhead: SimDuration::from_millis(40),
            transfer_rate: 400e3,
        }
    }

    /// A tiny fast profile for tests.
    pub fn tiny_for_tests() -> Self {
        JukeboxProfile {
            nplatters: 4,
            blocks_per_platter: 64,
            platter_swap: SimDuration::from_millis(10),
            access_overhead: SimDuration::from_micros(100),
            transfer_rate: 10e6,
        }
    }
}

/// Counters for a jukebox device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JukeboxStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Platter (or cartridge) exchanges performed by the robot.
    pub swaps: u64,
}

/// A write-once optical disk autochanger.
///
/// The block address space is flat; block `b` lives on platter
/// `b / blocks_per_platter`. Rewriting a block fails with
/// [`DevError::WriteOnceViolation`] — WORM media really are write-once, which
/// is why the paper pairs the jukebox with a no-overwrite storage manager.
pub struct OpticalJukebox {
    name: String,
    clock: SimClock,
    profile: JukeboxProfile,
    store: MemBlockStore,
    faults: FaultPlan,
    mounted: Option<u64>,
    stats: JukeboxStats,
}

impl OpticalJukebox {
    /// Creates a jukebox with the given profile, all platters blank.
    pub fn new(name: impl Into<String>, clock: SimClock, profile: JukeboxProfile) -> Self {
        let nblocks = profile.nplatters * profile.blocks_per_platter;
        OpticalJukebox {
            name: name.into(),
            clock,
            store: MemBlockStore::new(crate::BLOCK_SIZE, nblocks),
            profile,
            faults: FaultPlan::none(),
            mounted: None,
            stats: JukeboxStats::default(),
        }
    }

    /// The fault-injection plan attached to this device.
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults.clone()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> JukeboxStats {
        self.stats
    }

    /// The platter a block lives on.
    pub fn platter_of(&self, blkno: u64) -> u64 {
        blkno / self.profile.blocks_per_platter
    }

    fn charge(&mut self, blkno: u64) {
        let platter = self.platter_of(blkno);
        let mut cost = self.profile.access_overhead;
        if self.mounted != Some(platter) {
            cost += self.profile.platter_swap;
            self.mounted = Some(platter);
            self.stats.swaps += 1;
        }
        cost += SimDuration::from_secs_f64(crate::BLOCK_SIZE as f64 / self.profile.transfer_rate);
        self.clock.advance(cost);
    }
}

impl BlockDevice for OpticalJukebox {
    fn name(&self) -> &str {
        &self.name
    }

    fn block_size(&self) -> usize {
        crate::BLOCK_SIZE
    }

    fn nblocks(&self) -> u64 {
        self.store.nblocks()
    }

    fn read_block(&mut self, blkno: u64, buf: &mut [u8]) -> DevResult<()> {
        self.faults.check_read()?;
        self.charge(blkno);
        self.store.read(blkno, buf)?;
        self.stats.reads += 1;
        Ok(())
    }

    fn write_block(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()> {
        self.faults.check_write()?;
        if self.store.is_written(blkno) {
            return Err(DevError::WriteOnceViolation { blkno });
        }
        self.charge(blkno);
        self.store.write(blkno, buf)?;
        self.stats.writes += 1;
        Ok(())
    }

    fn is_write_once(&self) -> bool {
        true
    }
}

/// Timing parameters for a [`TapeJukebox`].
#[derive(Debug, Clone)]
pub struct TapeProfile {
    /// Number of cartridges.
    pub ncartridges: u64,
    /// Blocks per cartridge.
    pub blocks_per_cartridge: u64,
    /// Robot pick/load/thread time.
    pub cartridge_swap: SimDuration,
    /// Wind time across the whole tape (cost scales with travel distance).
    pub full_wind: SimDuration,
    /// Streaming transfer rate in bytes/second.
    pub transfer_rate: f64,
}

impl TapeProfile {
    /// The Metrum RSS-600: ~600 VHS cartridges of ~14.5 GB, ~1 min load +
    /// wind, ~1 MB/s streaming — roughly the announced 9 TB robot.
    pub fn metrum() -> Self {
        TapeProfile {
            ncartridges: 600,
            blocks_per_cartridge: 14_500_000_000 / crate::BLOCK_SIZE as u64,
            cartridge_swap: SimDuration::from_secs(45),
            full_wind: SimDuration::from_secs(90),
            transfer_rate: 1e6,
        }
    }

    /// A tiny fast profile for tests.
    pub fn tiny_for_tests() -> Self {
        TapeProfile {
            ncartridges: 2,
            blocks_per_cartridge: 32,
            cartridge_swap: SimDuration::from_millis(5),
            full_wind: SimDuration::from_millis(10),
            transfer_rate: 10e6,
        }
    }
}

/// A robotic tape library with linear positioning cost inside a cartridge.
pub struct TapeJukebox {
    name: String,
    clock: SimClock,
    profile: TapeProfile,
    store: MemBlockStore,
    faults: FaultPlan,
    mounted: Option<u64>,
    head_block: u64,
    stats: JukeboxStats,
}

impl TapeJukebox {
    /// Creates a tape jukebox, all cartridges blank.
    pub fn new(name: impl Into<String>, clock: SimClock, profile: TapeProfile) -> Self {
        let nblocks = profile.ncartridges * profile.blocks_per_cartridge;
        TapeJukebox {
            name: name.into(),
            clock,
            store: MemBlockStore::new(crate::BLOCK_SIZE, nblocks),
            profile,
            faults: FaultPlan::none(),
            mounted: None,
            head_block: 0,
            stats: JukeboxStats::default(),
        }
    }

    /// The fault-injection plan attached to this device.
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults.clone()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> JukeboxStats {
        self.stats
    }

    fn charge(&mut self, blkno: u64) {
        let cart = blkno / self.profile.blocks_per_cartridge;
        let pos = blkno % self.profile.blocks_per_cartridge;
        let mut cost = SimDuration::ZERO;
        if self.mounted != Some(cart) {
            cost += self.profile.cartridge_swap;
            self.mounted = Some(cart);
            self.head_block = 0;
            self.stats.swaps += 1;
        }
        let travel =
            self.head_block.abs_diff(pos) as f64 / self.profile.blocks_per_cartridge.max(1) as f64;
        cost += SimDuration::from_nanos((self.profile.full_wind.as_nanos() as f64 * travel) as u64);
        cost += SimDuration::from_secs_f64(crate::BLOCK_SIZE as f64 / self.profile.transfer_rate);
        self.head_block = pos + 1;
        self.clock.advance(cost);
    }
}

impl BlockDevice for TapeJukebox {
    fn name(&self) -> &str {
        &self.name
    }

    fn block_size(&self) -> usize {
        crate::BLOCK_SIZE
    }

    fn nblocks(&self) -> u64 {
        self.store.nblocks()
    }

    fn read_block(&mut self, blkno: u64, buf: &mut [u8]) -> DevResult<()> {
        self.faults.check_read()?;
        self.charge(blkno);
        self.store.read(blkno, buf)?;
        self.stats.reads += 1;
        Ok(())
    }

    fn write_block(&mut self, blkno: u64, buf: &[u8]) -> DevResult<()> {
        self.faults.check_write()?;
        self.charge(blkno);
        self.store.write(blkno, buf)?;
        self.stats.writes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sony_capacity_matches_paper() {
        let jb = OpticalJukebox::new("sony", SimClock::new(), JukeboxProfile::sony_worm());
        let bytes = jb.nblocks() * jb.block_size() as u64;
        assert!(
            (320e9..335e9).contains(&(bytes as f64)),
            "sony jukebox should be ~327 GB, got {bytes}"
        );
        assert!(jb.is_write_once());
    }

    #[test]
    fn worm_rejects_rewrite() {
        let mut jb = OpticalJukebox::new("jb", SimClock::new(), JukeboxProfile::tiny_for_tests());
        let buf = vec![1u8; jb.block_size()];
        jb.write_block(0, &buf).unwrap();
        assert!(matches!(
            jb.write_block(0, &buf),
            Err(DevError::WriteOnceViolation { blkno: 0 })
        ));
        // Reads still fine.
        let mut out = vec![0u8; jb.block_size()];
        jb.read_block(0, &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn platter_swap_dominates_cross_platter_access() {
        let clock = SimClock::new();
        let mut jb = OpticalJukebox::new("jb", clock.clone(), JukeboxProfile::tiny_for_tests());
        let buf = vec![0u8; jb.block_size()];
        jb.write_block(0, &buf).unwrap(); // mounts platter 0
        let t0 = clock.now();
        jb.write_block(1, &buf).unwrap(); // same platter
        let same = clock.now().since(t0);
        let t1 = clock.now();
        jb.write_block(64, &buf).unwrap(); // platter 1
        let cross = clock.now().since(t1);
        assert!(cross.as_nanos() > same.as_nanos() * 10);
        assert_eq!(jb.stats().swaps, 2);
    }

    #[test]
    fn metrum_capacity_is_about_nine_terabytes() {
        let tp = TapeJukebox::new("metrum", SimClock::new(), TapeProfile::metrum());
        let bytes = tp.nblocks() as f64 * tp.block_size() as f64;
        assert!((8.0e12..9.5e12).contains(&bytes), "got {bytes}");
    }

    #[test]
    fn tape_seek_cost_scales_with_distance() {
        let clock = SimClock::new();
        let mut tp = TapeJukebox::new("t", clock.clone(), TapeProfile::tiny_for_tests());
        let buf = vec![0u8; tp.block_size()];
        tp.write_block(0, &buf).unwrap(); // mount + position 0
        let t0 = clock.now();
        tp.write_block(1, &buf).unwrap(); // adjacent
        let near = clock.now().since(t0);
        let t1 = clock.now();
        tp.write_block(31, &buf).unwrap(); // far end of cartridge
        let far = clock.now().since(t1);
        assert!(far.as_nanos() > near.as_nanos());
    }

    #[test]
    fn tape_rewrite_allowed() {
        let mut tp = TapeJukebox::new("t", SimClock::new(), TapeProfile::tiny_for_tests());
        let buf = vec![1u8; tp.block_size()];
        tp.write_block(0, &buf).unwrap();
        tp.write_block(0, &buf).unwrap();
    }
}
