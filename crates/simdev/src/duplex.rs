//! An in-memory, full-duplex byte stream — the transport the concurrent
//! Inversion server listens on in tests and benchmarks.
//!
//! [`duplex_pair`] returns two connected [`DuplexStream`]s; bytes written to
//! one side become readable on the other, in order, through a bounded pipe
//! (so a fast writer blocks instead of buffering without limit — the same
//! backpressure a real socket send buffer applies). Both ends implement
//! `io::Read`/`io::Write`, are `Clone` (clones share the connection, like
//! `dup(2)` on a socket fd), and observe disconnects: reading from a pipe
//! whose writer hung up yields `Ok(0)` (EOF) once drained, and writing into
//! a pipe whose reader hung up fails with `BrokenPipe`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Default pipe capacity: one bulk segment plus framing headroom.
pub const PIPE_CAPACITY: usize = 64 * 1024;

struct PipeState {
    buf: VecDeque<u8>,
    /// The writing side has hung up; drain then EOF.
    write_closed: bool,
    /// The reading side has hung up; writes fail with `BrokenPipe`.
    read_closed: bool,
}

/// One direction of the connection.
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

impl Pipe {
    fn new(capacity: usize) -> Pipe {
        Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                write_closed: false,
                read_closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        }
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.state.lock();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for b in out.iter_mut().take(n) {
                    *b = st.buf.pop_front().unwrap_or(0);
                }
                self.writable.notify_all();
                return Ok(n);
            }
            if st.write_closed || st.read_closed {
                return Ok(0);
            }
            self.readable.wait(&mut st);
        }
    }

    fn write(&self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut st = self.state.lock();
        loop {
            if st.read_closed || st.write_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "peer disconnected",
                ));
            }
            let room = self.capacity.saturating_sub(st.buf.len());
            if room > 0 {
                let n = room.min(data.len());
                st.buf.extend(&data[..n]);
                self.readable.notify_all();
                return Ok(n);
            }
            self.writable.wait(&mut st);
        }
    }

    fn close_write(&self) {
        let mut st = self.state.lock();
        st.write_closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn close_read(&self) {
        let mut st = self.state.lock();
        st.read_closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

/// One end of an in-memory full-duplex connection.
///
/// Cloning yields another handle to the same end (shared offsets, like a
/// `dup`'d socket). Call [`DuplexStream::shutdown`] — or drop every clone of
/// this end — to disconnect: the peer then sees EOF on read and
/// `BrokenPipe` on write.
pub struct DuplexStream {
    /// Peer → us.
    rx: Arc<Pipe>,
    /// Us → peer.
    tx: Arc<Pipe>,
    /// Clone-count for this end, so only the last drop hangs up.
    liveness: Arc<()>,
}

/// Creates a connected pair of in-memory streams with the default
/// per-direction capacity ([`PIPE_CAPACITY`]).
pub fn duplex_pair() -> (DuplexStream, DuplexStream) {
    duplex_pair_with_capacity(PIPE_CAPACITY)
}

/// Creates a connected pair whose per-direction pipes hold at most
/// `capacity` bytes before writers block.
pub fn duplex_pair_with_capacity(capacity: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Arc::new(Pipe::new(capacity));
    let b_to_a = Arc::new(Pipe::new(capacity));
    let a = DuplexStream {
        rx: Arc::clone(&b_to_a),
        tx: Arc::clone(&a_to_b),
        liveness: Arc::new(()),
    };
    let b = DuplexStream {
        rx: a_to_b,
        tx: b_to_a,
        liveness: Arc::new(()),
    };
    (a, b)
}

impl DuplexStream {
    /// Disconnects this end: the peer's reads see EOF after draining, its
    /// writes fail with `BrokenPipe`, and any thread blocked on either pipe
    /// wakes up. Idempotent; affects every clone of this end.
    pub fn shutdown(&self) {
        self.tx.close_write();
        self.rx.close_read();
    }
}

impl Clone for DuplexStream {
    fn clone(&self) -> DuplexStream {
        DuplexStream {
            rx: Arc::clone(&self.rx),
            tx: Arc::clone(&self.tx),
            liveness: Arc::clone(&self.liveness),
        }
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        // Hang up only when the last clone of this end goes away: one
        // liveness Arc per clone, plus none held elsewhere.
        if Arc::strong_count(&self.liveness) == 1 {
            self.shutdown();
        }
    }
}

impl Read for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for DuplexStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for &DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for &DuplexStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bytes_cross_in_order_both_ways() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn bounded_pipe_applies_backpressure() {
        let (mut a, mut b) = duplex_pair_with_capacity(8);
        let writer = thread::spawn(move || {
            let data = [7u8; 64];
            a.write_all(&data).unwrap();
            64usize
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 16];
        while got.len() < 64 {
            let n = b.read(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(writer.join().unwrap(), 64);
        assert!(got.iter().all(|&x| x == 7));
    }

    #[test]
    fn drop_signals_eof_and_broken_pipe() {
        let (mut a, mut b) = duplex_pair();
        b.write_all(b"last").unwrap();
        drop(b);
        let mut buf = [0u8; 4];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"last");
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after peer hangs up");
        assert!(a.write_all(b"x").is_err(), "write to dropped peer fails");
    }

    #[test]
    fn shutdown_wakes_blocked_reader() {
        let (mut a, b) = duplex_pair();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 1];
            a.read(&mut buf).unwrap()
        });
        thread::sleep(std::time::Duration::from_millis(20));
        b.shutdown();
        assert_eq!(t.join().unwrap(), 0);
    }

    #[test]
    fn clones_share_the_connection() {
        let (mut a, mut b) = duplex_pair();
        let mut b2 = b.clone();
        a.write_all(b"xy").unwrap();
        let mut one = [0u8; 1];
        b.read_exact(&mut one).unwrap();
        assert_eq!(one[0], b'x');
        b2.read_exact(&mut one).unwrap();
        assert_eq!(one[0], b'y');
        drop(b);
        // The connection survives while a clone lives.
        a.write_all(b"z").unwrap();
        b2.read_exact(&mut one).unwrap();
        assert_eq!(one[0], b'z');
    }
}
