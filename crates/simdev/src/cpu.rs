//! Host CPU cost model.
//!
//! Profiling in the paper "reveals that extra work is done in allocating and
//! copying buffers in Inversion"; running benchmarks inside the data manager
//! wins precisely because "no data must be copied" between address spaces.
//! The simulated host therefore charges explicit costs for buffer copies and
//! system-call-ish crossings so those effects are visible in virtual time.

use crate::clock::{SimClock, SimDuration};

/// Per-call and per-byte CPU costs for a simulated 1993 host.
#[derive(Debug, Clone)]
pub struct CpuModel {
    clock: SimClock,
    /// Fixed cost of a call crossing (user/kernel or client-library entry).
    pub per_call: SimDuration,
    /// Cost per byte of a memory-to-memory copy.
    pub per_byte_copy: SimDuration,
}

impl CpuModel {
    /// A DECsystem 5900-class host: ~30 µs per crossing, ~25 ns/byte copy
    /// (≈40 MB/s memcpy).
    pub fn decsystem5900(clock: SimClock) -> Self {
        CpuModel {
            clock,
            per_call: SimDuration::from_micros(30),
            per_byte_copy: SimDuration::from_nanos(25),
        }
    }

    /// A model that charges nothing (for tests isolating other costs).
    pub fn free(clock: SimClock) -> Self {
        CpuModel {
            clock,
            per_call: SimDuration::ZERO,
            per_byte_copy: SimDuration::ZERO,
        }
    }

    /// Charges one call crossing.
    pub fn charge_call(&self) {
        self.clock.advance(self.per_call);
    }

    /// Charges a buffer copy of `bytes`.
    pub fn charge_copy(&self, bytes: usize) {
        self.clock.advance(SimDuration::from_nanos(
            self.per_byte_copy.as_nanos() * bytes as u64,
        ));
    }

    /// Charges an arbitrary duration of CPU work.
    pub fn charge(&self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// The clock this model charges against.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_cost_per_byte() {
        let clock = SimClock::new();
        let cpu = CpuModel::decsystem5900(clock.clone());
        cpu.charge_copy(1 << 20);
        // 1 MB at 25 ns/byte = ~26 ms.
        let ms = clock.now().since(crate::SimInstant::EPOCH).as_millis_f64();
        assert!((25.0..28.0).contains(&ms), "got {ms}ms");
    }

    #[test]
    fn calls_cost_fixed_overhead() {
        let clock = SimClock::new();
        let cpu = CpuModel::decsystem5900(clock.clone());
        for _ in 0..10 {
            cpu.charge_call();
        }
        assert_eq!(clock.now().as_nanos(), 10 * 30_000);
    }

    #[test]
    fn free_model_charges_nothing() {
        let clock = SimClock::new();
        let cpu = CpuModel::free(clock.clone());
        cpu.charge_call();
        cpu.charge_copy(1 << 30);
        assert_eq!(clock.now().as_nanos(), 0);
    }
}
