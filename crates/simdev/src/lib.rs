//! Simulated 1993-era storage and network devices.
//!
//! The Inversion paper's evaluation ran on a DECsystem 5900 with a DEC RZ58
//! magnetic disk, a Sony 327 GB WORM optical jukebox, a PRESTOserve NVRAM
//! board, and a 10 Mbit/s Ethernet carrying TCP/IP and NFS/UDP traffic. None
//! of that hardware is available, so this crate models it: every device
//! charges an analytically derived cost to a shared deterministic
//! [`SimClock`], while the *data path* is fully real (bytes actually move).
//!
//! Benchmarks built on these models reproduce the paper's performance *shape*
//! (who wins, by what factor, where crossovers fall) independent of the host
//! machine. See `DESIGN.md` at the repository root for the substitution
//! rationale.
//!
//! # Architecture
//!
//! * [`clock`] — virtual time: [`SimClock`], [`SimInstant`], [`SimDuration`].
//! * [`block`] — the [`BlockDevice`] trait and an in-memory backing store.
//! * [`disk`] — [`MagneticDisk`], a seek/rotate/transfer model of an RZ58.
//! * [`nvram`] — [`Nvram`], battery-backed RAM (PRESTOserve's board).
//! * [`jukebox`] — [`OpticalJukebox`], the Sony WORM autochanger with a
//!   magnetic-disk staging cache, and [`TapeJukebox`], the Metrum VHS robot.
//! * [`net`] — [`Network`] and [`Endpoint`], a latency/bandwidth/CPU model of
//!   Ethernet carrying either heavyweight TCP/IP or lighter NFS-style UDP RPC.
//! * [`cpu`] — per-byte and per-call CPU cost helpers (buffer copies were a
//!   measured Inversion overhead in the paper).
//! * [`fault`] — fault injection used by crash-recovery tests.
//! * [`writecache`] — [`WriteCacheDisk`], a volatile write-back cache wrapper
//!   whose [`CacheCrashHandle`] lets tests drop unsynced state ("power cut").
//!
//! # Example
//!
//! ```
//! use simdev::{SimClock, MagneticDisk, DiskProfile, BlockDevice};
//!
//! let clock = SimClock::new();
//! let mut disk = MagneticDisk::new("rz58", clock.clone(), DiskProfile::rz58());
//! let buf = vec![0xA5u8; disk.block_size()];
//! disk.write_block(10, &buf).unwrap();
//! let mut out = vec![0u8; disk.block_size()];
//! disk.read_block(10, &mut out).unwrap();
//! assert_eq!(buf, out);
//! assert!(clock.now().as_nanos() > 0, "I/O advanced simulated time");
//! ```

pub mod block;
pub mod clock;
pub mod cpu;
pub mod disk;
pub mod duplex;
pub mod error;
pub mod fault;
pub mod jukebox;
pub mod net;
pub mod nvram;
pub mod writecache;

pub use block::{BlockDevice, MemBlockStore};
pub use clock::{SimClock, SimDuration, SimInstant};
pub use cpu::CpuModel;
pub use disk::{DiskProfile, MagneticDisk};
pub use duplex::{duplex_pair, duplex_pair_with_capacity, DuplexStream};
pub use error::{DevError, DevResult};
pub use fault::FaultPlan;
pub use jukebox::{JukeboxProfile, OpticalJukebox, TapeJukebox, TapeProfile};
pub use net::{Endpoint, NetProfile, Network};
pub use nvram::Nvram;
pub use writecache::{CacheCrashHandle, WriteCacheDisk};

/// The page/block size shared by POSTGRES, Inversion, and the FFS baseline.
///
/// The paper: "a single record will fit exactly on a POSTGRES data manager
/// page. This page size was chosen early in the design of POSTGRES".
pub const BLOCK_SIZE: usize = 8192;
