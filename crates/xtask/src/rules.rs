//! The lint rules. Each rule takes scrubbed, test-blanked source (see
//! [`crate::scrub`]) and reports zero or more findings with 1-based line
//! numbers. String matching is safe here precisely because comment and
//! literal text has already been blanked out.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule name, e.g. `panic-budget`.
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos].iter().filter(|&&c| c == b'\n').count() + 1
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Finds every `needle` occurrence that is a whole identifier (not the tail
/// or head of a longer one), yielding byte offsets.
fn ident_matches<'a>(text: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let b = text.as_bytes();
    let n = needle.as_bytes();
    text.match_indices(needle).filter_map(move |(p, _)| {
        let before_ok = p == 0 || !is_ident(b[p - 1]);
        let after = p + n.len();
        let after_ok = after >= b.len() || !is_ident(b[after]);
        (before_ok && after_ok).then_some(p)
    })
}

/// Rule `panic-budget`: `.unwrap()`, `.expect(...)`, `panic!`, and
/// `unreachable!` sites in non-test code. The caller compares the count
/// against the checked-in per-file budget.
pub fn panic_sites(file: &str, text: &str) -> Vec<Violation> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    for method in ["unwrap", "expect"] {
        for p in ident_matches(text, method) {
            let called = b.get(p + method.len()) == Some(&b'(');
            let on_receiver = p > 0 && b[p - 1] == b'.';
            if called && on_receiver {
                out.push(Violation {
                    file: file.into(),
                    line: line_of(text, p),
                    rule: "panic-budget",
                    msg: format!(".{method}() in core code"),
                });
            }
        }
    }
    for mac in ["panic", "unreachable"] {
        for p in ident_matches(text, mac) {
            if b.get(p + mac.len()) == Some(&b'!') {
                out.push(Violation {
                    file: file.into(),
                    line: line_of(text, p),
                    rule: "panic-budget",
                    msg: format!("{mac}! in core code"),
                });
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Rule `relaxed-ordering`: `Relaxed` atomics are allowed only inside
/// `stats` modules, where counters are monotonic and approximate reads are
/// fine. Everywhere else they hide real synchronization bugs.
pub fn relaxed_sites(file: &str, text: &str) -> Vec<Violation> {
    if file.rsplit('/').next() == Some("stats.rs") || file.contains("/stats/") {
        return Vec::new();
    }
    ident_matches(text, "Relaxed")
        .map(|p| Violation {
            file: file.into(),
            line: line_of(text, p),
            rule: "relaxed-ordering",
            msg: "Ordering::Relaxed outside a stats module".into(),
        })
        .collect()
}

/// Rule `let-underscore`: `let _ = ...` silently discards a value — in core
/// paths that is almost always a dropped `Result`. Use `.ok()` (documented
/// intent) or handle the error.
pub fn let_underscore_sites(file: &str, text: &str) -> Vec<Violation> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    for p in ident_matches(text, "let") {
        let mut j = p + 3;
        while b.get(j).is_some_and(|c| c.is_ascii_whitespace()) {
            j += 1;
        }
        if b.get(j) != Some(&b'_') || b.get(j + 1).is_some_and(|&c| is_ident(c)) {
            continue;
        }
        j += 1;
        while b.get(j).is_some_and(|c| c.is_ascii_whitespace()) {
            j += 1;
        }
        if b.get(j) == Some(&b'=') && b.get(j + 1) != Some(&b'=') {
            out.push(Violation {
                file: file.into(),
                line: line_of(text, p),
                rule: "let-underscore",
                msg: "`let _ =` discards a value (use .ok() or handle it)".into(),
            });
        }
    }
    out
}

/// Rule `io-wait-guard`: in the device scheduler (`minidb/src/io.rs`),
/// every function that blocks on a completion condvar — `cv_done` for the
/// submission-side waits (throttle, barrier) and the read ticket's `cv`
/// for claims — must carry a `BUFFER_SHARD` guard assertion: waiting on
/// the worker while holding a buffer shard latch could deadlock the
/// eviction path. The worker's own `cv_worker` park is exempt; it holds
/// no latches by construction.
pub fn io_wait_guard_sites(file: &str, text: &str) -> Vec<Violation> {
    if !file.ends_with("minidb/src/io.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Chunk the file at function starts; the guard must appear in the
    // same function as the wait it protects.
    let starts: Vec<usize> = ident_matches(text, "fn").collect();
    for (i, &s) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(text.len());
        let body = &text[s..end];
        let waits = body.contains("cv_done.wait(") || body.contains(".cv.wait(");
        if waits && !body.contains("is_held(order::BUFFER_SHARD)") {
            out.push(Violation {
                file: file.into(),
                line: line_of(text, s),
                rule: "io-wait-guard",
                msg: "waits on the io queue without asserting no buffer \
                      shard latch is held"
                    .into(),
            });
        }
    }
    out
}

/// Rule `lock-order`: audits the declared lock-acquisition markers
/// (`lock::order::token(LEVEL)`) against the hierarchy exported by
/// `minidb::lock::order`. Tokens are live until their enclosing brace
/// closes; acquiring a level below a live one is a violation (equal levels
/// — sibling latches — are allowed). A site can be waived with a
/// `lock-order: exempt` comment on the same or the preceding line.
pub fn lock_order_sites(file: &str, text: &str, exempt_lines: &[usize]) -> Vec<Violation> {
    const NEEDLE: &str = "lock::order::token(";
    let b = text.as_bytes();
    let mut out = Vec::new();
    // Byte offset -> declared level, for every marker in the file.
    let mut sites = Vec::new();
    for (p, _) in text.match_indices(NEEDLE) {
        let arg_start = p + NEEDLE.len();
        let Some(rel_end) = b[arg_start..].iter().position(|&c| c == b')') else {
            continue;
        };
        let arg = text[arg_start..arg_start + rel_end].trim();
        let seg = arg.rsplit("::").next().unwrap_or(arg);
        match level_by_const(seg) {
            Some(level) => sites.push((p, level)),
            None => out.push(Violation {
                file: file.into(),
                line: line_of(text, p),
                rule: "lock-order",
                msg: format!("unknown lock level `{seg}`"),
            }),
        }
    }
    // Sweep the file once, tracking brace depth and the live token stack.
    let mut next = 0;
    let mut depth: usize = 0;
    let mut live: Vec<(usize, usize)> = Vec::new(); // (depth, level)
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                live.retain(|&(d, _)| d <= depth);
            }
            _ => {}
        }
        if next < sites.len() && sites[next].0 == i {
            let (_, level) = sites[next];
            next += 1;
            let line = line_of(text, i);
            let exempt = exempt_lines.contains(&line)
                || (line > 1 && exempt_lines.contains(&(line - 1)));
            if let Some(&(_, held)) = live.iter().max_by_key(|&&(_, l)| l) {
                if level < held && !exempt {
                    out.push(Violation {
                        file: file.into(),
                        line,
                        rule: "lock-order",
                        msg: format!(
                            "acquires `{}` (rank {level}) while `{}` (rank {held}) is held",
                            minidb::lock::order::HIERARCHY[level],
                            minidb::lock::order::HIERARCHY[held],
                        ),
                    });
                }
            }
            live.push((depth, level));
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Maps a const name (`HEAP_PAGE`) to its rank in the shared hierarchy.
fn level_by_const(name: &str) -> Option<usize> {
    minidb::lock::order::HIERARCHY
        .iter()
        .position(|h| h.to_uppercase().replace('-', "_") == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::{blank_tests, scrub};

    fn clean(src: &str) -> String {
        blank_tests(&scrub(src))
    }

    #[test]
    fn counts_unwrap_but_not_unwrap_or() {
        let src = "fn f() { a.unwrap(); b.unwrap_or(0); c.unwrap_or_else(|| 0); }";
        let v = panic_sites("x.rs", &clean(src));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn counts_expect_but_not_expect_err() {
        let src = "fn f() { a.expect(msg); b.expect_err(msg); }";
        assert_eq!(panic_sites("x.rs", &clean(src)).len(), 1);
    }

    #[test]
    fn counts_macros_not_prose() {
        let src = "fn f() { panic!(); unreachable!() } // panic! in a comment\n";
        assert_eq!(panic_sites("x.rs", &clean(src)).len(), 2);
    }

    #[test]
    fn test_code_is_free() {
        let src = "#[cfg(test)]\nmod t { fn f() { a.unwrap(); panic!(); } }\n";
        assert!(panic_sites("x.rs", &clean(src)).is_empty());
    }

    #[test]
    fn relaxed_allowed_only_in_stats() {
        let src = "fn f() { c.load(Ordering::Relaxed); }";
        assert_eq!(relaxed_sites("crates/minidb/src/page.rs", &clean(src)).len(), 1);
        assert!(relaxed_sites("crates/minidb/src/stats.rs", &clean(src)).is_empty());
    }

    #[test]
    fn let_underscore_flagged_but_named_discards_ok() {
        let src = "fn f() { let _ = g(); let _keep = g(); let x = g(); }";
        let v = let_underscore_sites("x.rs", &clean(src));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn lock_order_allows_increasing_and_flags_decreasing() {
        let good = "fn f() { let _o = lock::order::token(lock::order::HEAP_PAGE); { let _p = lock::order::token(lock::order::BUFFER_SHARD); } }";
        assert!(lock_order_sites("x.rs", &clean(good), &[]).is_empty());
        let bad = "fn f() { let _o = lock::order::token(lock::order::BUFFER_SHARD); let _p = lock::order::token(lock::order::HEAP_PAGE); }";
        assert_eq!(lock_order_sites("x.rs", &clean(bad), &[]).len(), 1);
    }

    #[test]
    fn lock_order_scope_exit_releases() {
        let src = "fn f() { { let _o = lock::order::token(lock::order::BUFFER_SHARD); } let _p = lock::order::token(lock::order::HEAP_PAGE); }";
        assert!(lock_order_sites("x.rs", &clean(src), &[]).is_empty());
    }

    #[test]
    fn lock_order_exempt_marker() {
        let src = "fn f() { let _o = lock::order::token(lock::order::BUFFER_SHARD);\n// lock-order: exempt (test)\nlet _p = lock::order::token(lock::order::HEAP_PAGE); }";
        // Marker lines are collected from the raw source by the caller.
        assert!(lock_order_sites("x.rs", &clean(src), &[2]).is_empty());
    }

    #[test]
    fn sibling_same_level_allowed() {
        let src = "fn f() { let _o = lock::order::token(lock::order::BTREE_PAGE); let _p = lock::order::token(lock::order::BTREE_PAGE); }";
        assert!(lock_order_sites("x.rs", &clean(src), &[]).is_empty());
    }

    #[test]
    fn io_wait_guard_requires_the_shard_assert() {
        let bad = "fn wait(&self) { self.cv_done.wait(&mut st); }";
        let v = io_wait_guard_sites("crates/minidb/src/io.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "io-wait-guard");
        let good = "fn wait(&self) { debug_assert!(!order::is_held(order::BUFFER_SHARD)); self.cv_done.wait(&mut st); }";
        assert!(io_wait_guard_sites("crates/minidb/src/io.rs", good).is_empty());
    }

    #[test]
    fn io_wait_guard_exempts_the_worker_park_and_other_files() {
        let worker = "fn run(&self) { self.cv_worker.wait(&mut st); }";
        assert!(io_wait_guard_sites("crates/minidb/src/io.rs", worker).is_empty());
        let other = "fn f(&self) { self.cv_done.wait(&mut st); }";
        assert!(io_wait_guard_sites("crates/minidb/src/wal.rs", other).is_empty());
    }
}
