//! Source scrubbing: reduce a Rust file to just the tokens the lint rules
//! care about, without pulling in a real parser (the build environment is
//! offline, so no `syn`).
//!
//! [`scrub`] replaces the *contents* of comments, string literals, and char
//! literals with spaces, preserving every newline and byte offset, so later
//! passes can string-match for `.unwrap(` or `panic!` without tripping on
//! doc-comment prose or log-message text. [`blank_tests`] then erases the
//! bodies of `#[cfg(test)]` modules and `#[test]` functions, because the
//! rules only govern non-test core code.

/// Replaces comment and literal interiors with spaces (newlines kept).
///
/// Handles line comments, nested block comments, plain/byte strings with
/// escapes, raw strings with any number of `#`s, char and byte-char
/// literals, and the char-vs-lifetime ambiguity (`'a'` scrubs, `<'a>`
/// survives).
pub fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, bytes: &[u8]| {
        for &c in bytes {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let end = memchr(b, i, b'\n').unwrap_or(b.len());
            blank(&mut out, &b[i..end]);
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, &b[i..j]);
            i = j;
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."# — only when `r`/`br` is
        // not the tail of a longer identifier.
        if (c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')))
            && !prev_is_ident(b, i)
        {
            let after_r = if c == b'b' { i + 2 } else { i + 1 };
            let mut hashes = 0;
            while b.get(after_r + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if b.get(after_r + hashes) == Some(&b'"') {
                let mut j = after_r + hashes + 1;
                while j < b.len() {
                    if b[j] == b'"' && b[j + 1..].starts_with(&vec![b'#'; hashes]) {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                blank(&mut out, &b[i..j.min(b.len())]);
                i = j.min(b.len());
                continue;
            }
        }
        // Plain or byte string.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"') && !prev_is_ident(b, i)) {
            let mut j = if c == b'b' { i + 2 } else { i + 1 };
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            blank(&mut out, &b[i..j.min(b.len())]);
            i = j.min(b.len());
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let j = match b.get(i + 1) {
                // Escape: scan to the closing quote.
                Some(b'\\') => {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += if b[j] == b'\\' { 2 } else { 1 };
                    }
                    Some((j + 1).min(b.len()))
                }
                // 'x' with an immediate closing quote is a char literal;
                // anything else ('a in <'a>, 'static) is a lifetime.
                Some(_) if b.get(i + 2) == Some(&b'\'') => Some(i + 3),
                _ => None,
            };
            if let Some(j) = j {
                blank(&mut out, &b[i..j]);
                i = j;
                continue;
            }
            // Lifetime: keep the quote, move on.
            out.push(c);
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Erases the bodies of `#[cfg(test)]` items and `#[test]` functions from
/// *scrubbed* source (brace matching is only safe once strings are gone).
/// Newlines are preserved so line numbers keep meaning.
pub fn blank_tests(scrubbed: &str) -> String {
    let mut s = scrubbed.as_bytes().to_vec();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(rel) = find_sub(&s, from, marker.as_bytes()) {
            let attr = rel;
            // Walk past this attribute and any that follow to the item's
            // opening brace.
            let mut j = attr + marker.len();
            let mut opened = None;
            while j < s.len() {
                match s[j] {
                    b'{' => {
                        opened = Some(j);
                        break;
                    }
                    b';' => break, // e.g. `#[cfg(test)] mod t;` — nothing inline.
                    _ => j += 1,
                }
            }
            let Some(open) = opened else {
                from = attr + marker.len();
                continue;
            };
            let mut depth = 0;
            let mut k = open;
            while k < s.len() {
                match s[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = k.min(s.len() - 1);
            for c in &mut s[attr..=end] {
                if *c != b'\n' {
                    *c = b' ';
                }
            }
            from = end + 1;
        }
    }
    String::from_utf8_lossy(&s).into_owned()
}

fn memchr(b: &[u8], from: usize, needle: u8) -> Option<usize> {
    b[from..].iter().position(|&c| c == needle).map(|p| from + p)
}

fn find_sub(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let x = \"unwrap()\"; // .unwrap() here\nlet y = 1; /* panic! */";
        let s = scrub(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains("let x ="));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let src = "let r = r#\"panic!(\"no\")\"#; let c = '\\''; let l: &'static str;";
        let s = scrub(src);
        assert!(!s.contains("panic"));
        assert!(s.contains("'static"));
    }

    #[test]
    fn scrub_keeps_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
    }

    #[test]
    fn scrub_nested_block_comment() {
        let s = scrub("a /* x /* unwrap() */ y */ b");
        assert!(!s.contains("unwrap"));
        assert!(s.starts_with("a "));
        assert!(s.ends_with(" b"));
    }

    #[test]
    fn blank_tests_erases_test_mod_bodies() {
        let src = "fn core() { x.unwrap(); }\n#[cfg(test)]\nmod t {\n    fn h() { y.unwrap(); }\n}\n";
        let out = blank_tests(&scrub(src));
        assert_eq!(out.matches(".unwrap(").count(), 1);
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn blank_tests_erases_test_fns() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn core() {}\n";
        let out = blank_tests(&scrub(src));
        assert!(!out.contains("unwrap"));
        assert!(out.contains("fn core"));
    }
}
