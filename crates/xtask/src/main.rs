//! Repo maintenance tasks, amcheck's source-level sibling: `cargo run -p
//! xtask -- lint` statically audits the core crates the way
//! `minidb::check` audits the on-disk structures.
//!
//! The linter works on scrubbed source text (no external parser — the
//! build environment is offline) and enforces, over `crates/minidb` and
//! `crates/inversion` non-test code:
//!
//! * `panic-budget` — `.unwrap()` / `.expect()` / `panic!` /
//!   `unreachable!` sites may never exceed the per-file budget checked in
//!   at `crates/xtask/lint-budget.toml`. The budget only ratchets down:
//!   `--update-budget` records lower counts and refuses to raise one.
//! * `relaxed-ordering` — `Ordering::Relaxed` only in `stats` modules.
//! * `let-underscore` — no `let _ =` discarding a value in core paths.
//! * `lock-order` — `lock::order::token(...)` markers must acquire levels
//!   in the hierarchy order exported by `minidb::lock::order` (the same
//!   table the debug-build runtime assertions use).
//! * `io-wait-guard` — the device scheduler's submission-side waits must
//!   assert that no buffer shard latch is held across them.

mod rules;
mod scrub;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The crates the lint governs, relative to the repo root.
const LINT_ROOTS: &[&str] = &["crates/minidb/src", "crates/inversion/src"];

/// Repo-relative location of the ratchet budget.
const BUDGET_PATH: &str = "crates/xtask/lint-budget.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-budget");
            lint(update)
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--update-budget]");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn lint(update_budget: bool) -> ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    for r in LINT_ROOTS {
        collect_rs(&root.join(r), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut panic_counts: BTreeMap<String, (usize, Vec<rules::Violation>)> = BTreeMap::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("xtask: cannot read {}", path.display());
            return ExitCode::FAILURE;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // Exempt markers live in comments, so collect them before scrubbing.
        let exempt: Vec<usize> = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("lock-order: exempt"))
            .map(|(i, _)| i + 1)
            .collect();
        let cleaned = scrub::blank_tests(&scrub::scrub(&src));
        let sites = rules::panic_sites(&rel, &cleaned);
        panic_counts.insert(rel.clone(), (sites.len(), sites));
        violations.extend(rules::relaxed_sites(&rel, &cleaned));
        violations.extend(rules::let_underscore_sites(&rel, &cleaned));
        violations.extend(rules::lock_order_sites(&rel, &cleaned, &exempt));
        violations.extend(rules::io_wait_guard_sites(&rel, &cleaned));
    }

    let budget_file = root.join(BUDGET_PATH);
    let budget = match load_budget(&budget_file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask: bad budget file {BUDGET_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if update_budget {
        return write_budget(&budget_file, &budget, &panic_counts);
    }

    let mut over = 0;
    for (file, (count, sites)) in &panic_counts {
        let allowed = budget.get(file).copied().unwrap_or(0);
        if *count > allowed {
            over += 1;
            eprintln!(
                "{file}: {count} panic-budget site(s), budget is {allowed}:"
            );
            for v in sites {
                eprintln!("  {v}");
            }
        } else if *count < allowed {
            eprintln!(
                "note: {file} is under budget ({count} < {allowed}); \
                 run `cargo run -p xtask -- lint --update-budget` to ratchet down"
            );
        }
    }
    for v in &violations {
        eprintln!("{v}");
    }

    if over > 0 || !violations.is_empty() {
        eprintln!(
            "xtask lint: FAILED ({} file(s) over panic budget, {} other violation(s))",
            over,
            violations.len()
        );
        ExitCode::FAILURE
    } else {
        println!("xtask lint: OK ({} files)", files.len());
        ExitCode::SUCCESS
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Parses the budget file: `"repo/relative/path.rs" = N` lines, `#`
/// comments. A missing file is an empty budget (everything must be clean).
fn load_budget(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(out);
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(format!("line {}: expected `\"path\" = count`", i + 1));
        };
        let key = key.trim().trim_matches('"').to_string();
        let val: usize = val
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad count: {e}", i + 1))?;
        out.insert(key, val);
    }
    Ok(out)
}

/// Rewrites the budget from current counts. Lowering is the point;
/// raising is refused — fix the code instead.
fn write_budget(
    path: &Path,
    old: &BTreeMap<String, usize>,
    counts: &BTreeMap<String, (usize, Vec<rules::Violation>)>,
) -> ExitCode {
    for (file, (count, _)) in counts {
        let allowed = old.get(file).copied().unwrap_or(0);
        if *count > allowed && !old.is_empty() {
            eprintln!(
                "xtask: refusing to raise {file} budget {allowed} -> {count}; \
                 the budget only ratchets down — remove the new sites instead"
            );
            return ExitCode::FAILURE;
        }
    }
    let mut text = String::from(
        "# Panic-budget ratchet (see crates/xtask): per-file allowance of\n\
         # .unwrap()/.expect()/panic!/unreachable! sites in non-test code.\n\
         # Regenerate with `cargo run -p xtask -- lint --update-budget`;\n\
         # counts may only go down.\n",
    );
    for (file, (count, _)) in counts {
        if *count > 0 {
            text.push_str(&format!("\"{file}\" = {count}\n"));
        }
    }
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("xtask: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("xtask: budget written to {}", path.display());
    ExitCode::SUCCESS
}
