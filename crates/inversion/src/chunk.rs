//! File-to-chunk decomposition and write coalescing.
//!
//! "Files, generally viewed by users as byte streams, are stored ... as a
//! series of data blocks. The Inversion file system similarly 'chunks' user
//! data. File data are collected into chunks slightly smaller than 8 KBytes.
//! The size of the chunk is calculated so that a single record will fit
//! exactly on a POSTGRES data manager page." And: "Multiple small sequential
//! writes during a single transaction are coalesced to maximize the size of
//! the chunk stored in each database record."

/// Bytes of user data per chunk.
///
/// A chunk record is `(chunkno int4, data bytes)` plus the tuple header; on
/// an 8192-byte page with our encodings the record could hold up to 8156
/// data bytes. The paper reserves room in the file tables for
/// self-identifying blocks ("space has been reserved in the tables storing
/// file data for this purpose"), so we hold back a little: 8128 bytes per
/// chunk, one record per page. With 31-bit chunk numbers this bounds files
/// at 2^31 x 8128 bytes ≈ 17.5 TB — the paper's "17.6 TBytes".
pub const CHUNK_SIZE: usize = 8128;

/// The chunk containing byte `offset`.
pub fn chunk_of(offset: u64) -> u32 {
    (offset / CHUNK_SIZE as u64) as u32
}

/// Byte offset within its chunk.
pub fn offset_in_chunk(offset: u64) -> usize {
    (offset % CHUNK_SIZE as u64) as usize
}

/// The first byte offset of chunk `chunkno`.
pub fn chunk_start(chunkno: u32) -> u64 {
    chunkno as u64 * CHUNK_SIZE as u64
}

/// Splits the byte range `[offset, offset + len)` into per-chunk
/// `(chunkno, start_within_chunk, len_within_chunk)` pieces, in order.
pub fn split_range(offset: u64, len: usize) -> Vec<(u32, usize, usize)> {
    let mut out = Vec::new();
    let mut pos = offset;
    let end = offset + len as u64;
    while pos < end {
        let c = chunk_of(pos);
        let in_chunk = offset_in_chunk(pos);
        let take = ((CHUNK_SIZE - in_chunk) as u64).min(end - pos) as usize;
        out.push((c, in_chunk, take));
        pos += take as u64;
    }
    out
}

/// A per-file-descriptor buffer that coalesces sequential writes within a
/// transaction into whole chunks before they hit the database.
#[derive(Debug, Default)]
pub struct Coalescer {
    /// Chunk currently being accumulated.
    chunkno: u32,
    /// Start offset of valid data within the chunk.
    start: usize,
    /// Buffered bytes (positioned at `start` within the chunk).
    buf: Vec<u8>,
    /// Whether the buffer holds anything.
    active: bool,
}

impl Coalescer {
    /// Creates an empty coalescer.
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// Whether data is buffered.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The buffered region as `(chunkno, start, bytes)`, if any.
    pub fn pending(&self) -> Option<(u32, usize, &[u8])> {
        if self.active {
            Some((self.chunkno, self.start, &self.buf))
        } else {
            None
        }
    }

    /// Offers a write at absolute file `offset`. Returns the number of bytes
    /// absorbed into the buffer (0 if the write is not sequential with the
    /// buffered data or belongs to a different chunk — the caller must flush
    /// and retry).
    pub fn absorb(&mut self, offset: u64, data: &[u8]) -> usize {
        if data.is_empty() {
            return 0;
        }
        let c = chunk_of(offset);
        let in_chunk = offset_in_chunk(offset);
        if !self.active {
            self.chunkno = c;
            self.start = in_chunk;
            self.buf.clear();
            let take = (CHUNK_SIZE - in_chunk).min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            self.active = true;
            return take;
        }
        // Sequential continuation within the same chunk?
        if c == self.chunkno && in_chunk == self.start + self.buf.len() {
            let take = (CHUNK_SIZE - in_chunk).min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            return take;
        }
        0
    }

    /// Whether a read/seek at `offset` overlaps the buffered region (the
    /// caller must flush first so the reader sees its own writes).
    pub fn overlaps(&self, offset: u64, len: usize) -> bool {
        if !self.active {
            return false;
        }
        let buf_start = chunk_start(self.chunkno) + self.start as u64;
        let buf_end = buf_start + self.buf.len() as u64;
        let end = offset + len as u64;
        offset < buf_end && buf_start < end
    }

    /// Takes the buffered region, leaving the coalescer empty.
    pub fn take(&mut self) -> Option<(u32, usize, Vec<u8>)> {
        if !self.active {
            return None;
        }
        self.active = false;
        Some((self.chunkno, self.start, std::mem::take(&mut self.buf)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_math() {
        assert_eq!(chunk_of(0), 0);
        assert_eq!(chunk_of(CHUNK_SIZE as u64 - 1), 0);
        assert_eq!(chunk_of(CHUNK_SIZE as u64), 1);
        assert_eq!(offset_in_chunk(CHUNK_SIZE as u64 + 5), 5);
        assert_eq!(chunk_start(3), 3 * CHUNK_SIZE as u64);
    }

    #[test]
    fn seventeen_terabyte_limit() {
        let max_bytes = (i32::MAX as u64 + 1) * CHUNK_SIZE as u64;
        let tb = max_bytes as f64 / 1e12;
        assert!((17.0..18.0).contains(&tb), "file size limit {tb} TB");
    }

    #[test]
    fn split_range_within_one_chunk() {
        assert_eq!(split_range(10, 20), vec![(0, 10, 20)]);
        assert_eq!(split_range(0, CHUNK_SIZE), vec![(0, 0, CHUNK_SIZE)]);
    }

    #[test]
    fn split_range_spanning_chunks() {
        let cs = CHUNK_SIZE as u64;
        let parts = split_range(cs - 10, 30);
        assert_eq!(parts, vec![(0, CHUNK_SIZE - 10, 10), (1, 0, 20)]);
        let parts = split_range(cs, 2 * CHUNK_SIZE + 7);
        assert_eq!(
            parts,
            vec![(1, 0, CHUNK_SIZE), (2, 0, CHUNK_SIZE), (3, 0, 7)]
        );
        // Total length is preserved.
        assert_eq!(parts.iter().map(|p| p.2).sum::<usize>(), 2 * CHUNK_SIZE + 7);
    }

    #[test]
    fn split_range_empty() {
        assert!(split_range(100, 0).is_empty());
    }

    #[test]
    fn coalescer_absorbs_sequential_writes() {
        let mut c = Coalescer::new();
        assert_eq!(c.absorb(0, b"hello"), 5);
        assert_eq!(c.absorb(5, b" world"), 6);
        let (chunk, start, buf) = c.take().unwrap();
        assert_eq!((chunk, start), (0, 0));
        assert_eq!(buf, b"hello world");
        assert!(!c.is_active());
        assert!(c.take().is_none());
    }

    #[test]
    fn coalescer_rejects_non_sequential() {
        let mut c = Coalescer::new();
        c.absorb(0, b"aaa");
        assert_eq!(c.absorb(10, b"bbb"), 0, "gap");
        assert_eq!(c.absorb(1, b"bbb"), 0, "overlap");
        // Still holds the original.
        assert_eq!(c.pending().unwrap().2, b"aaa");
    }

    #[test]
    fn coalescer_stops_at_chunk_boundary() {
        let mut c = Coalescer::new();
        let big = vec![7u8; CHUNK_SIZE + 100];
        let absorbed = c.absorb(0, &big);
        assert_eq!(absorbed, CHUNK_SIZE);
        let (_, _, buf) = c.take().unwrap();
        assert_eq!(buf.len(), CHUNK_SIZE);
        // The tail starts a new chunk.
        let absorbed = c.absorb(CHUNK_SIZE as u64, &big[CHUNK_SIZE..]);
        assert_eq!(absorbed, 100);
        assert_eq!(c.pending().unwrap().0, 1);
    }

    #[test]
    fn coalescer_mid_chunk_start() {
        let mut c = Coalescer::new();
        let off = CHUNK_SIZE as u64 * 2 + 100;
        assert_eq!(c.absorb(off, b"xyz"), 3);
        let (chunk, start, buf) = c.take().unwrap();
        assert_eq!((chunk, start), (2, 100));
        assert_eq!(buf, b"xyz");
    }

    #[test]
    fn overlap_detection() {
        let mut c = Coalescer::new();
        c.absorb(100, b"0123456789");
        assert!(c.overlaps(100, 1));
        assert!(c.overlaps(109, 5));
        assert!(c.overlaps(95, 6));
        assert!(!c.overlaps(95, 5));
        assert!(!c.overlaps(110, 10));
        assert!(!Coalescer::new().overlaps(0, usize::MAX));
    }
}
