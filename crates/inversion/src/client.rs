//! The remote client: the paper's "special library" linked by applications.
//!
//! "The current implementation requires programmers to link a special
//! library in order to access Inversion file data. ... Client/server
//! communication was via TCP/IP over a 10 Mbit/sec Ethernet" — and the
//! evaluation concludes that "the client/server communication protocol used
//! by the file system is much too heavy-weight".
//!
//! [`RemoteClient`] reproduces that cost structure: every call pays the
//! TCP/IP per-message and per-byte charges on the simulated network, bulk
//! data moves in 8 KB protocol segments, and buffer copies on both hosts are
//! charged to the CPU model ("profiling reveals that extra work is done in
//! allocating and copying buffers in Inversion"). The actual execution then
//! happens in the server ([`crate::InvServer`]), charging real device time
//! on the same simulated clock.

use minidb::Oid;
use simdev::{CpuModel, Endpoint, SimInstant};

use crate::api::{Fd, OpenMode, SeekWhence};
use crate::fs::{CreateMode, FileStat, InvError, InvResult, InversionFs};
use crate::server::{InvServer, Request, Response};

/// Protocol segment size for bulk data (one data page per message).
pub const SEGMENT: usize = 8192;

/// A client talking to an Inversion server across the simulated network.
pub struct RemoteClient {
    server: InvServer,
    ep: Endpoint,
    cpu: CpuModel,
}

impl RemoteClient {
    /// Connects a remote client: `ep` models the transport (TCP for the
    /// paper's configuration), `cpu` the client host.
    pub fn connect(fs: &InversionFs, ep: Endpoint, cpu: CpuModel) -> RemoteClient {
        RemoteClient {
            server: InvServer::new(fs),
            ep,
            cpu,
        }
    }

    /// Network endpoint statistics.
    pub fn net_stats(&self) -> simdev::net::EndpointStats {
        self.ep.stats()
    }

    fn call(&mut self, req: Request) -> InvResult<Response> {
        // Library entry + marshalling.
        self.cpu.charge_call();
        let req_size = req.wire_size();
        let resp = self.server.handle(req)?;
        let resp_size = resp.wire_size();
        self.ep.rpc(req_size, resp_size);
        Ok(resp)
    }

    fn bad(what: &str, got: Response) -> InvError {
        InvError::Invalid(format!("protocol error: expected {what}, got {got:?}"))
    }

    /// Remote `p_begin`.
    pub fn p_begin(&mut self) -> InvResult<()> {
        self.call(Request::Begin).map(|_| ())
    }

    /// Remote `p_commit`.
    pub fn p_commit(&mut self) -> InvResult<()> {
        self.call(Request::Commit).map(|_| ())
    }

    /// Remote `p_abort`.
    pub fn p_abort(&mut self) -> InvResult<()> {
        self.call(Request::Abort).map(|_| ())
    }

    /// Remote `p_creat`.
    pub fn p_creat(&mut self, path: &str, mode: CreateMode) -> InvResult<Fd> {
        match self.call(Request::Creat(path.into(), mode))? {
            Response::Fd(fd) => Ok(fd),
            other => Err(Self::bad("fd", other)),
        }
    }

    /// Remote `p_open`.
    pub fn p_open(
        &mut self,
        path: &str,
        mode: OpenMode,
        timestamp: Option<SimInstant>,
    ) -> InvResult<Fd> {
        match self.call(Request::Open(path.into(), mode, timestamp))? {
            Response::Fd(fd) => Ok(fd),
            other => Err(Self::bad("fd", other)),
        }
    }

    /// Remote `p_close`.
    pub fn p_close(&mut self, fd: Fd) -> InvResult<()> {
        self.call(Request::Close(fd)).map(|_| ())
    }

    /// Remote `p_read`: bulk data returns in [`SEGMENT`]-sized protocol
    /// messages, each paying network and copy costs.
    pub fn p_read(&mut self, fd: Fd, buf: &mut [u8]) -> InvResult<usize> {
        self.cpu.charge_call();
        let mut done = 0usize;
        while done < buf.len() {
            let want = (buf.len() - done).min(SEGMENT);
            // Server executes (device time accrues)...
            let resp = self.server.handle(Request::Read(fd, want))?;
            let Response::Data(data) = resp else {
                return Err(Self::bad("data", resp));
            };
            // ...then the segment crosses the wire...
            self.ep
                .rpc(Request::Read(fd, want).wire_size(), 40 + data.len());
            // ...and is copied server-side into the message and client-side
            // into the user buffer.
            self.cpu.charge_copy(data.len());
            self.cpu.charge_copy(data.len());
            buf[done..done + data.len()].copy_from_slice(&data);
            done += data.len();
            if data.len() < want {
                break; // Short read: end of file.
            }
        }
        Ok(done)
    }

    /// Remote `p_write`: bulk data ships in [`SEGMENT`]-sized messages.
    pub fn p_write(&mut self, fd: Fd, data: &[u8]) -> InvResult<usize> {
        self.cpu.charge_call();
        let mut done = 0usize;
        while done < data.len() {
            let take = (data.len() - done).min(SEGMENT);
            let seg = data[done..done + take].to_vec();
            // Client-side copy into the message, wire, server-side copy out.
            self.cpu.charge_copy(take);
            self.ep.rpc(40 + take + 12, 48);
            self.cpu.charge_copy(take);
            let resp = self.server.handle(Request::Write(fd, seg))?;
            let Response::Count(n) = resp else {
                return Err(Self::bad("count", resp));
            };
            done += n as usize;
        }
        Ok(done)
    }

    /// Remote `p_lseek`.
    pub fn p_lseek(&mut self, fd: Fd, offset: i64, whence: SeekWhence) -> InvResult<u64> {
        match self.call(Request::Lseek(fd, offset, whence))? {
            Response::Count(o) => Ok(o),
            other => Err(Self::bad("offset", other)),
        }
    }

    /// Remote `p_stat`.
    pub fn p_stat(&mut self, path: &str) -> InvResult<FileStat> {
        match self.call(Request::Stat(path.into()))? {
            Response::Stat(s) => Ok(*s),
            other => Err(Self::bad("stat", other)),
        }
    }

    /// Remote `p_mkdir`.
    pub fn p_mkdir(&mut self, path: &str) -> InvResult<()> {
        self.call(Request::Mkdir(path.into())).map(|_| ())
    }

    /// Remote `p_unlink`.
    pub fn p_unlink(&mut self, path: &str) -> InvResult<()> {
        self.call(Request::Unlink(path.into())).map(|_| ())
    }

    /// Remote `p_readdir`.
    pub fn p_readdir(&mut self, path: &str) -> InvResult<Vec<(String, Oid)>> {
        match self.call(Request::Readdir(path.into()))? {
            Response::Entries(e) => Ok(e),
            other => Err(Self::bad("entries", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{NetProfile, Network, SimClock};

    fn remote_fs() -> (SimClock, InversionFs, RemoteClient) {
        let fs = InversionFs::open_in_memory().unwrap();
        let clock = fs.db().clock().clone();
        let net = Network::ethernet_10mbit(clock.clone());
        let ep = Endpoint::new(net, NetProfile::tcp_1993());
        let cpu = CpuModel::decsystem5900(clock.clone());
        let rc = RemoteClient::connect(&fs, ep, cpu);
        (clock, fs, rc)
    }

    #[test]
    fn remote_roundtrip() {
        let (_clock, _fs, mut rc) = remote_fs();
        rc.p_begin().unwrap();
        let fd = rc.p_creat("/remote.dat", CreateMode::default()).unwrap();
        let data: Vec<u8> = (0..20_000).map(|i| (i % 101) as u8).collect();
        assert_eq!(rc.p_write(fd, &data).unwrap(), data.len());
        rc.p_lseek(fd, 0, SeekWhence::Set).unwrap();
        let mut buf = vec![0u8; data.len()];
        assert_eq!(rc.p_read(fd, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
        rc.p_close(fd).unwrap();
        rc.p_commit().unwrap();
        assert_eq!(rc.p_stat("/remote.dat").unwrap().size as usize, data.len());
    }

    #[test]
    fn network_time_is_charged() {
        let (clock, _fs, mut rc) = remote_fs();
        rc.p_begin().unwrap();
        let fd = rc.p_creat("/t", CreateMode::default()).unwrap();
        let t0 = clock.now();
        let megabyte = vec![7u8; 1 << 20];
        rc.p_write(fd, &megabyte).unwrap();
        let took = clock.now().since(t0).as_secs_f64();
        // 1 MB over 10 Mbit/s TCP with copies: well over the raw 0.84 s
        // wire time, well under a minute.
        assert!(took > 0.9, "took {took}s");
        assert!(took < 60.0, "took {took}s");
        rc.p_close(fd).unwrap();
        rc.p_commit().unwrap();
        assert!(rc.net_stats().rpcs >= 128);
    }

    #[test]
    fn remote_and_local_clients_share_files() {
        let (_clock, fs, mut rc) = remote_fs();
        rc.p_begin().unwrap();
        let fd = rc.p_creat("/shared", CreateMode::default()).unwrap();
        rc.p_write(fd, b"from the network").unwrap();
        rc.p_close(fd).unwrap();
        rc.p_commit().unwrap();

        let mut local = fs.client();
        assert_eq!(
            local.read_to_vec("/shared", None).unwrap(),
            b"from the network"
        );
    }

    #[test]
    fn remote_errors_propagate() {
        let (_clock, _fs, mut rc) = remote_fs();
        assert!(rc.p_stat("/missing").is_err());
        assert!(rc.p_close(99).is_err());
    }

    #[test]
    fn remote_dir_ops() {
        let (_clock, _fs, mut rc) = remote_fs();
        rc.p_mkdir("/d").unwrap();
        rc.p_begin().unwrap();
        let fd = rc.p_creat("/d/f", CreateMode::default()).unwrap();
        rc.p_close(fd).unwrap();
        rc.p_commit().unwrap();
        let names: Vec<String> = rc
            .p_readdir("/d")
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["f"]);
        rc.p_unlink("/d/f").unwrap();
        assert!(rc.p_readdir("/d").unwrap().is_empty());
    }
}
