//! The Inversion file system.
//!
//! A from-scratch reproduction of *The Design and Implementation of the
//! Inversion File System* (Michael A. Olson, USENIX Winter 1993). Inversion
//! is a file system built **on top of a database system**: files are
//! decomposed into chunks stored as records in per-file database tables, the
//! namespace and per-file attributes are ordinary tables, and every service
//! the paper advertises falls out of the storage manager underneath
//! ([`minidb`], our POSTGRES 4.0.1 stand-in):
//!
//! * transaction protection for file data *and* metadata
//!   ([`InvClient::p_begin`] / [`InvClient::p_commit`] / [`InvClient::p_abort`]);
//! * fine-grained **time travel** — [`InvClient::p_open`] takes a timestamp
//!   and opens the file exactly as it was at that instant;
//! * essentially instantaneous crash recovery (no fsck — reopening the
//!   database *is* recovery);
//! * location-transparent storage across magnetic disk, NVRAM, a WORM
//!   optical jukebox, and tape via the device manager switch;
//! * typed files with user-defined functions runnable *inside* the data
//!   manager and callable from the query language ([`types`]);
//! * 17.6 TB files (32-bit chunk numbers x ~8 KB chunks);
//! * chunk-level compression with efficient random access ([`compress`]);
//! * rule-driven file migration across the storage hierarchy ([`migrate`]);
//! * ad-hoc queries over names, attributes, and file contents;
//! * per-operation statistics queryable as the `inv_stat` system relation
//!   ([`stats`]).
//!
//! # Quick start
//!
//! ```
//! use inversion::{InversionFs, CreateMode, OpenMode};
//!
//! let fs = InversionFs::open_in_memory().unwrap();
//! let mut c = fs.client();
//!
//! c.p_begin().unwrap();
//! c.p_mkdir("/etc").unwrap();
//! let fd = c.p_creat("/etc/passwd", CreateMode::default()).unwrap();
//! c.p_write(fd, b"root:0:0:/root\n").unwrap();
//! c.p_close(fd).unwrap();
//! c.p_commit().unwrap();
//!
//! let t_then = fs.db().now();
//!
//! c.p_begin().unwrap();
//! let fd = c.p_open("/etc/passwd", OpenMode::ReadWrite, None).unwrap();
//! c.p_write(fd, b"toor:0:0:/root\n").unwrap();
//! c.p_close(fd).unwrap();
//! c.p_commit().unwrap();
//!
//! // Time travel: the file exactly as it was before the overwrite.
//! let fd = c.p_open("/etc/passwd", OpenMode::Read, Some(t_then)).unwrap();
//! let mut buf = [0u8; 15];
//! c.p_read(fd, &mut buf).unwrap();
//! assert_eq!(&buf, b"root:0:0:/root\n");
//! c.p_close(fd).unwrap();
//! ```

pub mod api;
pub mod chunk;
pub mod client;
pub mod compress;
pub mod fs;
pub mod inproc;
pub mod largeobj;
pub mod maintenance;
pub mod migrate;
pub mod naming;
pub mod nfsfront;
pub mod server;
pub mod pool;
pub mod stats;
pub mod types;
pub mod wire;

pub use api::{Fd, InvClient, OpenMode, SeekWhence};
pub use chunk::CHUNK_SIZE;
pub use client::RemoteClient;
pub use fs::{CreateMode, FileKind, FileStat, InvError, InvResult, InversionFs, SliceRange};
pub use largeobj::LargeObject;
pub use nfsfront::{NfsFront, NfsHandle};
pub use pool::{InvServerPool, PoolConfig, WireClient};
pub use server::InvServer;
pub use stats::InvStats;
pub use wire::{FrameEvent, WireError};
