//! NFS access to Inversion — the paper's near-term plan, implemented.
//!
//! "In the near term, we plan to provide NFS access to Inversion. ... The
//! NFS protocol makes every operation an atomic transaction ... We are most
//! likely to follow the protocol specification, and to provide no
//! multi-operation transaction protection for Inversion files accessed via
//! NFS. Users who want the richer services may still link with the special
//! library, and users who simply want to list directory or file contents
//! will not need to concern themselves with transaction management."
//!
//! For time travel the paper points at 3DFS: "an NFS server could manage
//! time travel by extending the file system namespace and passing dates
//! along to the database system. This approach has been explored by
//! \[ROOM92\]." Here, suffixing any path's final component with `@<nanos>`
//! resolves it as of that simulated instant, read-only:
//!
//! ```text
//! /etc/passwd            the current file
//! /etc/passwd@150000000  the file as it was at t = 0.15 s
//! /etc@150000000         a directory listing from the past
//! ```
//!
//! File handles are `(oid, optional timestamp)` pairs — stateless, exactly
//! like inode-number NFS handles. Every mutating operation commits before
//! returning.

use minidb::{Oid, Snapshot};
use simdev::SimInstant;

use crate::api::{read_file_bytes, write_chunk};
use crate::chunk::split_range;
use crate::fs::{CreateMode, FileKind, FileStat, InvError, InvResult, InversionFs};
use crate::fs::{A_MTIME, A_SIZE};
use minidb::Datum;

/// A stateless NFS-style file handle: the file's oid plus the historical
/// instant it was resolved at (None = current).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NfsHandle {
    /// The file's object identifier.
    pub oid: Oid,
    /// Present for handles resolved through an `@<time>` path.
    pub as_of: Option<SimInstant>,
}

/// Attributes returned by `getattr`.
#[derive(Debug, Clone, PartialEq)]
pub struct NfsFattr {
    /// The handle these attributes describe.
    pub handle: NfsHandle,
    /// Size in bytes.
    pub size: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// Owner login.
    pub owner: String,
    /// Last modification time.
    pub mtime: SimInstant,
}

/// Splits a path's optional `@<nanos>` time-travel suffix.
pub fn split_time_suffix(path: &str) -> InvResult<(&str, Option<SimInstant>)> {
    let Some(at) = path.rfind('@') else {
        return Ok((path, None));
    };
    // Only the final component may carry a suffix.
    if path[at..].contains('/') {
        return Ok((path, None));
    }
    let nanos: u64 = path[at + 1..]
        .parse()
        .map_err(|_| InvError::BadPath(format!("{path}: bad @time suffix")))?;
    Ok((&path[..at], Some(SimInstant::from_nanos(nanos))))
}

/// The NFS-protocol front end over an [`InversionFs`].
pub struct NfsFront {
    fs: InversionFs,
}

impl NfsFront {
    /// Exports `fs` over the (simulated) NFS protocol.
    pub fn new(fs: &InversionFs) -> NfsFront {
        NfsFront { fs: fs.clone() }
    }

    fn attr_of(&self, stat: &FileStat, as_of: Option<SimInstant>) -> NfsFattr {
        NfsFattr {
            handle: NfsHandle {
                oid: stat.oid,
                as_of,
            },
            size: stat.size,
            is_dir: stat.kind == FileKind::Directory,
            owner: stat.owner.clone(),
            mtime: stat.mtime,
        }
    }

    fn stat_handle(&self, h: NfsHandle) -> InvResult<FileStat> {
        let mut s = self.fs.db().begin()?;
        let snap = h.as_of.map(Snapshot::AsOf);
        let stat = self.fs.stat_oid(&mut s, h.oid, snap.as_ref())?;
        s.commit()?;
        Ok(stat)
    }

    /// LOOKUP: resolves `path` (with optional `@<nanos>` suffix) to a handle.
    pub fn lookup(&self, path: &str) -> InvResult<NfsFattr> {
        let (path, as_of) = split_time_suffix(path)?;
        let mut s = self.fs.db().begin()?;
        let snap = as_of.map(Snapshot::AsOf);
        let oid = self.fs.resolve(&mut s, path, snap.as_ref())?;
        let stat = self.fs.stat_oid(&mut s, oid, snap.as_ref())?;
        s.commit()?;
        Ok(self.attr_of(&stat, as_of))
    }

    /// GETATTR.
    pub fn getattr(&self, h: NfsHandle) -> InvResult<NfsFattr> {
        let stat = self.stat_handle(h)?;
        Ok(self.attr_of(&stat, h.as_of))
    }

    /// READ: up to `len` bytes at `offset` (short at end of file).
    pub fn read(&self, h: NfsHandle, offset: u64, len: usize) -> InvResult<Vec<u8>> {
        let mut s = self.fs.db().begin()?;
        let snap = h.as_of.map(Snapshot::AsOf);
        let stat = self.fs.stat_oid(&mut s, h.oid, snap.as_ref())?;
        if stat.kind != FileKind::Regular {
            return Err(InvError::IsADirectory(format!("oid {}", h.oid)));
        }
        // Whole-file read then slice keeps this simple; NFS transfers are
        // 8 KB so the per-op cost is one chunk fetch in practice.
        let all = read_file_bytes(&self.fs, &mut s, &stat, snap.as_ref())?;
        s.commit()?;
        let off = (offset as usize).min(all.len());
        let end = (off + len).min(all.len());
        Ok(all[off..end].to_vec())
    }

    /// WRITE: one atomic transaction per call, committed before returning —
    /// the NFS statelessness guarantee, by construction.
    pub fn write(&self, h: NfsHandle, offset: u64, data: &[u8]) -> InvResult<u32> {
        if h.as_of.is_some() {
            return Err(InvError::Invalid("historical handles are read-only".into()));
        }
        let mut s = self.fs.db().begin()?;
        let stat = self.fs.stat_oid(&mut s, h.oid, None)?;
        if stat.kind != FileKind::Regular {
            return Err(InvError::IsADirectory(format!("oid {}", h.oid)));
        }
        let mut pos = 0usize;
        for (chunkno, start, take) in split_range(offset, data.len()) {
            write_chunk(
                &self.fs,
                &mut s,
                &stat,
                chunkno,
                start,
                &data[pos..pos + take],
            )?;
            pos += take;
        }
        let new_size = stat.size.max(offset + data.len() as u64);
        if let Some((tid, mut row)) = self.fs.fileatt_row(&mut s, h.oid, None)? {
            row[A_SIZE] = Datum::Int8(new_size as i64);
            row[A_MTIME] = Datum::Time(self.fs.db().now().as_nanos());
            s.update(self.fs.rels.fileatt, tid, row)?;
        }
        s.commit()?;
        Ok(data.len() as u32)
    }

    /// CREATE.
    pub fn create(&self, path: &str, mode: CreateMode) -> InvResult<NfsFattr> {
        let mut s = self.fs.db().begin()?;
        let stat = self.fs.create_file_at(&mut s, path, &mode)?;
        s.commit()?;
        Ok(self.attr_of(&stat, None))
    }

    /// MKDIR.
    pub fn mkdir(&self, path: &str) -> InvResult<NfsFattr> {
        let mut s = self.fs.db().begin()?;
        let oid = self.fs.mkdir_at(&mut s, path, "nfs")?;
        let stat = self.fs.stat_oid(&mut s, oid, None)?;
        s.commit()?;
        Ok(self.attr_of(&stat, None))
    }

    /// REMOVE / RMDIR.
    pub fn remove(&self, path: &str) -> InvResult<()> {
        let mut s = self.fs.db().begin()?;
        self.fs.unlink_at(&mut s, path)?;
        s.commit()?;
        Ok(())
    }

    /// RENAME.
    pub fn rename(&self, from: &str, to: &str) -> InvResult<()> {
        let mut s = self.fs.db().begin()?;
        self.fs.rename_at(&mut s, from, to)?;
        s.commit()?;
        Ok(())
    }

    /// READDIR: `ls(1)` through NFS works on historical paths too, which is
    /// the paper's whole pitch for the namespace extension.
    pub fn readdir(&self, path: &str) -> InvResult<Vec<(String, NfsHandle)>> {
        let (path, as_of) = split_time_suffix(path)?;
        let mut s = self.fs.db().begin()?;
        let snap = as_of.map(Snapshot::AsOf);
        let dir = self.fs.resolve(&mut s, path, snap.as_ref())?;
        let entries = self.fs.readdir(&mut s, dir, snap.as_ref())?;
        s.commit()?;
        Ok(entries
            .into_iter()
            .map(|(name, oid)| (name, NfsHandle { oid, as_of }))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::SimDuration;

    fn exported() -> (InversionFs, NfsFront) {
        let fs = InversionFs::open_in_memory().unwrap();
        let front = NfsFront::new(&fs);
        (fs, front)
    }

    #[test]
    fn split_time_suffix_parsing() {
        assert_eq!(split_time_suffix("/a/b").unwrap(), ("/a/b", None));
        assert_eq!(
            split_time_suffix("/a/b@123").unwrap(),
            ("/a/b", Some(SimInstant::from_nanos(123)))
        );
        // '@' in a non-final component is left alone.
        assert_eq!(split_time_suffix("/a@b/c").unwrap(), ("/a@b/c", None));
        assert!(split_time_suffix("/a/b@notanumber").is_err());
    }

    #[test]
    fn lookup_read_write_through_nfs() {
        let (_fs, nfs) = exported();
        let attr = nfs.create("/hello", CreateMode::default()).unwrap();
        assert_eq!(nfs.write(attr.handle, 0, b"hello nfs").unwrap(), 9);
        let found = nfs.lookup("/hello").unwrap();
        assert_eq!(found.size, 9);
        assert_eq!(nfs.read(found.handle, 0, 100).unwrap(), b"hello nfs");
        assert_eq!(nfs.read(found.handle, 6, 3).unwrap(), b"nfs");
        assert_eq!(nfs.read(found.handle, 100, 5).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_nfs_write_is_atomic_and_durable() {
        // "The NFS protocol makes every operation an atomic transaction."
        let (fs, nfs) = exported();
        let attr = nfs.create("/f", CreateMode::default()).unwrap();
        nfs.write(attr.handle, 0, b"first").unwrap();
        // Visible to a plain library client immediately (already committed).
        let mut c = fs.client();
        assert_eq!(c.read_to_vec("/f", None).unwrap(), b"first");
    }

    #[test]
    fn time_travel_through_the_namespace() {
        let (fs, nfs) = exported();
        let attr = nfs.create("/report", CreateMode::default()).unwrap();
        nfs.write(attr.handle, 0, b"draft").unwrap();
        let t1 = fs.db().now().as_nanos();
        fs.db().clock().advance(SimDuration::from_secs(1));
        nfs.write(attr.handle, 0, b"FINAL").unwrap();

        // cat /report@t1 sees the draft; plain path sees the final copy.
        let old = nfs.lookup(&format!("/report@{t1}")).unwrap();
        assert_eq!(nfs.read(old.handle, 0, 10).unwrap(), b"draft");
        let new = nfs.lookup("/report").unwrap();
        assert_eq!(nfs.read(new.handle, 0, 10).unwrap(), b"FINAL");
        // Historical handles refuse writes.
        assert!(nfs.write(old.handle, 0, b"x").is_err());
    }

    #[test]
    fn historical_ls_through_nfs() {
        let (fs, nfs) = exported();
        nfs.mkdir("/dir").unwrap();
        nfs.create("/dir/ephemeral", CreateMode::default()).unwrap();
        let t_alive = fs.db().now().as_nanos();
        nfs.remove("/dir/ephemeral").unwrap();

        assert!(nfs.readdir("/dir").unwrap().is_empty());
        let then = nfs.readdir(&format!("/dir@{t_alive}")).unwrap();
        assert_eq!(then.len(), 1);
        assert_eq!(then[0].0, "ephemeral");
        // And the historical entry's handle reads the old file.
        assert!(nfs.getattr(then[0].1).is_ok());
    }

    #[test]
    fn rename_and_remove_via_nfs() {
        let (_fs, nfs) = exported();
        nfs.mkdir("/a").unwrap();
        nfs.create("/a/x", CreateMode::default()).unwrap();
        nfs.rename("/a/x", "/a/y").unwrap();
        assert!(nfs.lookup("/a/x").is_err());
        assert!(nfs.lookup("/a/y").is_ok());
        nfs.remove("/a/y").unwrap();
        assert!(nfs.lookup("/a/y").is_err());
    }

    #[test]
    fn nfs_and_library_clients_interleave() {
        // "Users who want the richer services may still link with the
        // special library" — both interfaces over one database.
        let (fs, nfs) = exported();
        let mut lib = fs.client();
        lib.p_begin().unwrap();
        let fd = lib.p_creat("/mixed", CreateMode::default()).unwrap();
        lib.p_write(fd, b"from library").unwrap();
        lib.p_close(fd).unwrap();
        lib.p_commit().unwrap();

        let attr = nfs.lookup("/mixed").unwrap();
        assert_eq!(nfs.read(attr.handle, 5, 7).unwrap(), b"library");
        nfs.write(attr.handle, 0, b"FROM").unwrap();
        assert_eq!(lib.read_to_vec("/mixed", None).unwrap(), b"FROM library");
    }

    #[test]
    fn directories_refuse_data_ops() {
        let (_fs, nfs) = exported();
        let d = nfs.mkdir("/d").unwrap();
        assert!(d.is_dir);
        assert!(nfs.read(d.handle, 0, 1).is_err());
        assert!(nfs.write(d.handle, 0, b"x").is_err());
    }
}
