//! Running user code inside the data manager.
//!
//! "A final strategy is to exploit the extensibility of Inversion to run the
//! benchmark directly in the file system ... the routines for the benchmark
//! were declared to POSTGRES as user-defined functions, and were dynamically
//! loaded into the POSTGRES data manager on invocation. This represents the
//! best performance available to users under Inversion, since the benchmark
//! and the file system are running in the same address space, and no data
//! must be copied between them."
//!
//! [`run_in_manager`] is that path: the closure receives a direct
//! [`InvClient`] — no network endpoint, no cross-address-space copies; only
//! device and buffer-cache costs accrue. [`register_procedure`] additionally
//! registers such a closure in the catalog so it can be *invoked from the
//! query language* like any other user-defined function.

use minidb::{Datum, DbError, DbResult, TypeId};

use crate::api::InvClient;
use crate::fs::{InvResult, InversionFs};

/// Runs `f` with a client executing inside the data manager's address
/// space — the paper's fastest configuration.
pub fn run_in_manager<T>(fs: &InversionFs, f: impl FnOnce(&mut InvClient) -> T) -> T {
    let mut client = fs.client();
    f(&mut client)
}

/// Registers `f` as a query-language function `name()` executing inside the
/// data manager with its own client. The function takes the datum arguments
/// and must return a datum.
pub fn register_procedure(
    fs: &InversionFs,
    name: &str,
    nargs: usize,
    ret: TypeId,
    f: impl Fn(&mut InvClient, &[Datum]) -> DbResult<Datum> + Send + Sync + 'static,
) -> InvResult<()> {
    let key = format!("inversion.proc.{name}");
    let fs2 = fs.clone();
    fs.db().functions().register(&key, move |_s, args| {
        // The procedure gets its own client (and thus its own transaction
        // scope); POSTGRES ran dynamically loaded code with the data
        // manager's permissions in exactly this way.
        let mut client = fs2.client();
        f(&mut client, args)
    });
    match fs.db().define_function(name, nargs, ret, &key, None) {
        Ok(()) | Err(DbError::AlreadyExists(_)) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::CreateMode;

    #[test]
    fn run_in_manager_is_direct() {
        let fs = InversionFs::open_in_memory().unwrap();
        let n = run_in_manager(&fs, |c| {
            c.write_all("/x", CreateMode::default(), b"12345").unwrap();
            c.read_to_vec("/x", None).unwrap().len()
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn registered_procedure_callable_from_query_language() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/data", CreateMode::default(), &vec![9u8; 4000])
            .unwrap();

        register_procedure(&fs, "filesize_of", 1, TypeId::INT8, |client, args| {
            let path = args[0].as_text()?.to_string();
            let stat = client
                .p_stat(&path, None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            Ok(Datum::Int8(stat.size as i64))
        })
        .unwrap();

        let mut s = fs.db().begin().unwrap();
        let r = s.query(r#"retrieve (n = filesize_of("/data"))"#).unwrap();
        s.commit().unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(4000));
    }

    #[test]
    fn reregistration_is_idempotent() {
        let fs = InversionFs::open_in_memory().unwrap();
        for _ in 0..2 {
            register_procedure(&fs, "noop", 0, TypeId::BOOL, |_c, _a| Ok(Datum::Bool(true)))
                .unwrap();
        }
        assert!(fs.db().resolve_function("noop").is_ok());
    }
}
