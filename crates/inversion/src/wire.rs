//! The wire protocol: real binary framing for client/server Inversion.
//!
//! The paper ran Inversion client/server "via TCP/IP over a 10 Mbit/sec
//! Ethernet" and found the protocol "much too heavy-weight". Reproducing
//! that verdict honestly requires a *real* protocol, not a size estimate:
//! this module defines the byte-exact encoding of every [`Request`] and
//! every response, and everything that talks about message sizes —
//! [`Request::wire_size`], the simulated network charges, the `pg_stat_net`
//! byte counters — derives them from this one encoder, so the simulation and
//! the real framing can never disagree.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic      0x494E5646 ("INVF"), little-endian
//! 4       1     version    PROTOCOL_VERSION (currently 1)
//! 5       1     reserved   must be 0
//! 6       2     opcode     message kind (request or response), LE
//! 8       4     length     payload bytes that follow the header, LE
//! 12      4     checksum   FNV-1a over the payload, LE
//! 16      N     payload    opcode-specific body
//! ```
//!
//! Integers are little-endian; strings and byte arrays are a `u32` length
//! followed by the bytes. The decoder enforces [`MAX_PAYLOAD`] against the
//! length prefix *before* allocating, rejects unknown opcodes and trailing
//! garbage, and classifies every failure as either *recoverable* (the frame
//! was fully consumed, the stream is still in sync — e.g. a checksum
//! mismatch) or *fatal* (framing itself is untrustworthy — bad magic, a
//! truncated header, an oversized length prefix).

use std::io::{self, Read, Write};

use minidb::{DbError, Oid, TypeId};
use simdev::SimInstant;

use crate::api::{OpenMode, SeekWhence};
use crate::fs::{CreateMode, FileKind, FileStat, InvError, InvResult, SliceRange};
use crate::server::{Request, Response};

/// Frame magic: "INVF".
pub const MAGIC: u32 = 0x494E_5646;
/// Current protocol version.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Largest payload the decoder accepts. Bulk data moves in
/// [`crate::client::SEGMENT`]-sized messages, far below this; the cap exists
/// so a corrupt or hostile length prefix cannot drive allocation.
pub const MAX_PAYLOAD: usize = 1 << 20;

// Request opcodes.
const OP_BEGIN: u16 = 1;
const OP_COMMIT: u16 = 2;
const OP_ABORT: u16 = 3;
const OP_CREAT: u16 = 4;
const OP_OPEN: u16 = 5;
const OP_CLOSE: u16 = 6;
const OP_READ: u16 = 7;
const OP_WRITE: u16 = 8;
const OP_LSEEK: u16 = 9;
const OP_STAT: u16 = 10;
const OP_MKDIR: u16 = 11;
const OP_UNLINK: u16 = 12;
const OP_READDIR: u16 = 13;
const OP_RENAME: u16 = 14;
const OP_UNDELETE: u16 = 15;
const OP_SLICE: u16 = 16;

// Response opcodes.
const OP_R_OK: u16 = 100;
const OP_R_FD: u16 = 101;
const OP_R_DATA: u16 = 102;
const OP_R_COUNT: u16 = 103;
const OP_R_STAT: u16 = 104;
const OP_R_ENTRIES: u16 = 105;
const OP_R_ERR: u16 = 106;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying stream failed (message carries the io error text).
    Io(String),
    /// The magic number did not match — this is not an Inversion frame.
    BadMagic(u32),
    /// The peer speaks a protocol version we do not.
    BadVersion(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The payload checksum did not match (frame consumed; stream in sync).
    Checksum,
    /// The opcode is not one we know.
    BadOpcode(u16),
    /// The payload did not parse under its opcode's schema.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversize(n) => write!(f, "length prefix {n} exceeds {MAX_PAYLOAD}"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Checksum => write!(f, "payload checksum mismatch"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e.to_string())
    }
}

impl From<WireError> for InvError {
    fn from(e: WireError) -> InvError {
        InvError::Invalid(format!("wire: {e}"))
    }
}

/// FNV-1a over the payload — cheap, deterministic, catches media and
/// transport garbage (the same family the chunk self-identifying tags use).
pub fn checksum(data: &[u8]) -> u32 {
    let mut h = 0x811C_9DC5u32;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(16_777_619);
    }
    h
}

// ---------------------------------------------------------------------------
// Primitive payload encoding.

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::Malformed(format!("need {n} bytes past {}", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(self.u32()? as i32)
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_PAYLOAD {
            return Err(WireError::Malformed(format!("inner length {n} too large")));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Domain type encodings.

const CM_COMPRESSED: u8 = 1;
const CM_SELF_ID: u8 = 2;
const CM_NO_HISTORY: u8 = 4;

fn put_create_mode(out: &mut Vec<u8>, m: &CreateMode) {
    put_u8(out, m.device.0);
    let mut flags = 0u8;
    if m.compressed {
        flags |= CM_COMPRESSED;
    }
    if m.self_identifying {
        flags |= CM_SELF_ID;
    }
    if m.no_history {
        flags |= CM_NO_HISTORY;
    }
    put_u8(out, flags);
    put_u32(out, m.ftype.map(|t| t.0).unwrap_or(0));
    put_str(out, &m.owner);
}

fn get_create_mode(c: &mut Cursor<'_>) -> Result<CreateMode, WireError> {
    let device = minidb::DeviceId(c.u8()?);
    let flags = c.u8()?;
    let ftype = c.u32()?;
    let owner = c.str()?;
    Ok(CreateMode {
        device,
        owner,
        ftype: if ftype == 0 { None } else { Some(TypeId(ftype)) },
        compressed: flags & CM_COMPRESSED != 0,
        self_identifying: flags & CM_SELF_ID != 0,
        no_history: flags & CM_NO_HISTORY != 0,
    })
}

fn put_open_mode(out: &mut Vec<u8>, m: OpenMode) {
    put_u8(out, if m == OpenMode::ReadWrite { 1 } else { 0 });
}

fn get_open_mode(c: &mut Cursor<'_>) -> Result<OpenMode, WireError> {
    match c.u8()? {
        0 => Ok(OpenMode::Read),
        1 => Ok(OpenMode::ReadWrite),
        other => Err(WireError::Malformed(format!("open mode {other}"))),
    }
}

fn put_whence(out: &mut Vec<u8>, w: SeekWhence) {
    put_u8(
        out,
        match w {
            SeekWhence::Set => 0,
            SeekWhence::Cur => 1,
            SeekWhence::End => 2,
        },
    );
}

fn get_whence(c: &mut Cursor<'_>) -> Result<SeekWhence, WireError> {
    match c.u8()? {
        0 => Ok(SeekWhence::Set),
        1 => Ok(SeekWhence::Cur),
        2 => Ok(SeekWhence::End),
        other => Err(WireError::Malformed(format!("whence {other}"))),
    }
}

fn put_timestamp(out: &mut Vec<u8>, t: &Option<SimInstant>) {
    match t {
        None => put_u8(out, 0),
        Some(t) => {
            put_u8(out, 1);
            put_u64(out, t.as_nanos());
        }
    }
}

fn get_timestamp(c: &mut Cursor<'_>) -> Result<Option<SimInstant>, WireError> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(SimInstant::from_nanos(c.u64()?))),
        other => Err(WireError::Malformed(format!("timestamp tag {other}"))),
    }
}

const FS_COMPRESSED: u8 = 1;
const FS_SELF_ID: u8 = 2;
const FS_DIRECTORY: u8 = 4;

fn put_stat(out: &mut Vec<u8>, s: &FileStat) {
    put_u32(out, s.oid.0);
    let mut flags = 0u8;
    if s.compressed {
        flags |= FS_COMPRESSED;
    }
    if s.self_identifying {
        flags |= FS_SELF_ID;
    }
    if s.kind == FileKind::Directory {
        flags |= FS_DIRECTORY;
    }
    put_u8(out, flags);
    put_str(out, &s.owner);
    put_u32(out, s.ftype.map(|t| t.0).unwrap_or(0));
    put_u64(out, s.size);
    put_u64(out, s.ctime.as_nanos());
    put_u64(out, s.mtime.as_nanos());
    put_u64(out, s.atime.as_nanos());
    put_u32(out, s.datarel.0);
    put_u32(out, s.chunkidx.0);
    put_u8(out, s.device.0);
}

fn get_stat(c: &mut Cursor<'_>) -> Result<FileStat, WireError> {
    let oid = Oid(c.u32()?);
    let flags = c.u8()?;
    let owner = c.str()?;
    let ftype = c.u32()?;
    let size = c.u64()?;
    let ctime = SimInstant::from_nanos(c.u64()?);
    let mtime = SimInstant::from_nanos(c.u64()?);
    let atime = SimInstant::from_nanos(c.u64()?);
    let datarel = Oid(c.u32()?);
    let chunkidx = Oid(c.u32()?);
    let device = minidb::DeviceId(c.u8()?);
    Ok(FileStat {
        oid,
        kind: if flags & FS_DIRECTORY != 0 {
            FileKind::Directory
        } else {
            FileKind::Regular
        },
        owner,
        ftype: if ftype == 0 { None } else { Some(TypeId(ftype)) },
        size,
        ctime,
        mtime,
        atime,
        compressed: flags & FS_COMPRESSED != 0,
        self_identifying: flags & FS_SELF_ID != 0,
        datarel,
        chunkidx,
        device,
    })
}

// Error tags. DbError variants that retry loops care about keep their
// identity across the wire; the rest degrade to their display text.
const E_NO_SUCH_PATH: u8 = 0;
const E_NOT_A_DIR: u8 = 1;
const E_IS_A_DIR: u8 = 2;
const E_EXISTS: u8 = 3;
const E_NOT_EMPTY: u8 = 4;
const E_BAD_FD: u8 = 5;
const E_READ_ONLY_FD: u8 = 6;
const E_BAD_PATH: u8 = 7;
const E_INVALID: u8 = 8;
const E_DB_DEADLOCK: u8 = 20;
const E_DB_LOCK_TIMEOUT: u8 = 21;
const E_DB_NO_TXN: u8 = 22;
const E_DB_TXN_ACTIVE: u8 = 23;
const E_DB_READ_ONLY: u8 = 24;
const E_DB_CORRUPT: u8 = 25;
const E_DB_OTHER: u8 = 26;

fn put_error(out: &mut Vec<u8>, e: &InvError) {
    match e {
        InvError::NoSuchPath(p) => {
            put_u8(out, E_NO_SUCH_PATH);
            put_str(out, p);
        }
        InvError::NotADirectory(p) => {
            put_u8(out, E_NOT_A_DIR);
            put_str(out, p);
        }
        InvError::IsADirectory(p) => {
            put_u8(out, E_IS_A_DIR);
            put_str(out, p);
        }
        InvError::Exists(p) => {
            put_u8(out, E_EXISTS);
            put_str(out, p);
        }
        InvError::NotEmpty(p) => {
            put_u8(out, E_NOT_EMPTY);
            put_str(out, p);
        }
        InvError::BadFd(fd) => {
            put_u8(out, E_BAD_FD);
            put_i32(out, *fd);
        }
        InvError::ReadOnlyFd(fd) => {
            put_u8(out, E_READ_ONLY_FD);
            put_i32(out, *fd);
        }
        InvError::BadPath(p) => {
            put_u8(out, E_BAD_PATH);
            put_str(out, p);
        }
        InvError::Invalid(m) => {
            put_u8(out, E_INVALID);
            put_str(out, m);
        }
        InvError::Db(db) => match db {
            DbError::Deadlock => put_u8(out, E_DB_DEADLOCK),
            DbError::LockTimeout => put_u8(out, E_DB_LOCK_TIMEOUT),
            DbError::NoTransaction => put_u8(out, E_DB_NO_TXN),
            DbError::TransactionActive => put_u8(out, E_DB_TXN_ACTIVE),
            DbError::ReadOnly => put_u8(out, E_DB_READ_ONLY),
            DbError::Corrupt(m) => {
                put_u8(out, E_DB_CORRUPT);
                put_str(out, m);
            }
            // `Invalid` is also what the catch-all decodes to; carrying its
            // text verbatim keeps re-encoding idempotent.
            DbError::Invalid(m) => {
                put_u8(out, E_DB_OTHER);
                put_str(out, m);
            }
            other => {
                put_u8(out, E_DB_OTHER);
                put_str(out, &other.to_string());
            }
        },
    }
}

fn get_error(c: &mut Cursor<'_>) -> Result<InvError, WireError> {
    Ok(match c.u8()? {
        E_NO_SUCH_PATH => InvError::NoSuchPath(c.str()?),
        E_NOT_A_DIR => InvError::NotADirectory(c.str()?),
        E_IS_A_DIR => InvError::IsADirectory(c.str()?),
        E_EXISTS => InvError::Exists(c.str()?),
        E_NOT_EMPTY => InvError::NotEmpty(c.str()?),
        E_BAD_FD => InvError::BadFd(c.i32()?),
        E_READ_ONLY_FD => InvError::ReadOnlyFd(c.i32()?),
        E_BAD_PATH => InvError::BadPath(c.str()?),
        E_INVALID => InvError::Invalid(c.str()?),
        E_DB_DEADLOCK => InvError::Db(DbError::Deadlock),
        E_DB_LOCK_TIMEOUT => InvError::Db(DbError::LockTimeout),
        E_DB_NO_TXN => InvError::Db(DbError::NoTransaction),
        E_DB_TXN_ACTIVE => InvError::Db(DbError::TransactionActive),
        E_DB_READ_ONLY => InvError::Db(DbError::ReadOnly),
        E_DB_CORRUPT => InvError::Db(DbError::Corrupt(c.str()?)),
        E_DB_OTHER => InvError::Db(DbError::Invalid(c.str()?)),
        other => return Err(WireError::Malformed(format!("error tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Frame assembly.

/// Builds a complete frame (header + payload) for `opcode`.
pub fn frame(opcode: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, MAGIC);
    put_u8(&mut out, PROTOCOL_VERSION);
    put_u8(&mut out, 0);
    out.extend_from_slice(&opcode.to_le_bytes());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, checksum(payload));
    out.extend_from_slice(payload);
    out
}

/// Encodes a request as a complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    let op = match req {
        Request::Begin => OP_BEGIN,
        Request::Commit => OP_COMMIT,
        Request::Abort => OP_ABORT,
        Request::Creat(path, mode) => {
            put_str(&mut p, path);
            put_create_mode(&mut p, mode);
            OP_CREAT
        }
        Request::Open(path, mode, ts) => {
            put_str(&mut p, path);
            put_open_mode(&mut p, *mode);
            put_timestamp(&mut p, ts);
            OP_OPEN
        }
        Request::Close(fd) => {
            put_i32(&mut p, *fd);
            OP_CLOSE
        }
        Request::Read(fd, len) => {
            put_i32(&mut p, *fd);
            put_u64(&mut p, *len as u64);
            OP_READ
        }
        Request::Write(fd, data) => {
            put_i32(&mut p, *fd);
            put_bytes(&mut p, data);
            OP_WRITE
        }
        Request::Lseek(fd, off, whence) => {
            put_i32(&mut p, *fd);
            put_i64(&mut p, *off);
            put_whence(&mut p, *whence);
            OP_LSEEK
        }
        Request::Stat(path) => {
            put_str(&mut p, path);
            OP_STAT
        }
        Request::Mkdir(path) => {
            put_str(&mut p, path);
            OP_MKDIR
        }
        Request::Unlink(path) => {
            put_str(&mut p, path);
            OP_UNLINK
        }
        Request::Readdir(path) => {
            put_str(&mut p, path);
            OP_READDIR
        }
        Request::Rename(from, to) => {
            put_str(&mut p, from);
            put_str(&mut p, to);
            OP_RENAME
        }
        Request::Undelete(path, t) => {
            put_str(&mut p, path);
            put_u64(&mut p, t.as_nanos());
            OP_UNDELETE
        }
        Request::Slice(dest, mode, ranges) => {
            put_str(&mut p, dest);
            put_create_mode(&mut p, mode);
            put_u32(&mut p, ranges.len() as u32);
            for r in ranges {
                put_str(&mut p, &r.path);
                put_u64(&mut p, r.offset);
                put_u64(&mut p, r.len);
            }
            OP_SLICE
        }
    };
    frame(op, &p)
}

/// Encodes a server result (success or error) as a complete frame.
pub fn encode_response(res: &InvResult<Response>) -> Vec<u8> {
    let mut p = Vec::new();
    let op = match res {
        Ok(Response::Ok) => OP_R_OK,
        Ok(Response::Fd(fd)) => {
            put_i32(&mut p, *fd);
            OP_R_FD
        }
        Ok(Response::Data(d)) => {
            put_bytes(&mut p, d);
            OP_R_DATA
        }
        Ok(Response::Count(n)) => {
            put_u64(&mut p, *n);
            OP_R_COUNT
        }
        Ok(Response::Stat(s)) => {
            put_stat(&mut p, s);
            OP_R_STAT
        }
        Ok(Response::Entries(es)) => {
            put_u32(&mut p, es.len() as u32);
            for (name, oid) in es {
                put_str(&mut p, name);
                put_u32(&mut p, oid.0);
            }
            OP_R_ENTRIES
        }
        Err(e) => {
            put_error(&mut p, e);
            OP_R_ERR
        }
    };
    frame(op, &p)
}

/// The encoded size of a server result — what [`Response::wire_size`] and
/// the network charges are derived from.
pub fn response_wire_size(res: &InvResult<Response>) -> usize {
    // Payload sizes are cheap to compute, but one authoritative path beats
    // two that can drift: just encode.
    encode_response(res).len()
}

/// Decodes a request payload under its opcode.
pub fn decode_request_frame(opcode: u16, payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let req = match opcode {
        OP_BEGIN => Request::Begin,
        OP_COMMIT => Request::Commit,
        OP_ABORT => Request::Abort,
        OP_CREAT => {
            let path = c.str()?;
            let mode = get_create_mode(&mut c)?;
            Request::Creat(path, mode)
        }
        OP_OPEN => {
            let path = c.str()?;
            let mode = get_open_mode(&mut c)?;
            let ts = get_timestamp(&mut c)?;
            Request::Open(path, mode, ts)
        }
        OP_CLOSE => Request::Close(c.i32()?),
        OP_READ => {
            let fd = c.i32()?;
            let len = c.u64()?;
            if len > MAX_PAYLOAD as u64 {
                return Err(WireError::Malformed(format!("read of {len} bytes")));
            }
            Request::Read(fd, len as usize)
        }
        OP_WRITE => {
            let fd = c.i32()?;
            let data = c.bytes()?;
            Request::Write(fd, data)
        }
        OP_LSEEK => {
            let fd = c.i32()?;
            let off = c.i64()?;
            let whence = get_whence(&mut c)?;
            Request::Lseek(fd, off, whence)
        }
        OP_STAT => Request::Stat(c.str()?),
        OP_MKDIR => Request::Mkdir(c.str()?),
        OP_UNLINK => Request::Unlink(c.str()?),
        OP_READDIR => Request::Readdir(c.str()?),
        OP_RENAME => {
            let from = c.str()?;
            let to = c.str()?;
            Request::Rename(from, to)
        }
        OP_UNDELETE => {
            let path = c.str()?;
            let t = SimInstant::from_nanos(c.u64()?);
            Request::Undelete(path, t)
        }
        OP_SLICE => {
            let dest = c.str()?;
            let mode = get_create_mode(&mut c)?;
            let n = c.u32()? as usize;
            if n > MAX_PAYLOAD / 20 {
                return Err(WireError::Malformed(format!("{n} slice ranges")));
            }
            let mut ranges = Vec::with_capacity(n);
            for _ in 0..n {
                let path = c.str()?;
                let offset = c.u64()?;
                let len = c.u64()?;
                ranges.push(SliceRange { path, offset, len });
            }
            Request::Slice(dest, mode, ranges)
        }
        other => return Err(WireError::BadOpcode(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Decodes a response payload under its opcode.
pub fn decode_response_frame(opcode: u16, payload: &[u8]) -> Result<InvResult<Response>, WireError> {
    let mut c = Cursor::new(payload);
    let res = match opcode {
        OP_R_OK => Ok(Response::Ok),
        OP_R_FD => Ok(Response::Fd(c.i32()?)),
        OP_R_DATA => Ok(Response::Data(c.bytes()?)),
        OP_R_COUNT => Ok(Response::Count(c.u64()?)),
        OP_R_STAT => Ok(Response::Stat(Box::new(get_stat(&mut c)?))),
        OP_R_ENTRIES => {
            let n = c.u32()? as usize;
            if n > MAX_PAYLOAD / 5 {
                return Err(WireError::Malformed(format!("{n} directory entries")));
            }
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                let name = c.str()?;
                let oid = Oid(c.u32()?);
                es.push((name, oid));
            }
            Ok(Response::Entries(es))
        }
        OP_R_ERR => Err(get_error(&mut c)?),
        other => return Err(WireError::BadOpcode(other)),
    };
    c.finish()?;
    Ok(res)
}

/// Decodes a complete request frame from a byte slice (tests, simulation).
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let mut r = bytes;
    match read_frame(&mut r)? {
        FrameEvent::Frame { opcode, payload } if r.is_empty() => {
            decode_request_frame(opcode, &payload)
        }
        FrameEvent::Frame { .. } => Err(WireError::Malformed("trailing bytes after frame".into())),
        FrameEvent::Eof => Err(WireError::Truncated),
        FrameEvent::Corrupt(e) => Err(e),
    }
}

/// Decodes a complete response frame from a byte slice (tests, simulation).
pub fn decode_response(bytes: &[u8]) -> Result<InvResult<Response>, WireError> {
    let mut r = bytes;
    match read_frame(&mut r)? {
        FrameEvent::Frame { opcode, payload } if r.is_empty() => {
            decode_response_frame(opcode, &payload)
        }
        FrameEvent::Frame { .. } => Err(WireError::Malformed("trailing bytes after frame".into())),
        FrameEvent::Eof => Err(WireError::Truncated),
        FrameEvent::Corrupt(e) => Err(e),
    }
}

/// One event from the framing layer of a byte stream.
#[derive(Debug)]
pub enum FrameEvent {
    /// Clean end of stream at a frame boundary.
    Eof,
    /// A well-framed message (checksum verified); decode the payload with
    /// [`decode_request_frame`] / [`decode_response_frame`].
    Frame {
        /// The frame's opcode.
        opcode: u16,
        /// The frame's payload bytes.
        payload: Vec<u8>,
    },
    /// The frame was fully consumed but its payload is untrustworthy
    /// (checksum mismatch). The stream is still in sync; the session can
    /// report the error and continue.
    Corrupt(WireError),
}

/// Reads one frame from `r`. `Err` means the *stream* is no longer
/// trustworthy (bad magic, truncated frame, oversized length, i/o failure)
/// and the connection should be torn down.
pub fn read_frame<R: Read>(r: &mut R) -> Result<FrameEvent, WireError> {
    let mut hdr = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut hdr[got..]) {
            Ok(0) if got == 0 => return Ok(FrameEvent::Eof),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if hdr[4] != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(hdr[4]));
    }
    let opcode = u16::from_le_bytes([hdr[6], hdr[7]]);
    let len = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
    let sum = u32::from_le_bytes([hdr[12], hdr[13], hdr[14], hdr[15]]);
    if len as usize > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if checksum(&payload) != sum {
        return Ok(FrameEvent::Corrupt(WireError::Checksum));
    }
    Ok(FrameEvent::Frame { opcode, payload })
}

/// Writes a pre-encoded frame to `w`, flushing it onto the wire.
pub fn write_frame<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    w.write_all(bytes)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Begin,
            Request::Commit,
            Request::Abort,
            Request::Creat(
                "/a/file".into(),
                CreateMode::default()
                    .on_device(minidb::DeviceId(2))
                    .owned_by("mao")
                    .with_type(TypeId(7))
                    .compressed()
                    .self_identifying()
                    .without_history(),
            ),
            Request::Open("/x".into(), OpenMode::Read, Some(SimInstant::from_nanos(99))),
            Request::Open("/y".into(), OpenMode::ReadWrite, None),
            Request::Close(3),
            Request::Read(4, 8192),
            Request::Write(5, vec![1, 2, 3, 255]),
            Request::Lseek(6, -42, SeekWhence::End),
            Request::Stat("/s".into()),
            Request::Mkdir("/d".into()),
            Request::Unlink("/u".into()),
            Request::Readdir("/".into()),
            Request::Rename("/old".into(), "/new".into()),
            Request::Undelete("/lost".into(), SimInstant::from_nanos(4242)),
            Request::Slice(
                "/composed".into(),
                CreateMode::default().compressed(),
                vec![
                    SliceRange::new("/a", 0, 8128),
                    SliceRange::new("/b", 4096, 100),
                ],
            ),
        ]
    }

    fn sample_responses() -> Vec<InvResult<Response>> {
        let stat = FileStat {
            oid: Oid(9),
            kind: FileKind::Regular,
            owner: "root".into(),
            ftype: Some(TypeId(3)),
            size: 123456789,
            ctime: SimInstant::from_nanos(1),
            mtime: SimInstant::from_nanos(2),
            atime: SimInstant::from_nanos(3),
            compressed: true,
            self_identifying: false,
            datarel: Oid(100),
            chunkidx: Oid(101),
            device: minidb::DeviceId(1),
        };
        vec![
            Ok(Response::Ok),
            Ok(Response::Fd(77)),
            Ok(Response::Data(vec![0u8; 300])),
            Ok(Response::Count(1 << 40)),
            Ok(Response::Stat(Box::new(stat))),
            Ok(Response::Entries(vec![
                ("a".into(), Oid(1)),
                ("b".into(), Oid(2)),
            ])),
            Err(InvError::NoSuchPath("/gone".into())),
            Err(InvError::BadFd(12)),
            Err(InvError::Db(DbError::Deadlock)),
            Err(InvError::Db(DbError::Corrupt("page 9".into()))),
        ]
    }

    #[test]
    fn request_roundtrip_every_variant() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn response_roundtrip_every_variant() {
        for res in sample_responses() {
            let bytes = encode_response(&res);
            let back = decode_response(&bytes).unwrap();
            assert_eq!(format!("{res:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn corrupted_checksum_is_recoverable() {
        let mut bytes = encode_request(&Request::Stat("/x".into()));
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        let mut r = &bytes[..];
        match read_frame(&mut r).unwrap() {
            FrameEvent::Corrupt(WireError::Checksum) => {}
            other => panic!("expected checksum corruption, got {other:?}"),
        }
        assert!(r.is_empty(), "corrupt frame must still be fully consumed");
    }

    #[test]
    fn bad_magic_and_truncation_are_fatal() {
        let good = encode_request(&Request::Begin);
        let mut bad = good.clone();
        bad[0] = 0;
        let mut r = &bad[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::BadMagic(_))));

        for cut in 1..good.len() {
            let mut r = &good[..cut];
            assert!(
                matches!(read_frame(&mut r), Err(WireError::Truncated)),
                "cut at {cut}"
            );
        }

        let mut r = &good[..0];
        assert!(matches!(read_frame(&mut r).unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn oversize_length_prefix_rejected_before_allocation() {
        let mut bytes = frame(OP_STAT, b"xx");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &bytes[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::Oversize(_))));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let bytes = frame(0xEEE, b"");
        assert!(matches!(
            decode_request(&bytes),
            Err(WireError::BadOpcode(0xEEE))
        ));
        assert!(matches!(
            decode_response(&bytes),
            Err(WireError::BadOpcode(0xEEE))
        ));
    }

    #[test]
    fn trailing_garbage_in_payload_rejected() {
        let mut p = Vec::new();
        put_i32(&mut p, 3);
        put_u8(&mut p, 99); // One byte too many for OP_CLOSE.
        let bytes = frame(OP_CLOSE, &p);
        assert!(matches!(
            decode_request(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
