//! Typed files, the Table 2 functions, and synthetic Sequoia 2000 data.
//!
//! "Inversion supports typing of user files. ... Functions that operate on a
//! particular type may also be registered with the database system ...
//! invoked from the query language, and their results examined." Table 2 of
//! the paper lists the installed examples, all implemented here:
//!
//! | file type | functions |
//! |---|---|
//! | ASCII document | `linecount` |
//! | troff document | `keywords`, `wordcount`, `linecount`, `fonts`, `sizes` |
//! | CZCS (Coastal Zone Color Scanner) image | `pixelavg`, `pixelcount`, `getpixel` |
//! | AVHRR / TM satellite image | `snow`, `pixelcount`, `pixelavg`, `getpixel`, `getband` |
//!
//! plus the metadata helpers the paper's example queries use: `owner`,
//! `size`, `filetype`, `dir`, and `month_of`.
//!
//! The paper's data (Thematic Mapper scenes, troff sources) are not
//! available, so deterministic synthetic generators produce stand-ins that
//! exercise the same code paths: a five-band image format with a
//! controllable snow fraction, and troff-like documents with `.KW`, `.ft`,
//! and `.ps` macros.

use minidb::{Datum, DbError, Oid, TypeId};

use crate::fs::{InvError, InvResult, InversionFs};

/// Magic for the synthetic satellite image format.
pub const IMAGE_MAGIC: &[u8; 4] = b"SEQ1";

/// A decoded synthetic satellite image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatelliteImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Number of spectral bands ("a device which records five spectral
    /// bands for each image").
    pub bands: u8,
    /// Acquisition month, 1–12.
    pub month: u8,
    /// Band-major pixel data: `bands * width * height` bytes.
    pub data: Vec<u8>,
}

/// Pixel brightness at or above this value in band 0 counts as snow.
pub const SNOW_THRESHOLD: u8 = 200;

impl SatelliteImage {
    /// Deterministically generates an image with approximately
    /// `snow_fraction` of its pixels snow-covered.
    pub fn generate(
        seed: u64,
        width: u32,
        height: u32,
        bands: u8,
        month: u8,
        snow_fraction: f64,
    ) -> Self {
        let n = (width * height) as usize;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut data = vec![0u8; n * bands as usize];
        for p in 0..n {
            let snowy = (next() % 10_000) < (snow_fraction * 10_000.0) as u64;
            for b in 0..bands as usize {
                let v = if snowy {
                    SNOW_THRESHOLD + (next() % (256 - SNOW_THRESHOLD as u64)) as u8
                } else {
                    (next() % SNOW_THRESHOLD as u64) as u8
                };
                data[b * n + p] = v;
            }
        }
        SatelliteImage {
            width,
            height,
            bands,
            month,
            data,
        }
    }

    /// Serializes to the on-disk format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.data.len());
        out.extend_from_slice(IMAGE_MAGIC);
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.push(self.bands);
        out.push(self.month);
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses the on-disk format.
    pub fn decode(bytes: &[u8]) -> InvResult<SatelliteImage> {
        if bytes.len() < 16 || &bytes[..4] != IMAGE_MAGIC {
            return Err(InvError::Invalid("not a satellite image".into()));
        }
        let width = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let height = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let bands = bytes[12];
        let month = bytes[13];
        let expect = (width as usize) * (height as usize) * bands as usize;
        let data = bytes
            .get(16..16 + expect)
            .ok_or_else(|| InvError::Invalid("truncated satellite image".into()))?
            .to_vec();
        Ok(SatelliteImage {
            width,
            height,
            bands,
            month,
            data,
        })
    }

    /// Number of pixels per band.
    pub fn pixelcount(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Band-0 value at `(x, y)`.
    pub fn pixel(&self, x: u32, y: u32) -> Option<u8> {
        if x >= self.width || y >= self.height {
            return None;
        }
        Some(self.data[(y * self.width + x) as usize])
    }

    /// Mean value of one band.
    pub fn band_avg(&self, band: u8) -> Option<f64> {
        if band >= self.bands {
            return None;
        }
        let n = self.pixelcount() as usize;
        let slice = &self.data[band as usize * n..(band as usize + 1) * n];
        Some(slice.iter().map(|&b| b as u64).sum::<u64>() as f64 / n as f64)
    }

    /// "The snow function returns a count of the number of pixels that
    /// contain snow in the image."
    pub fn snow_count(&self) -> u64 {
        let n = self.pixelcount() as usize;
        self.data[..n]
            .iter()
            .filter(|&&v| v >= SNOW_THRESHOLD)
            .count() as u64
    }

    /// English month name ("April").
    pub fn month_name(&self) -> &'static str {
        month_name(self.month)
    }
}

/// English month name for 1–12 (empty string otherwise).
pub fn month_name(m: u8) -> &'static str {
    match m {
        1 => "January",
        2 => "February",
        3 => "March",
        4 => "April",
        5 => "May",
        6 => "June",
        7 => "July",
        8 => "August",
        9 => "September",
        10 => "October",
        11 => "November",
        12 => "December",
        _ => "",
    }
}

/// Generates a deterministic ASCII document of roughly `lines` lines.
pub fn make_ascii_document(seed: u64, lines: usize) -> String {
    let words = [
        "storage",
        "manager",
        "transaction",
        "snapshot",
        "jukebox",
        "sequoia",
        "climate",
        "database",
        "inversion",
        "recovery",
        "index",
        "chunk",
    ];
    let mut state = seed | 1;
    let mut out = String::new();
    for i in 0..lines {
        let mut line = String::new();
        let n = 4 + (state as usize + i) % 8;
        for k in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if k > 0 {
                line.push(' ');
            }
            line.push_str(words[(state >> 33) as usize % words.len()]);
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Generates a troff-like document with `.KW` keyword, `.ft` font, and
/// `.ps` point-size macros.
pub fn make_troff_document(seed: u64, keywords: &[&str], body_lines: usize) -> String {
    let mut out = String::new();
    for kw in keywords {
        out.push_str(&format!(".KW {kw}\n"));
    }
    out.push_str(".ft R\n.ps 10\n");
    out.push_str(&make_ascii_document(seed, body_lines / 2));
    out.push_str(".ft B\n.ps 12\n");
    out.push_str(&make_ascii_document(
        seed.wrapping_add(1),
        body_lines - body_lines / 2,
    ));
    out
}

fn troff_macro_values(text: &str, mac: &str) -> Vec<String> {
    let prefix = format!(".{mac} ");
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(&prefix) {
            let v = rest.trim().to_string();
            if !v.is_empty() && !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

/// Extracts `.KW` keywords from a troff document as a comma-separated list
/// (what `"RISC" in keywords(file)` matches against).
pub fn extract_keywords(text: &str) -> String {
    troff_macro_values(text, "KW").join(", ")
}

/// Distinct `.ft` font names.
pub fn extract_fonts(text: &str) -> String {
    troff_macro_values(text, "ft").join(", ")
}

/// Distinct `.ps` point sizes.
pub fn extract_sizes(text: &str) -> String {
    troff_macro_values(text, "ps").join(", ")
}

/// Lines that are not macro lines.
pub fn linecount(text: &str) -> u64 {
    text.lines().filter(|l| !l.starts_with('.')).count() as u64
}

/// Whitespace-separated words outside macro lines.
pub fn wordcount(text: &str) -> u64 {
    text.lines()
        .filter(|l| !l.starts_with('.'))
        .map(|l| l.split_whitespace().count() as u64)
        .sum()
}

/// The standard type names registered by [`register_standard`].
pub const TYPE_NAMES: [&str; 5] = ["ascii", "troff", "czcs", "avhrr", "tm"];

/// Registers the standard Sequoia 2000 file types and every Table 2
/// function (implementations *and* catalog definitions) on `fs`'s database.
///
/// Idempotent: re-registering after recovery relinks implementations to the
/// persisted catalog entries, exactly as a POSTGRES site reinstalled its
/// dynamically loaded objects.
pub fn register_standard(fs: &InversionFs) -> InvResult<()> {
    let db = fs.db();
    for t in TYPE_NAMES {
        match db.define_type(t) {
            Ok(_) | Err(DbError::AlreadyExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
    }

    // "would find all the files stored by Inversion *for which the keywords
    // function was defined*": a function registered for particular file
    // types returns null on files of any other type (and on directories),
    // so qualifications simply filter them out. Calling it on a file that
    // *claims* the right type but is malformed is still a hard error.
    let image_types: Vec<TypeId> = ["czcs", "avhrr", "tm"]
        .iter()
        .map(|t| db.catalog().type_by_name(t))
        .collect::<Result<_, _>>()?;
    let text_types: Vec<TypeId> = ["ascii", "troff"]
        .iter()
        .map(|t| db.catalog().type_by_name(t))
        .collect::<Result<_, _>>()?;
    let troff_type = db.catalog().type_by_name("troff")?;

    let image_of = {
        let fs = fs.clone();
        let allowed = image_types.clone();
        move |s: &mut minidb::Session, oid: u32| -> Result<Option<SatelliteImage>, DbError> {
            let stat = fs
                .stat_oid(s, Oid(oid), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            match stat.ftype {
                Some(t) if allowed.contains(&t) => {}
                _ => return Ok(None),
            }
            let bytes = fs
                .read_file(s, Oid(oid), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            SatelliteImage::decode(&bytes)
                .map(Some)
                .map_err(|e| DbError::Eval(e.to_string()))
        }
    };
    let text_of = {
        let fs = fs.clone();
        let allowed = text_types.clone();
        move |s: &mut minidb::Session, oid: u32| -> Result<Option<String>, DbError> {
            let stat = fs
                .stat_oid(s, Oid(oid), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            match stat.ftype {
                Some(t) if allowed.contains(&t) => {}
                _ => return Ok(None),
            }
            let bytes = fs
                .read_file(s, Oid(oid), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            String::from_utf8(bytes)
                .map(Some)
                .map_err(|_| DbError::Eval("file is not text".into()))
        }
    };
    let troff_of = {
        let t = text_of.clone();
        let fs = fs.clone();
        move |s: &mut minidb::Session, oid: u32| -> Result<Option<String>, DbError> {
            let stat = fs
                .stat_oid(s, Oid(oid), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            if stat.ftype != Some(troff_type) {
                return Ok(None);
            }
            t(s, oid)
        }
    };

    let reg = db.functions();
    {
        let img = image_of.clone();
        reg.register("inversion.snow", move |s, a| {
            let Some(im) = img(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Int8(im.snow_count() as i64))
        });
    }
    {
        let img = image_of.clone();
        reg.register("inversion.pixelcount", move |s, a| {
            let Some(im) = img(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Int8(im.pixelcount() as i64))
        });
    }
    {
        let img = image_of.clone();
        reg.register("inversion.pixelavg", move |s, a| {
            let Some(im) = img(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            im.band_avg(0)
                .map(Datum::Float8)
                .ok_or_else(|| DbError::Eval("image has no bands".into()))
        });
    }
    {
        let img = image_of.clone();
        reg.register("inversion.getpixel", move |s, a| {
            let Some(im) = img(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            let (x, y) = (a[1].as_int()? as u32, a[2].as_int()? as u32);
            im.pixel(x, y)
                .map(|v| Datum::Int4(v as i32))
                .ok_or_else(|| DbError::Eval(format!("pixel ({x}, {y}) out of range")))
        });
    }
    {
        let img = image_of.clone();
        reg.register("inversion.getband", move |s, a| {
            let Some(im) = img(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            let b = a[1].as_int()? as u8;
            im.band_avg(b)
                .map(Datum::Float8)
                .ok_or_else(|| DbError::Eval(format!("band {b} out of range")))
        });
    }
    {
        let img = image_of.clone();
        reg.register("inversion.month_of", move |s, a| {
            let Some(im) = img(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Text(im.month_name().to_string()))
        });
    }
    {
        let t = troff_of.clone();
        reg.register("inversion.keywords", move |s, a| {
            let Some(text) = t(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Text(extract_keywords(&text)))
        });
    }
    {
        let t = troff_of.clone();
        reg.register("inversion.fonts", move |s, a| {
            let Some(text) = t(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Text(extract_fonts(&text)))
        });
    }
    {
        let t = troff_of.clone();
        reg.register("inversion.sizes", move |s, a| {
            let Some(text) = t(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Text(extract_sizes(&text)))
        });
    }
    {
        let t = text_of.clone();
        reg.register("inversion.linecount", move |s, a| {
            let Some(text) = t(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Int8(linecount(&text) as i64))
        });
    }
    {
        let t = text_of.clone();
        reg.register("inversion.wordcount", move |s, a| {
            let Some(text) = t(s, a[0].as_oid()?)? else {
                return Ok(Datum::Null);
            };
            Ok(Datum::Int8(wordcount(&text) as i64))
        });
    }
    // Metadata helpers used by the paper's example queries.
    {
        let fs2 = fs.clone();
        reg.register("inversion.owner", move |s, a| {
            let stat = fs2
                .stat_oid(s, Oid(a[0].as_oid()?), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            Ok(Datum::Text(stat.owner))
        });
    }
    {
        let fs2 = fs.clone();
        reg.register("inversion.size", move |s, a| {
            let stat = fs2
                .stat_oid(s, Oid(a[0].as_oid()?), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            Ok(Datum::Int8(stat.size as i64))
        });
    }
    {
        let fs2 = fs.clone();
        reg.register("inversion.filetype", move |s, a| {
            let stat = fs2
                .stat_oid(s, Oid(a[0].as_oid()?), None)
                .map_err(|e| DbError::Eval(e.to_string()))?;
            match stat.ftype {
                Some(t) => Ok(Datum::Text(s.db().catalog().type_name(t)?)),
                None => Ok(Datum::Text(String::new())),
            }
        });
    }
    {
        let fs2 = fs.clone();
        reg.register("inversion.dir", move |s, a| {
            let oid = Oid(a[0].as_oid()?);
            // The directory containing the file: parent of its naming entry.
            let hits = s.index_scan_eq(fs2.rels.naming_file_idx, &[Datum::Oid(oid.0)])?;
            let Some((_, row)) = hits.into_iter().next() else {
                return Err(DbError::Eval(format!("no naming entry for oid {oid}")));
            };
            let parent = Oid(row[crate::fs::N_PARENTID].as_oid()?);
            fs2.path_of(s, parent, None)
                .map(Datum::Text)
                .map_err(|e| DbError::Eval(e.to_string()))
        });
    }

    let defs: [(&str, usize, TypeId, &str, Option<&str>); 15] = [
        ("snow", 1, TypeId::INT8, "inversion.snow", Some("tm")),
        ("pixelcount", 1, TypeId::INT8, "inversion.pixelcount", None),
        ("pixelavg", 1, TypeId::FLOAT8, "inversion.pixelavg", None),
        ("getpixel", 3, TypeId::INT4, "inversion.getpixel", None),
        (
            "getband",
            2,
            TypeId::FLOAT8,
            "inversion.getband",
            Some("avhrr"),
        ),
        (
            "month_of",
            1,
            TypeId::TEXT,
            "inversion.month_of",
            Some("tm"),
        ),
        (
            "keywords",
            1,
            TypeId::TEXT,
            "inversion.keywords",
            Some("troff"),
        ),
        ("fonts", 1, TypeId::TEXT, "inversion.fonts", Some("troff")),
        ("sizes", 1, TypeId::TEXT, "inversion.sizes", Some("troff")),
        ("linecount", 1, TypeId::INT8, "inversion.linecount", None),
        ("wordcount", 1, TypeId::INT8, "inversion.wordcount", None),
        ("owner", 1, TypeId::TEXT, "inversion.owner", None),
        ("size", 1, TypeId::INT8, "inversion.size", None),
        ("filetype", 1, TypeId::TEXT, "inversion.filetype", None),
        ("dir", 1, TypeId::TEXT, "inversion.dir", None),
    ];
    for (name, nargs, ret, key, for_type) in defs {
        let operates_on = match for_type {
            Some(t) => Some(db.catalog().type_by_name(t)?),
            None => None,
        };
        match db.define_function(name, nargs, ret, key, operates_on) {
            Ok(()) | Err(DbError::AlreadyExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::CreateMode;

    #[test]
    fn image_roundtrips_and_counts_snow() {
        let img = SatelliteImage::generate(7, 64, 48, 5, 4, 0.5);
        assert_eq!(img.pixelcount(), 64 * 48);
        let dec = SatelliteImage::decode(&img.encode()).unwrap();
        assert_eq!(dec, img);
        let frac = img.snow_count() as f64 / img.pixelcount() as f64;
        assert!((0.4..0.6).contains(&frac), "snow fraction {frac}");
        assert_eq!(img.month_name(), "April");
        // Snow pixels are bright across bands; determinism.
        let again = SatelliteImage::generate(7, 64, 48, 5, 4, 0.5);
        assert_eq!(again, img);
    }

    #[test]
    fn image_accessors_bounds() {
        let img = SatelliteImage::generate(1, 8, 8, 2, 12, 0.0);
        assert!(img.pixel(7, 7).is_some());
        assert!(img.pixel(8, 0).is_none());
        assert!(img.band_avg(1).is_some());
        assert!(img.band_avg(2).is_none());
        assert_eq!(img.snow_count(), 0);
        assert_eq!(img.month_name(), "December");
        assert!(SatelliteImage::decode(b"nope").is_err());
    }

    #[test]
    fn troff_extraction() {
        let doc = make_troff_document(3, &["RISC", "pipeline"], 20);
        assert_eq!(extract_keywords(&doc), "RISC, pipeline");
        assert_eq!(extract_fonts(&doc), "R, B");
        assert_eq!(extract_sizes(&doc), "10, 12");
        assert!(linecount(&doc) >= 18);
        assert!(wordcount(&doc) > linecount(&doc));
    }

    #[test]
    fn paper_risc_query_end_to_end() {
        // "retrieve (filename) where "RISC" in keywords(file)".
        let fs = InversionFs::open_in_memory().unwrap();
        register_standard(&fs).unwrap();
        let troff = fs.db().catalog().type_by_name("troff").unwrap();
        let mut c = fs.client();
        c.write_all(
            "/doc_risc",
            CreateMode::default().with_type(troff),
            make_troff_document(1, &["RISC", "cache"], 10).as_bytes(),
        )
        .unwrap();
        c.write_all(
            "/doc_other",
            CreateMode::default().with_type(troff),
            make_troff_document(2, &["filesystem"], 10).as_bytes(),
        )
        .unwrap();

        let mut s = fs.db().begin().unwrap();
        let r = s
            .query(r#"retrieve (n.filename) from n in naming where "RISC" in keywords(n.file)"#)
            .unwrap();
        s.commit().unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Text("doc_risc".into()));
    }

    #[test]
    fn paper_snow_query_end_to_end() {
        // "retrieve (snow(file), filename) where filetype(file) = "tm" and
        //  snow(file)/size(file) > 0.5 and month_of(file) = "April"" —
        // normalized: we compare the snow *fraction of pixels* instead of
        // bytes, which is what the paper's prose describes.
        let fs = InversionFs::open_in_memory().unwrap();
        register_standard(&fs).unwrap();
        let tm = fs.db().catalog().type_by_name("tm").unwrap();
        let mut c = fs.client();
        let snowy = SatelliteImage::generate(1, 32, 32, 5, 4, 0.8);
        let bare = SatelliteImage::generate(2, 32, 32, 5, 4, 0.1);
        let summer = SatelliteImage::generate(3, 32, 32, 5, 7, 0.9);
        c.write_all(
            "/tm_snowy",
            CreateMode::default().with_type(tm),
            &snowy.encode(),
        )
        .unwrap();
        c.write_all(
            "/tm_bare",
            CreateMode::default().with_type(tm),
            &bare.encode(),
        )
        .unwrap();
        c.write_all(
            "/tm_summer",
            CreateMode::default().with_type(tm),
            &summer.encode(),
        )
        .unwrap();

        let mut s = fs.db().begin().unwrap();
        let r = s
            .query(
                r#"retrieve (s = snow(n.file), n.filename)
                   from n in naming
                   where filetype(n.file) = "tm"
                     and snow(n.file) * 2 > pixelcount(n.file)
                     and month_of(n.file) = "April""#,
            )
            .unwrap();
        s.commit().unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[1 - 1][1], Datum::Text("tm_snowy".into()));
        assert_eq!(r.rows[0][0], Datum::Int8(snowy.snow_count() as i64));
    }

    #[test]
    fn paper_owner_dir_query_end_to_end() {
        // "retrieve (filename) where owner(file) = "mao" and ... and
        //  dir(file) = "/users/mao"".
        let fs = InversionFs::open_in_memory().unwrap();
        register_standard(&fs).unwrap();
        let mut c = fs.client();
        c.p_mkdir("/users").unwrap();
        c.p_mkdir("/users/mao").unwrap();
        c.write_all(
            "/users/mao/movie1",
            CreateMode::default().owned_by("mao"),
            b"m",
        )
        .unwrap();
        c.write_all(
            "/users/mao/note",
            CreateMode::default().owned_by("sue"),
            b"n",
        )
        .unwrap();
        c.write_all("/elsewhere", CreateMode::default().owned_by("mao"), b"e")
            .unwrap();

        let mut s = fs.db().begin().unwrap();
        let r = s
            .query(
                r#"retrieve (n.filename) from n in naming
                   where owner(n.file) = "mao" and dir(n.file) = "/users/mao""#,
            )
            .unwrap();
        s.commit().unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Text("movie1".into()));
    }

    #[test]
    fn functions_survive_recovery_with_reregistration() {
        let fs = InversionFs::open_in_memory().unwrap();
        register_standard(&fs).unwrap();
        // Simulate a fresh process: definitions persist in the catalog;
        // implementations must be re-registered (idempotent).
        register_standard(&fs).unwrap();
        assert!(fs.db().resolve_function("snow").is_ok());
        assert!(fs.db().catalog().proc("keywords").is_ok());
    }

    #[test]
    fn type_checking_catalog_metadata() {
        let fs = InversionFs::open_in_memory().unwrap();
        register_standard(&fs).unwrap();
        let cat = fs.db().catalog();
        let snow = cat.proc("snow").unwrap();
        assert_eq!(snow.operates_on, Some(cat.type_by_name("tm").unwrap()));
        assert_eq!(snow.ret, TypeId::INT8);
        let kw = cat.proc("keywords").unwrap();
        assert_eq!(kw.operates_on, Some(cat.type_by_name("troff").unwrap()));
    }

    #[test]
    fn wrong_typed_file_yields_null_not_error() {
        // "would find all the files stored by Inversion for which the
        // keywords function was defined": other files filter out quietly.
        let fs = InversionFs::open_in_memory().unwrap();
        register_standard(&fs).unwrap();
        let mut c = fs.client();
        c.write_all("/notimage", CreateMode::default(), b"plain text")
            .unwrap();
        let mut s = fs.db().begin().unwrap();
        let r = s
            .query(r#"retrieve (v = snow(n.file)) from n in naming where n.filename = "notimage""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Null]]);
        // And a qualification over it is simply false.
        let r = s
            .query(r#"retrieve (n.filename) from n in naming where snow(n.file) > 0"#)
            .unwrap();
        assert!(r.rows.is_empty());
        s.commit().unwrap();
    }

    #[test]
    fn malformed_file_of_claimed_type_is_a_hard_error() {
        let fs = InversionFs::open_in_memory().unwrap();
        register_standard(&fs).unwrap();
        let tm = fs.db().catalog().type_by_name("tm").unwrap();
        let mut c = fs.client();
        c.write_all(
            "/liar",
            CreateMode::default().with_type(tm),
            b"not an image",
        )
        .unwrap();
        let mut s = fs.db().begin().unwrap();
        let err = s
            .query(r#"retrieve (v = snow(n.file)) from n in naming where n.filename = "liar""#)
            .unwrap_err();
        s.abort().unwrap();
        assert!(matches!(err, DbError::Eval(_)));
    }
}
