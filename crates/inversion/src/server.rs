//! The server side of client/server Inversion.
//!
//! "Strictly speaking, the Inversion file system is a small set of routines
//! that are compiled into the POSTGRES data manager. Requests for file
//! system data call these routines." [`InvServer`] is that data-manager-side
//! dispatcher: it owns a server-side [`crate::InvClient`] per connection and
//! executes decoded requests against it. The wire protocol lives in
//! [`crate::client`].

use minidb::Oid;
use simdev::SimInstant;

use crate::api::{Fd, InvClient, OpenMode, SeekWhence};
use crate::fs::{CreateMode, FileStat, InvResult, InversionFs, SliceRange};

/// A request as carried by the client/server protocol. Sizes on the wire
/// are computed by [`Request::wire_size`].
#[derive(Debug, Clone)]
pub enum Request {
    /// `p_begin`
    Begin,
    /// `p_commit`
    Commit,
    /// `p_abort`
    Abort,
    /// `p_creat(path, mode)`
    Creat(String, CreateMode),
    /// `p_open(path, mode, timestamp)`
    Open(String, OpenMode, Option<SimInstant>),
    /// `p_close(fd)`
    Close(Fd),
    /// `p_read(fd, len)`
    Read(Fd, usize),
    /// `p_write(fd, data)`
    Write(Fd, Vec<u8>),
    /// `p_lseek(fd, offset, whence)`
    Lseek(Fd, i64, SeekWhence),
    /// `p_stat(path)`
    Stat(String),
    /// `p_mkdir(path)`
    Mkdir(String),
    /// `p_unlink(path)`
    Unlink(String),
    /// `p_readdir(path)`
    Readdir(String),
    /// `p_rename(from, to)`
    Rename(String, String),
    /// `p_undelete(path, t)`
    Undelete(String, SimInstant),
    /// `p_slice(dest, mode, ranges)`
    Slice(String, CreateMode, Vec<SliceRange>),
}

impl Request {
    /// Exact encoded size in bytes (header + payload), derived from the real
    /// [`crate::wire`] encoder so the simulated network and the framing can
    /// never disagree.
    pub fn wire_size(&self) -> usize {
        crate::wire::encode_request(self).len()
    }
}

/// A server response; sized by [`Response::wire_size`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Success with no payload.
    Ok,
    /// A new file descriptor.
    Fd(Fd),
    /// Read data.
    Data(Vec<u8>),
    /// A byte count (writes) or offset (seeks).
    Count(u64),
    /// File attributes.
    Stat(Box<FileStat>),
    /// Directory listing.
    Entries(Vec<(String, Oid)>),
}

impl Response {
    /// Exact encoded size in bytes, derived from the real [`crate::wire`]
    /// encoder.
    pub fn wire_size(&self) -> usize {
        crate::wire::encode_response(&Ok(self.clone())).len()
    }
}

/// The data-manager-side request executor for one connection.
pub struct InvServer {
    client: InvClient,
}

impl InvServer {
    /// Creates a server session on `fs`.
    pub fn new(fs: &InversionFs) -> InvServer {
        InvServer {
            client: fs.client(),
        }
    }

    /// Direct access to the server-side client (the in-process benchmark
    /// path uses this; "the same files can be used simultaneously by
    /// dynamically-loaded code and by the more conventional client/server
    /// architecture").
    pub fn local(&mut self) -> &mut InvClient {
        &mut self.client
    }

    /// Whether this session has an explicit transaction open.
    pub fn in_transaction(&self) -> bool {
        self.client.in_transaction()
    }

    /// How many descriptors this session holds open.
    pub fn open_fd_count(&self) -> usize {
        self.client.open_fd_count()
    }

    /// Tears the session down after its connection dropped: aborts any
    /// in-flight transaction (releasing locks), discards buffered writes and
    /// reclaims every fd. Returns `true` when a transaction was aborted.
    pub fn disconnect(&mut self) -> bool {
        self.client.disconnect()
    }

    /// Executes one request, charging the RPC and its wire bytes to the
    /// file system's [`crate::InvStats`].
    pub fn handle(&mut self, req: Request) -> InvResult<Response> {
        {
            let stats = self.client.fs().stats();
            stats.rpcs.bump();
            stats.rpc_bytes_in.add(req.wire_size() as u64);
        }
        let resp = match req {
            Request::Begin => self.client.p_begin().map(|_| Response::Ok),
            Request::Commit => self.client.p_commit().map(|_| Response::Ok),
            Request::Abort => self.client.p_abort().map(|_| Response::Ok),
            Request::Creat(path, mode) => self.client.p_creat(&path, mode).map(Response::Fd),
            Request::Open(path, mode, ts) => self.client.p_open(&path, mode, ts).map(Response::Fd),
            Request::Close(fd) => self.client.p_close(fd).map(|_| Response::Ok),
            Request::Read(fd, len) => {
                let mut buf = vec![0u8; len];
                let n = self.client.p_read(fd, &mut buf)?;
                buf.truncate(n);
                Ok(Response::Data(buf))
            }
            Request::Write(fd, data) => self
                .client
                .p_write(fd, &data)
                .map(|n| Response::Count(n as u64)),
            Request::Lseek(fd, off, whence) => {
                self.client.p_lseek(fd, off, whence).map(Response::Count)
            }
            Request::Stat(path) => self
                .client
                .p_stat(&path, None)
                .map(|s| Response::Stat(Box::new(s))),
            Request::Mkdir(path) => self.client.p_mkdir(&path).map(|_| Response::Ok),
            Request::Unlink(path) => self.client.p_unlink(&path).map(|_| Response::Ok),
            Request::Readdir(path) => self.client.p_readdir(&path, None).map(Response::Entries),
            Request::Rename(from, to) => self.client.p_rename(&from, &to).map(|_| Response::Ok),
            Request::Undelete(path, t) => {
                self.client.p_undelete(&path, t).map(|_| Response::Ok)
            }
            Request::Slice(dest, mode, ranges) => self
                .client
                .p_slice(&dest, mode, &ranges)
                .map(|s| Response::Stat(Box::new(s))),
        }?;
        self.client
            .fs()
            .stats()
            .rpc_bytes_out
            .add(resp.wire_size() as u64);
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_executes_requests() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut srv = InvServer::new(&fs);
        srv.handle(Request::Begin).unwrap();
        let Response::Fd(fd) = srv
            .handle(Request::Creat("/f".into(), CreateMode::default()))
            .unwrap()
        else {
            panic!()
        };
        let Response::Count(n) = srv.handle(Request::Write(fd, b"abc".to_vec())).unwrap() else {
            panic!()
        };
        assert_eq!(n, 3);
        srv.handle(Request::Lseek(fd, 0, SeekWhence::Set)).unwrap();
        let Response::Data(d) = srv.handle(Request::Read(fd, 10)).unwrap() else {
            panic!()
        };
        assert_eq!(d, b"abc");
        srv.handle(Request::Close(fd)).unwrap();
        srv.handle(Request::Commit).unwrap();
        let Response::Stat(st) = srv.handle(Request::Stat("/f".into())).unwrap() else {
            panic!()
        };
        assert_eq!(st.size, 3);
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Request::Write(3, vec![0; 10]).wire_size();
        let big = Request::Write(3, vec![0; 8192]).wire_size();
        assert!(big > small + 8000);
        assert!(Response::Data(vec![0; 100]).wire_size() > Response::Ok.wire_size());
        assert!(Request::Stat("/a/long/path".into()).wire_size() > Request::Begin.wire_size());
        let entries = Response::Entries(vec![("file".into(), Oid(1))]).wire_size();
        assert!(entries > Response::Ok.wire_size());
    }

    #[test]
    fn wire_size_equals_real_encoding_for_every_variant() {
        let requests = vec![
            Request::Begin,
            Request::Commit,
            Request::Abort,
            Request::Creat("/a/b".into(), CreateMode::default()),
            Request::Open("/a/b".into(), OpenMode::ReadWrite, None),
            Request::Open("/a".into(), OpenMode::Read, Some(SimInstant::from_nanos(7))),
            Request::Close(3),
            Request::Read(3, 8192),
            Request::Write(3, vec![9u8; 777]),
            Request::Lseek(3, -1, SeekWhence::Cur),
            Request::Stat("/s".into()),
            Request::Mkdir("/d".into()),
            Request::Unlink("/u".into()),
            Request::Readdir("/".into()),
            Request::Rename("/old".into(), "/new".into()),
            Request::Undelete("/lost".into(), SimInstant::from_nanos(99)),
            Request::Slice(
                "/c".into(),
                CreateMode::default(),
                vec![SliceRange::new("/a", 0, 8128), SliceRange::new("/b", 1, 2)],
            ),
        ];
        for req in requests {
            assert_eq!(
                req.wire_size(),
                crate::wire::encode_request(&req).len(),
                "{req:?}"
            );
        }
        let stat = {
            let fs = InversionFs::open_in_memory().unwrap();
            let mut c = fs.client();
            c.p_creat("/f", CreateMode::default()).unwrap();
            c.p_stat("/f", None).unwrap()
        };
        let responses = vec![
            Response::Ok,
            Response::Fd(5),
            Response::Data(vec![1u8; 300]),
            Response::Count(42),
            Response::Stat(Box::new(stat)),
            Response::Entries(vec![("x".into(), Oid(1)), ("yy".into(), Oid(2))]),
        ];
        for resp in responses {
            assert_eq!(
                resp.wire_size(),
                crate::wire::encode_response(&Ok(resp.clone())).len(),
                "{resp:?}"
            );
        }
    }

    #[test]
    fn disconnect_aborts_and_reclaims() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut srv = InvServer::new(&fs);
        srv.handle(Request::Begin).unwrap();
        srv.handle(Request::Creat("/gone".into(), CreateMode::default()))
            .unwrap();
        assert!(srv.in_transaction());
        assert_eq!(srv.open_fd_count(), 1);
        assert!(srv.disconnect());
        assert!(!srv.in_transaction());
        assert_eq!(srv.open_fd_count(), 0);
        assert!(srv.handle(Request::Stat("/gone".into())).is_err());
        assert!(!srv.disconnect());
    }

    #[test]
    fn errors_propagate() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut srv = InvServer::new(&fs);
        assert!(srv.handle(Request::Stat("/missing".into())).is_err());
        assert!(srv.handle(Request::Close(42)).is_err());
    }
}
