//! The server side of client/server Inversion.
//!
//! "Strictly speaking, the Inversion file system is a small set of routines
//! that are compiled into the POSTGRES data manager. Requests for file
//! system data call these routines." [`InvServer`] is that data-manager-side
//! dispatcher: it owns a server-side [`crate::InvClient`] per connection and
//! executes decoded requests against it. The wire protocol lives in
//! [`crate::client`].

use minidb::Oid;
use simdev::SimInstant;

use crate::api::{Fd, InvClient, OpenMode, SeekWhence};
use crate::fs::{CreateMode, FileStat, InvResult, InversionFs};

/// A request as carried by the client/server protocol. Sizes on the wire
/// are computed by [`Request::wire_size`].
#[derive(Debug, Clone)]
pub enum Request {
    /// `p_begin`
    Begin,
    /// `p_commit`
    Commit,
    /// `p_abort`
    Abort,
    /// `p_creat(path, mode)`
    Creat(String, CreateMode),
    /// `p_open(path, mode, timestamp)`
    Open(String, OpenMode, Option<SimInstant>),
    /// `p_close(fd)`
    Close(Fd),
    /// `p_read(fd, len)`
    Read(Fd, usize),
    /// `p_write(fd, data)`
    Write(Fd, Vec<u8>),
    /// `p_lseek(fd, offset, whence)`
    Lseek(Fd, i64, SeekWhence),
    /// `p_stat(path)`
    Stat(String),
    /// `p_mkdir(path)`
    Mkdir(String),
    /// `p_unlink(path)`
    Unlink(String),
    /// `p_readdir(path)`
    Readdir(String),
}

impl Request {
    /// Approximate encoded size in bytes (header + payload), used to charge
    /// the simulated network.
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 40; // Op, fd, lengths, TCP framing overhead.
        HDR + match self {
            Request::Begin | Request::Commit | Request::Abort => 0,
            Request::Creat(p, _) => p.len() + 16,
            Request::Open(p, _, _) => p.len() + 16,
            Request::Close(_) => 4,
            Request::Read(_, _) => 12,
            Request::Write(_, data) => 12 + data.len(),
            Request::Lseek(_, _, _) => 16,
            Request::Stat(p) | Request::Mkdir(p) | Request::Unlink(p) | Request::Readdir(p) => {
                p.len()
            }
        }
    }
}

/// A server response; sized by [`Response::wire_size`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Success with no payload.
    Ok,
    /// A new file descriptor.
    Fd(Fd),
    /// Read data.
    Data(Vec<u8>),
    /// A byte count (writes) or offset (seeks).
    Count(u64),
    /// File attributes.
    Stat(Box<FileStat>),
    /// Directory listing.
    Entries(Vec<(String, Oid)>),
}

impl Response {
    /// Approximate encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 40;
        HDR + match self {
            Response::Ok => 0,
            Response::Fd(_) => 4,
            Response::Data(d) => d.len(),
            Response::Count(_) => 8,
            Response::Stat(_) => 96,
            Response::Entries(es) => es.iter().map(|(n, _)| n.len() + 8).sum(),
        }
    }
}

/// The data-manager-side request executor for one connection.
pub struct InvServer {
    client: InvClient,
}

impl InvServer {
    /// Creates a server session on `fs`.
    pub fn new(fs: &InversionFs) -> InvServer {
        InvServer {
            client: fs.client(),
        }
    }

    /// Direct access to the server-side client (the in-process benchmark
    /// path uses this; "the same files can be used simultaneously by
    /// dynamically-loaded code and by the more conventional client/server
    /// architecture").
    pub fn local(&mut self) -> &mut InvClient {
        &mut self.client
    }

    /// Executes one request, charging the RPC and its wire bytes to the
    /// file system's [`crate::InvStats`].
    pub fn handle(&mut self, req: Request) -> InvResult<Response> {
        {
            let stats = self.client.fs().stats();
            stats.rpcs.bump();
            stats.rpc_bytes_in.add(req.wire_size() as u64);
        }
        let resp = match req {
            Request::Begin => self.client.p_begin().map(|_| Response::Ok),
            Request::Commit => self.client.p_commit().map(|_| Response::Ok),
            Request::Abort => self.client.p_abort().map(|_| Response::Ok),
            Request::Creat(path, mode) => self.client.p_creat(&path, mode).map(Response::Fd),
            Request::Open(path, mode, ts) => self.client.p_open(&path, mode, ts).map(Response::Fd),
            Request::Close(fd) => self.client.p_close(fd).map(|_| Response::Ok),
            Request::Read(fd, len) => {
                let mut buf = vec![0u8; len];
                let n = self.client.p_read(fd, &mut buf)?;
                buf.truncate(n);
                Ok(Response::Data(buf))
            }
            Request::Write(fd, data) => self
                .client
                .p_write(fd, &data)
                .map(|n| Response::Count(n as u64)),
            Request::Lseek(fd, off, whence) => {
                self.client.p_lseek(fd, off, whence).map(Response::Count)
            }
            Request::Stat(path) => self
                .client
                .p_stat(&path, None)
                .map(|s| Response::Stat(Box::new(s))),
            Request::Mkdir(path) => self.client.p_mkdir(&path).map(|_| Response::Ok),
            Request::Unlink(path) => self.client.p_unlink(&path).map(|_| Response::Ok),
            Request::Readdir(path) => self.client.p_readdir(&path, None).map(Response::Entries),
        }?;
        self.client
            .fs()
            .stats()
            .rpc_bytes_out
            .add(resp.wire_size() as u64);
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_executes_requests() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut srv = InvServer::new(&fs);
        srv.handle(Request::Begin).unwrap();
        let Response::Fd(fd) = srv
            .handle(Request::Creat("/f".into(), CreateMode::default()))
            .unwrap()
        else {
            panic!()
        };
        let Response::Count(n) = srv.handle(Request::Write(fd, b"abc".to_vec())).unwrap() else {
            panic!()
        };
        assert_eq!(n, 3);
        srv.handle(Request::Lseek(fd, 0, SeekWhence::Set)).unwrap();
        let Response::Data(d) = srv.handle(Request::Read(fd, 10)).unwrap() else {
            panic!()
        };
        assert_eq!(d, b"abc");
        srv.handle(Request::Close(fd)).unwrap();
        srv.handle(Request::Commit).unwrap();
        let Response::Stat(st) = srv.handle(Request::Stat("/f".into())).unwrap() else {
            panic!()
        };
        assert_eq!(st.size, 3);
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Request::Write(3, vec![0; 10]).wire_size();
        let big = Request::Write(3, vec![0; 8192]).wire_size();
        assert!(big > small + 8000);
        assert!(Response::Data(vec![0; 100]).wire_size() > Response::Ok.wire_size());
        assert!(Request::Stat("/a/long/path".into()).wire_size() > Request::Begin.wire_size());
        let entries = Response::Entries(vec![("file".into(), Oid(1))]).wire_size();
        assert!(entries > Response::Ok.wire_size());
    }

    #[test]
    fn errors_propagate() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut srv = InvServer::new(&fs);
        assert!(srv.handle(Request::Stat("/missing".into())).is_err());
        assert!(srv.handle(Request::Close(42)).is_err());
    }
}
