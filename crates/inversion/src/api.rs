//! The client interface: the paper's Figure 2 routines.
//!
//! ```text
//! int p_creat(char *path, int mode)
//! int p_open(char *fname, int mode, int timestamp)
//! int p_close(int fd)
//! int p_read(int fd, char *buf, int len)
//! int p_write(int fd, char *buf, int len)
//! int p_lseek(int fd, long offset_high, long offset_low, int whence)
//! p_begin() / p_commit() / p_abort()
//! ```
//!
//! Differences from UNIX, as the paper lists them: `p_open` takes a
//! timestamp ("the user may ask to see any historical state of the file
//! system"; historical files may not be opened for writing), `p_lseek`
//! takes a 64-bit offset (files may be 17.6 TB), and the create mode encodes
//! the device the file should live on. "Neither POSTGRES nor Inversion
//! supports nested transactions, so a single application program may only
//! have one transaction active at any time"; operations issued outside an
//! explicit transaction auto-commit individually.

use std::collections::HashMap;

use minidb::{Datum, DbError, Oid, Session, Snapshot, Tid};
use simdev::SimInstant;

use crate::chunk::{self, Coalescer, CHUNK_SIZE};
use crate::compress;
use crate::fs::{
    stat_to_row, CreateMode, FileKind, FileStat, InvError, InvResult, InversionFs, SliceRange,
    A_ATIME, A_MTIME, A_SIZE,
};

/// A file descriptor.
pub type Fd = i32;

/// Open modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read only.
    Read,
    /// Read and write.
    ReadWrite,
}

/// `whence` values for [`InvClient::p_lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekWhence {
    /// From the start of the file.
    Set,
    /// From the current offset.
    Cur,
    /// From the end of the file.
    End,
}

/// Per-descriptor state.
struct FileState {
    stat: FileStat,
    mode: OpenMode,
    offset: u64,
    /// `Some` for historical opens: all reads go through this snapshot.
    asof: Option<Snapshot>,
    coalescer: Coalescer,
    meta_dirty: bool,
    accessed: bool,
    /// Set after an abort: the cached stat may reflect rolled-back state.
    stale: bool,
}

/// One application program's connection to an [`InversionFs`].
pub struct InvClient {
    fs: InversionFs,
    session: Option<Session>,
    fds: HashMap<Fd, FileState>,
    next_fd: Fd,
}

impl InvClient {
    pub(crate) fn new(fs: InversionFs) -> InvClient {
        InvClient {
            fs,
            session: None,
            fds: HashMap::new(),
            next_fd: 3,
        }
    }

    /// The file system this client talks to.
    pub fn fs(&self) -> &InversionFs {
        &self.fs
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.session.is_some()
    }

    /// How many file descriptors are currently open.
    pub fn open_fd_count(&self) -> usize {
        self.fds.len()
    }

    /// Tears the client down after its connection vanished: any open
    /// transaction is aborted (releasing its locks), buffered writes are
    /// discarded, and every descriptor is reclaimed. Returns `true` when an
    /// in-flight transaction had to be aborted.
    pub fn disconnect(&mut self) -> bool {
        let aborted = match self.session.take() {
            Some(mut s) => {
                s.abort().ok();
                true
            }
            None => false,
        };
        self.fds.clear();
        aborted
    }

    /// Begins a transaction covering subsequent operations.
    pub fn p_begin(&mut self) -> InvResult<()> {
        if self.session.is_some() {
            return Err(InvError::Db(DbError::TransactionActive));
        }
        self.session = Some(self.fs.db().begin()?);
        Ok(())
    }

    /// Commits the open transaction: pending coalesced writes and metadata
    /// updates are flushed, then everything commits atomically.
    pub fn p_commit(&mut self) -> InvResult<()> {
        let Some(mut s) = self.session.take() else {
            return Err(InvError::Db(DbError::NoTransaction));
        };
        match flush_all(&self.fs, &mut s, &mut self.fds) {
            Ok(()) => {
                s.commit()?;
                Ok(())
            }
            Err(e) => {
                s.abort().ok();
                mark_stale(&mut self.fds);
                Err(e)
            }
        }
    }

    /// Aborts the open transaction; every change since [`InvClient::p_begin`]
    /// — data and metadata — vanishes. Buffered writes are discarded.
    pub fn p_abort(&mut self) -> InvResult<()> {
        let Some(mut s) = self.session.take() else {
            return Err(InvError::Db(DbError::NoTransaction));
        };
        s.abort()?;
        mark_stale(&mut self.fds);
        Ok(())
    }

    /// Runs `f` inside the open transaction, or inside a fresh auto-commit
    /// transaction when none is open.
    fn run<T>(
        &mut self,
        f: impl FnOnce(&InversionFs, &mut Session, &mut HashMap<Fd, FileState>) -> InvResult<T>,
    ) -> InvResult<T> {
        if let Some(s) = self.session.as_mut() {
            return f(&self.fs, s, &mut self.fds);
        }
        let mut s = self.fs.db().begin()?;
        let out = f(&self.fs, &mut s, &mut self.fds);
        match out {
            Ok(v) => match flush_all(&self.fs, &mut s, &mut self.fds).and_then(|_| {
                s.commit()?;
                Ok(())
            }) {
                Ok(()) => Ok(v),
                Err(e) => {
                    mark_stale(&mut self.fds);
                    Err(e)
                }
            },
            Err(e) => {
                s.abort().ok();
                mark_stale(&mut self.fds);
                Err(e)
            }
        }
    }

    /// Creates a regular file and opens it read/write.
    ///
    /// The mode "encodes the device on which the file should reside", the
    /// owner, an optional registered file type, chunk compression, and the
    /// no-history flag.
    pub fn p_creat(&mut self, path: &str, mode: CreateMode) -> InvResult<Fd> {
        self.fs.stats.creats.bump();
        let fd = self.next_fd;
        self.next_fd += 1;
        let path = path.to_string();
        self.run(move |fs, s, fds| {
            let stat = fs.create_file_at(s, &path, &mode)?;
            fds.insert(
                fd,
                FileState {
                    stat,
                    mode: OpenMode::ReadWrite,
                    offset: 0,
                    asof: None,
                    coalescer: Coalescer::new(),
                    meta_dirty: false,
                    accessed: false,
                    stale: false,
                },
            );
            Ok(fd)
        })
    }

    /// Opens an existing file. With `timestamp`, opens its state as of that
    /// instant — read-only, per the paper.
    pub fn p_open(
        &mut self,
        path: &str,
        mode: OpenMode,
        timestamp: Option<SimInstant>,
    ) -> InvResult<Fd> {
        self.fs.stats.opens.bump();
        if timestamp.is_some() && mode != OpenMode::Read {
            return Err(InvError::Invalid(
                "historical files may not be opened for writing".into(),
            ));
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        let path = path.to_string();
        self.run(move |fs, s, fds| {
            let snap = timestamp.map(Snapshot::AsOf);
            let oid = fs.resolve(s, &path, snap.as_ref())?;
            let stat = fs.stat_oid(s, oid, snap.as_ref())?;
            if stat.kind == FileKind::Directory {
                return Err(InvError::IsADirectory(path.clone()));
            }
            fds.insert(
                fd,
                FileState {
                    stat,
                    mode,
                    offset: 0,
                    asof: snap,
                    coalescer: Coalescer::new(),
                    meta_dirty: false,
                    accessed: false,
                    stale: false,
                },
            );
            Ok(fd)
        })
    }

    /// Closes a descriptor, flushing buffered writes and metadata.
    pub fn p_close(&mut self, fd: Fd) -> InvResult<()> {
        self.fs.stats.closes.bump();
        if !self.fds.contains_key(&fd) {
            return Err(InvError::BadFd(fd));
        }
        let res = self.run(|fs, s, fds| {
            let st = fds.get_mut(&fd).expect("checked above");
            flush_fd(fs, s, st, true)
        });
        self.fds.remove(&fd);
        res
    }

    /// Reads into `buf` at the current offset; returns bytes read (short at
    /// end of file).
    pub fn p_read(&mut self, fd: Fd, buf: &mut [u8]) -> InvResult<usize> {
        self.fs.stats.reads.bump();
        self.run(|fs, s, fds| {
            let st = fds.get_mut(&fd).ok_or(InvError::BadFd(fd))?;
            refresh_if_stale(fs, s, st)?;
            // The reader must see its own buffered writes.
            if st.coalescer.overlaps(st.offset, buf.len()) {
                flush_coalescer(fs, s, st)?;
            }
            let remaining = st.stat.size.saturating_sub(st.offset);
            let len = (buf.len() as u64).min(remaining) as usize;
            let mut done = 0usize;
            for (chunkno, start, take) in chunk::split_range(st.offset, len) {
                match fetch_chunk(fs, s, &st.stat, chunkno, st.asof.as_ref())? {
                    Some(content) => {
                        // The stored chunk may be shorter than the read
                        // range (sparse writes produce short chunks); the
                        // uncovered remainder reads as zeros.
                        let end = (start + take).min(content.len());
                        let have = end.saturating_sub(start);
                        if have > 0 {
                            buf[done..done + have].copy_from_slice(&content[start..end]);
                        }
                        buf[done + have..done + take].fill(0);
                    }
                    None => buf[done..done + take].fill(0),
                }
                done += take;
            }
            st.offset += len as u64;
            st.accessed = true;
            fs.stats.bytes_read.add(len as u64);
            Ok(len)
        })
    }

    /// Writes `data` at the current offset; returns bytes written.
    ///
    /// "Multiple small sequential writes during a single transaction are
    /// coalesced to maximize the size of the chunk stored in each database
    /// record."
    pub fn p_write(&mut self, fd: Fd, data: &[u8]) -> InvResult<usize> {
        self.fs.stats.writes.bump();
        self.run(|fs, s, fds| {
            let st = fds.get_mut(&fd).ok_or(InvError::BadFd(fd))?;
            if st.mode != OpenMode::ReadWrite || st.asof.is_some() {
                return Err(InvError::ReadOnlyFd(fd));
            }
            refresh_if_stale(fs, s, st)?;
            let mut written = 0usize;
            while written < data.len() {
                let was_active = st.coalescer.is_active();
                let n = st
                    .coalescer
                    .absorb(st.offset + written as u64, &data[written..]);
                if n == 0 {
                    flush_coalescer(fs, s, st)?;
                    continue;
                }
                if was_active {
                    fs.stats.chunks_coalesced.bump();
                }
                written += n;
                // Full chunk: flush eagerly so the buffer stays one chunk.
                if let Some((_, start, bytes)) = st.coalescer.pending() {
                    if start + bytes.len() == CHUNK_SIZE {
                        flush_coalescer(fs, s, st)?;
                    }
                }
            }
            st.offset += data.len() as u64;
            st.stat.size = st.stat.size.max(st.offset);
            st.meta_dirty = true;
            fs.stats.bytes_written.add(data.len() as u64);
            Ok(data.len())
        })
    }

    /// Repositions the file offset. 64-bit offsets replace the paper's
    /// `offset_high`/`offset_low` pair.
    pub fn p_lseek(&mut self, fd: Fd, offset: i64, whence: SeekWhence) -> InvResult<u64> {
        self.fs.stats.seeks.bump();
        let st = self.fds.get_mut(&fd).ok_or(InvError::BadFd(fd))?;
        let base = match whence {
            SeekWhence::Set => 0i64,
            SeekWhence::Cur => st.offset as i64,
            SeekWhence::End => st.stat.size as i64,
        };
        let target = base
            .checked_add(offset)
            .filter(|t| *t >= 0)
            .ok_or_else(|| {
                InvError::Invalid(format!("seek to negative or overflowing offset {offset}"))
            })?;
        st.offset = target as u64;
        Ok(st.offset)
    }

    /// Truncates an open descriptor's file to `len` bytes. Like every other
    /// update this is no-overwrite: removed chunks become dead versions and
    /// remain reachable through time travel.
    pub fn p_ftruncate(&mut self, fd: Fd, len: u64) -> InvResult<()> {
        self.run(|fs, s, fds| {
            let st = fds.get_mut(&fd).ok_or(InvError::BadFd(fd))?;
            if st.mode != OpenMode::ReadWrite || st.asof.is_some() {
                return Err(InvError::ReadOnlyFd(fd));
            }
            refresh_if_stale(fs, s, st)?;
            flush_coalescer(fs, s, st)?;
            if len >= st.stat.size {
                if len > st.stat.size {
                    st.stat.size = len; // Grow: a hole appears at the end.
                    st.meta_dirty = true;
                }
                return Ok(());
            }
            let keep_chunks = len.div_ceil(CHUNK_SIZE as u64) as u32;
            // Delete whole chunks beyond the new end.
            let mut victims = Vec::new();
            s.index_scan_range(
                st.stat.chunkidx,
                Some(&[Datum::Int4(keep_chunks as i32)]),
                None,
                |tid, _row| {
                    victims.push(tid);
                    Ok(true)
                },
            )?;
            for tid in victims {
                s.delete(st.stat.datarel, tid)?;
            }
            // Trim the final partial chunk, if any.
            let tail = (len % CHUNK_SIZE as u64) as usize;
            if tail > 0 {
                let last = chunk::chunk_of(len - 1);
                if let Some(content) = fetch_chunk(fs, s, &st.stat, last, None)? {
                    if content.len() > tail {
                        write_chunk_exact(fs, s, &st.stat, last, &content[..tail])?;
                    }
                }
            }
            st.stat.size = len;
            st.meta_dirty = true;
            st.offset = st.offset.min(len);
            Ok(())
        })
    }

    /// Stats an open descriptor (reflects buffered writes).
    pub fn p_fstat(&mut self, fd: Fd) -> InvResult<FileStat> {
        self.fs.stats.stat_calls.bump();
        let st = self.fds.get(&fd).ok_or(InvError::BadFd(fd))?;
        Ok(st.stat.clone())
    }

    /// Stats a path, optionally as of a past instant.
    pub fn p_stat(&mut self, path: &str, timestamp: Option<SimInstant>) -> InvResult<FileStat> {
        self.fs.stats.stat_calls.bump();
        let path = path.to_string();
        self.run(move |fs, s, _| {
            let snap = timestamp.map(Snapshot::AsOf);
            let oid = fs.resolve(s, &path, snap.as_ref())?;
            fs.stat_oid(s, oid, snap.as_ref())
        })
    }

    /// Creates a directory.
    pub fn p_mkdir(&mut self, path: &str) -> InvResult<Oid> {
        self.fs.stats.mkdirs.bump();
        let path = path.to_string();
        self.run(move |fs, s, _| fs.mkdir_at(s, &path, "root"))
    }

    /// Lists a directory, optionally as of a past instant.
    pub fn p_readdir(
        &mut self,
        path: &str,
        timestamp: Option<SimInstant>,
    ) -> InvResult<Vec<(String, Oid)>> {
        self.fs.stats.readdirs.bump();
        let path = path.to_string();
        self.run(move |fs, s, _| {
            let snap = timestamp.map(Snapshot::AsOf);
            let dir = fs.resolve(s, &path, snap.as_ref())?;
            fs.readdir(s, dir, snap.as_ref())
        })
    }

    /// Removes a name (directories must be empty). The data remain
    /// reachable through time travel; see [`InvClient::p_undelete`].
    pub fn p_unlink(&mut self, path: &str) -> InvResult<()> {
        self.fs.stats.unlinks.bump();
        let path = path.to_string();
        self.run(move |fs, s, _| fs.unlink_at(s, &path))
    }

    /// Renames a file or directory.
    pub fn p_rename(&mut self, from: &str, to: &str) -> InvResult<()> {
        self.fs.stats.renames.bump();
        let from = from.to_string();
        let to = to.to_string();
        self.run(move |fs, s, _| fs.rename_at(s, &from, &to))
    }

    /// Resurrects `path` exactly as it was at `t` — name, attributes, and
    /// contents. "The ability to see all of history can be important; for
    /// example, it allows users to undelete files removed accidentally."
    pub fn p_undelete(&mut self, path: &str, t: SimInstant) -> InvResult<()> {
        let path = path.to_string();
        self.run(move |fs, s, _| {
            let (cur_parent, cur_name) = fs.resolve_parent(s, &path, None)?;
            if !fs.name_free_for_write(s, cur_parent, &cur_name)? {
                return Err(InvError::Exists(path.clone()));
            }
            let snap = Snapshot::AsOf(t);
            let oid = fs.resolve(s, &path, Some(&snap))?;
            let stat_then = fs.stat_oid(s, oid, Some(&snap))?;
            if stat_then.kind == FileKind::Directory {
                // Directories: restore the entry only.
                let (parent, name) = fs.resolve_parent(s, &path, None)?;
                s.insert(
                    fs.rels.naming,
                    vec![Datum::Text(name), Datum::Oid(parent.0), Datum::Oid(oid.0)],
                )?;
                s.insert(fs.rels.fileatt, stat_to_row(&stat_then))?;
                return Ok(());
            }
            // Restore the content to its state at `t`.
            let bytes_then = read_file_bytes(fs, s, &stat_then, Some(&snap))?;
            let nchunks = bytes_then.len().div_ceil(CHUNK_SIZE) as u32;
            for (chunkno, _, take) in chunk::split_range(0, bytes_then.len()) {
                let startb = chunk::chunk_start(chunkno) as usize;
                write_chunk_exact(
                    fs,
                    s,
                    &stat_then,
                    chunkno,
                    &bytes_then[startb..startb + take],
                )?;
            }
            // Delete any current chunks past the restored length.
            let mut victims: Vec<Tid> = Vec::new();
            s.index_scan_range(
                stat_then.chunkidx,
                Some(&[Datum::Int4(nchunks as i32)]),
                None,
                |tid, _row| {
                    victims.push(tid);
                    Ok(true)
                },
            )?;
            for tid in victims {
                s.delete(stat_then.datarel, tid)?;
            }
            // Restore the namespace entries.
            let (parent, name) = fs.resolve_parent(s, &path, None)?;
            s.insert(
                fs.rels.naming,
                vec![Datum::Text(name), Datum::Oid(parent.0), Datum::Oid(oid.0)],
            )?;
            s.insert(fs.rels.fileatt, stat_to_row(&stat_then))?;
            Ok(())
        })
    }

    /// Composes a new file at `dest` from byte ranges of existing files
    /// (WTF-style slicing). Because file data are ordinary `(chunkno, data)`
    /// rows, a range that covers a whole chunk and lands chunk-aligned in
    /// the destination is *shared*: the stored row is copied between chunk
    /// tables verbatim — no decompression, no re-encoding, no byte copy —
    /// and the `chunks_shared` counter in `inv_stat` proves it. Unaligned
    /// remainders fall back to ordinary read-modify-write copies.
    ///
    /// Rows of self-identifying files embed their file oid and chunk
    /// number, so they can never be shared; such ranges always copy.
    /// Ranges must lie inside their source file (`offset + len <= size`).
    pub fn p_slice(
        &mut self,
        dest: &str,
        mode: CreateMode,
        ranges: &[SliceRange],
    ) -> InvResult<FileStat> {
        self.fs.stats.slices.bump();
        let dest = dest.to_string();
        let ranges = ranges.to_vec();
        self.run(move |fs, s, _| {
            // Validate every source up front so a bad range cannot leave a
            // half-composed destination inside an explicit transaction.
            let mut srcs = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let oid = fs.resolve(s, &r.path, None)?;
                let src = fs.stat_oid(s, oid, None)?;
                if src.kind != FileKind::Regular {
                    return Err(InvError::IsADirectory(r.path.clone()));
                }
                let end = r.offset.checked_add(r.len).ok_or_else(|| {
                    InvError::Invalid(format!("slice range overflows: {}+{}", r.offset, r.len))
                })?;
                if end > src.size {
                    return Err(InvError::Invalid(format!(
                        "slice range {}..{end} exceeds {} ({} bytes)",
                        r.offset, r.path, src.size
                    )));
                }
                srcs.push(src);
            }
            let dst = fs.create_file_at(s, &dest, &mode)?;
            let mut dest_off: u64 = 0;
            for (r, src) in ranges.iter().zip(&srcs) {
                // Self-identifying rows embed (oid, chunkno): they only
                // verify in their original position. Compression must match
                // or the stored encoding differs between the two tables.
                let shareable = !src.self_identifying
                    && !dst.self_identifying
                    && src.compressed == dst.compressed;
                for (chunkno, start, take) in chunk::split_range(r.offset, r.len as usize) {
                    let aligned = start == 0
                        && take == CHUNK_SIZE
                        && dest_off.is_multiple_of(CHUNK_SIZE as u64);
                    if shareable && aligned {
                        // Zero-copy: move the stored row as-is. A missing
                        // source row is a hole, which stays a hole.
                        let key = [Datum::Int4(chunkno as i32)];
                        if let Some((_, row)) = s.index_scan_eq(src.chunkidx, &key)?.into_iter().next()
                        {
                            let raw = row[1].as_bytes()?.to_vec();
                            let dchunk = chunk::chunk_of(dest_off);
                            s.insert(
                                dst.datarel,
                                vec![Datum::Int4(dchunk as i32), Datum::Bytes(raw)],
                            )?;
                            fs.stats.chunks_shared.bump();
                        }
                    } else {
                        let piece = match fetch_chunk(fs, s, src, chunkno, None)? {
                            Some(content) => {
                                let mut v = vec![0u8; take];
                                let end = (start + take).min(content.len());
                                if end > start {
                                    v[..end - start].copy_from_slice(&content[start..end]);
                                }
                                v
                            }
                            None => vec![0u8; take],
                        };
                        let mut done = 0usize;
                        for (dchunk, dstart, dtake) in chunk::split_range(dest_off, take) {
                            write_chunk(fs, s, &dst, dchunk, dstart, &piece[done..done + dtake])?;
                            done += dtake;
                        }
                    }
                    dest_off += take as u64;
                }
            }
            // Record the composed size.
            let Some((tid, mut row)) = fs.fileatt_row(s, dst.oid, None)? else {
                return Err(InvError::NoSuchPath(format!("oid {}", dst.oid)));
            };
            let now = fs.db().now();
            row[A_SIZE] = Datum::Int8(dest_off as i64);
            row[A_MTIME] = Datum::Time(now.as_nanos());
            s.update(fs.rels.fileatt, tid, row)?;
            let mut out = dst;
            out.size = dest_off;
            out.mtime = now;
            Ok(out)
        })
    }

    /// Reads a whole file into memory (convenience; used by registered file
    /// functions and tests).
    pub fn read_to_vec(&mut self, path: &str, timestamp: Option<SimInstant>) -> InvResult<Vec<u8>> {
        let path = path.to_string();
        self.run(move |fs, s, _| {
            let snap = timestamp.map(Snapshot::AsOf);
            let oid = fs.resolve(s, &path, snap.as_ref())?;
            let stat = fs.stat_oid(s, oid, snap.as_ref())?;
            read_file_bytes(fs, s, &stat, snap.as_ref())
        })
    }

    /// Creates and writes a whole file in one call, atomically: either the
    /// complete file exists or nothing does (convenience).
    pub fn write_all(&mut self, path: &str, mode: CreateMode, data: &[u8]) -> InvResult<()> {
        let explicit = self.in_transaction();
        if !explicit {
            self.p_begin()?;
        }
        let body = (|| {
            let fd = self.p_creat(path, mode)?;
            self.p_write(fd, data)?;
            self.p_close(fd)
        })();
        if !explicit {
            match body {
                Ok(()) => self.p_commit()?,
                Err(e) => {
                    self.p_abort().ok();
                    return Err(e);
                }
            }
        } else {
            body?;
        }
        Ok(())
    }
}

impl Drop for InvClient {
    fn drop(&mut self) {
        if let Some(mut s) = self.session.take() {
            s.abort().ok();
        }
    }
}

fn mark_stale(fds: &mut HashMap<Fd, FileState>) {
    for st in fds.values_mut() {
        st.coalescer.take();
        st.meta_dirty = false;
        st.accessed = false;
        st.stale = true;
    }
}

fn refresh_if_stale(fs: &InversionFs, s: &mut Session, st: &mut FileState) -> InvResult<()> {
    if st.stale {
        st.stat = fs.stat_oid(s, st.stat.oid, st.asof.as_ref())?;
        st.stale = false;
    }
    Ok(())
}

/// Flushes one descriptor's buffered chunk and metadata into the session.
/// `closing` additionally persists a pure access-time change; like
/// contemporary UNIX systems, Inversion defers atime-only updates to close
/// rather than forcing a metadata write per read.
fn flush_fd(fs: &InversionFs, s: &mut Session, st: &mut FileState, closing: bool) -> InvResult<()> {
    flush_coalescer(fs, s, st)?;
    flush_meta(fs, s, st, closing)
}

/// Flushes every descriptor (transaction boundary).
fn flush_all(fs: &InversionFs, s: &mut Session, fds: &mut HashMap<Fd, FileState>) -> InvResult<()> {
    for st in fds.values_mut() {
        flush_fd(fs, s, st, false)?;
    }
    Ok(())
}

fn flush_coalescer(fs: &InversionFs, s: &mut Session, st: &mut FileState) -> InvResult<()> {
    if let Some((chunkno, start, bytes)) = st.coalescer.take() {
        fs.stats.coalesce_flushes.bump();
        write_chunk(fs, s, &st.stat, chunkno, start, &bytes)?;
    }
    Ok(())
}

/// Writes metadata (size, mtime, atime) if anything changed. Pure
/// atime-only changes are deferred until `closing`.
fn flush_meta(
    fs: &InversionFs,
    s: &mut Session,
    st: &mut FileState,
    closing: bool,
) -> InvResult<()> {
    let atime_due = st.accessed && closing;
    if !st.meta_dirty && !atime_due {
        return Ok(());
    }
    if st.asof.is_some() {
        // Historical descriptors never write back (not even atime).
        st.accessed = false;
        return Ok(());
    }
    let Some((tid, mut row)) = fs.fileatt_row(s, st.stat.oid, None)? else {
        return Err(InvError::NoSuchPath(format!("oid {}", st.stat.oid)));
    };
    let now = fs.db().now();
    if st.meta_dirty {
        row[A_SIZE] = Datum::Int8(st.stat.size as i64);
        row[A_MTIME] = Datum::Time(now.as_nanos());
        st.stat.mtime = now;
    }
    row[A_ATIME] = Datum::Time(now.as_nanos());
    st.stat.atime = now;
    s.update(fs.rels.fileatt, tid, row)?;
    st.meta_dirty = false;
    st.accessed = false;
    Ok(())
}

/// Fetches one chunk's (decompressed) content under the given snapshot.
pub(crate) fn fetch_chunk(
    fs: &InversionFs,
    s: &mut Session,
    stat: &FileStat,
    chunkno: u32,
    snap: Option<&Snapshot>,
) -> InvResult<Option<Vec<u8>>> {
    fs.stats.chunk_reads.bump();
    let key = [Datum::Int4(chunkno as i32)];
    let hits = match snap {
        Some(sp) => s.index_scan_eq_with(stat.chunkidx, &key, sp)?,
        None => s.index_scan_eq(stat.chunkidx, &key)?,
    };
    let Some((_, row)) = hits.into_iter().next() else {
        return Ok(None);
    };
    decode_chunk(stat, chunkno, &row).map(Some)
}

/// Self-identifying tag: magic, file oid, chunk number, payload checksum.
const SELF_ID_MAGIC: u32 = 0x1253_4944; // "\x12SID"
const SELF_ID_LEN: usize = 16;

fn payload_checksum(data: &[u8]) -> u32 {
    // FNV-1a: cheap, deterministic, adequate for detecting media garbage.
    let mut h = 0x811C_9DC5u32;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(16_777_619);
    }
    h
}

fn tag_chunk(stat: &FileStat, chunkno: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SELF_ID_LEN + payload.len());
    out.extend_from_slice(&SELF_ID_MAGIC.to_le_bytes());
    out.extend_from_slice(&stat.oid.0.to_le_bytes());
    out.extend_from_slice(&chunkno.to_le_bytes());
    out.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies and strips a self-identifying tag. "Every block could be tagged
/// with its file identifier and block number" — plus a checksum, so garbage
/// written by failing hardware is detected instead of returned.
fn untag_chunk<'a>(stat: &FileStat, chunkno: u32, raw: &'a [u8]) -> InvResult<&'a [u8]> {
    let corrupt = |what: &str| {
        InvError::Db(DbError::Corrupt(format!(
            "self-identifying check failed for file {} chunk {chunkno}: {what}",
            stat.oid
        )))
    };
    if raw.len() < SELF_ID_LEN {
        return Err(corrupt("tag truncated"));
    }
    let magic = u32::from_le_bytes(raw[0..4].try_into().unwrap());
    let oid = u32::from_le_bytes(raw[4..8].try_into().unwrap());
    let stored_chunk = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    let sum = u32::from_le_bytes(raw[12..16].try_into().unwrap());
    if magic != SELF_ID_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if oid != stat.oid.0 {
        return Err(corrupt("block belongs to another file"));
    }
    if stored_chunk != chunkno {
        return Err(corrupt("block is a different chunk"));
    }
    let payload = &raw[SELF_ID_LEN..];
    if payload_checksum(payload) != sum {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(payload)
}

fn decode_chunk(stat: &FileStat, chunkno: u32, row: &[Datum]) -> InvResult<Vec<u8>> {
    let mut raw = row[1].as_bytes()?;
    if stat.self_identifying {
        raw = untag_chunk(stat, chunkno, raw)?;
    }
    if stat.compressed {
        compress::decompress(raw)
            .ok_or_else(|| InvError::Db(DbError::Corrupt("bad compressed chunk".into())))
    } else {
        Ok(raw.to_vec())
    }
}

/// Read-modify-writes a byte range within one chunk.
pub(crate) fn write_chunk(
    fs: &InversionFs,
    s: &mut Session,
    stat: &FileStat,
    chunkno: u32,
    start: usize,
    data: &[u8],
) -> InvResult<()> {
    let key = [Datum::Int4(chunkno as i32)];
    let existing = s.index_scan_eq(stat.chunkidx, &key)?;
    let (tid, mut content) = match existing.into_iter().next() {
        Some((tid, row)) => (Some(tid), decode_chunk(stat, chunkno, &row)?),
        None => (None, Vec::new()),
    };
    if content.len() < start + data.len() {
        content.resize(start + data.len(), 0);
    }
    content[start..start + data.len()].copy_from_slice(data);
    store_chunk(fs, s, stat, chunkno, tid, content)
}

/// Replaces one chunk's content exactly (truncating semantics).
pub(crate) fn write_chunk_exact(
    fs: &InversionFs,
    s: &mut Session,
    stat: &FileStat,
    chunkno: u32,
    content: &[u8],
) -> InvResult<()> {
    let key = [Datum::Int4(chunkno as i32)];
    let tid = s
        .index_scan_eq(stat.chunkidx, &key)?
        .into_iter()
        .next()
        .map(|(tid, _)| tid);
    store_chunk(fs, s, stat, chunkno, tid, content.to_vec())
}

fn store_chunk(
    fs: &InversionFs,
    s: &mut Session,
    stat: &FileStat,
    chunkno: u32,
    tid: Option<Tid>,
    content: Vec<u8>,
) -> InvResult<()> {
    fs.stats.chunk_writes.bump();
    let mut stored = if stat.compressed {
        compress::compress(&content)
    } else {
        content
    };
    if stat.self_identifying {
        stored = tag_chunk(stat, chunkno, &stored);
    }
    let row = vec![Datum::Int4(chunkno as i32), Datum::Bytes(stored)];
    match tid {
        Some(tid) => {
            s.update(stat.datarel, tid, row)?;
        }
        None => {
            s.insert(stat.datarel, row)?;
        }
    }
    Ok(())
}

impl InversionFs {
    /// Reads a whole file's bytes by oid within an existing session — the
    /// path registered file functions use to inspect file contents *inside*
    /// the data manager.
    pub fn read_file(
        &self,
        s: &mut Session,
        oid: Oid,
        snap: Option<&Snapshot>,
    ) -> InvResult<Vec<u8>> {
        let stat = self.stat_oid(s, oid, snap)?;
        if stat.kind != FileKind::Regular {
            return Err(InvError::IsADirectory(format!("oid {oid}")));
        }
        read_file_bytes(self, s, &stat, snap)
    }
}

/// Reads an entire file's bytes under a snapshot.
pub(crate) fn read_file_bytes(
    fs: &InversionFs,
    s: &mut Session,
    stat: &FileStat,
    snap: Option<&Snapshot>,
) -> InvResult<Vec<u8>> {
    let size = stat.size as usize;
    let mut out = vec![0u8; size];
    // A whole-file read walks the chunk relation front to back; tell the
    // buffer cache so later chunks are already resident when we get there.
    if size > chunk::CHUNK_SIZE {
        fs.db().prefetch_relation(stat.datarel, 0, usize::MAX);
    }
    for (chunkno, start, take) in chunk::split_range(0, size) {
        if let Some(content) = fetch_chunk(fs, s, stat, chunkno, snap)? {
            let off = chunk::chunk_start(chunkno) as usize;
            let end = (start + take).min(content.len());
            if end > start {
                out[off + start..off + end].copy_from_slice(&content[start..end]);
            }
        }
    }
    Ok(out)
}

impl InversionFs {
    /// Inversion-level structural verification, layered on top of
    /// `minidb`'s `Db::check_all`: audits the chunk-table shape of every
    /// regular file.
    ///
    /// Checked per file: the chunk relation is readable, every chunk row
    /// decodes (self-identifying tag and compression included), chunk
    /// numbers are unique and inside `0..ceil(size / CHUNK_SIZE)`, no chunk
    /// is longer than [`CHUNK_SIZE`], and no chunk extends past the size
    /// recorded in `fileatt`. Sparse files are legal — a seek past EOF plus
    /// a write leaves holes, which readers fill with zeros — so chunk
    /// *density* is deliberately not required.
    pub fn check(&self) -> Vec<minidb::Finding> {
        use minidb::Finding;
        let mut out = Vec::new();
        let mut s = match self.db().begin() {
            Ok(s) => s,
            Err(e) => {
                out.push(Finding::new("inversion", "check-error", e.to_string()));
                return out;
            }
        };
        let files = match s.seq_scan(self.rels.fileatt) {
            Ok(rows) => rows,
            Err(e) => {
                out.push(Finding::new("fileatt", "check-error", e.to_string()));
                s.abort().ok();
                return out;
            }
        };
        for (_, row) in files {
            let stat = match InversionFs::stat_from_row(&row) {
                Ok(st) => st,
                Err(e) => {
                    out.push(Finding::new("fileatt", "fileatt-undecodable", e.to_string()));
                    continue;
                }
            };
            if stat.kind != FileKind::Regular {
                continue;
            }
            let name = format!("inv{}", stat.oid.0);
            let chunks = match s.seq_scan(stat.datarel) {
                Ok(rows) => rows,
                Err(e) => {
                    out.push(Finding::new(
                        &name,
                        "chunk-table-missing",
                        format!("file {}: {e}", stat.oid),
                    ));
                    continue;
                }
            };
            let nchunks = stat.size.div_ceil(CHUNK_SIZE as u64);
            let mut seen = HashMap::new();
            for (tid, crow) in chunks {
                let chunkno = match crow.first().map(|d| d.as_int()) {
                    Some(Ok(n)) => n,
                    _ => {
                        out.push(
                            Finding::new(&name, "chunk-row-shape", "chunkno is not an integer")
                                .on_page(tid.blkno as u64)
                                .on_slot(tid.slot),
                        );
                        continue;
                    }
                };
                if chunkno < 0 || chunkno as u64 >= nchunks {
                    out.push(
                        Finding::new(
                            &name,
                            "chunk-out-of-range",
                            format!(
                                "chunk {chunkno} outside 0..{nchunks} for a {}-byte file",
                                stat.size
                            ),
                        )
                        .on_page(tid.blkno as u64)
                        .on_slot(tid.slot),
                    );
                    continue;
                }
                if let Some(prev) = seen.insert(chunkno, tid) {
                    out.push(
                        Finding::new(
                            &name,
                            "chunk-duplicate",
                            format!("chunk {chunkno} stored twice (also at {prev:?})"),
                        )
                        .on_page(tid.blkno as u64)
                        .on_slot(tid.slot),
                    );
                }
                match decode_chunk(&stat, chunkno as u32, &crow) {
                    Ok(content) => {
                        if content.len() > CHUNK_SIZE {
                            out.push(
                                Finding::new(
                                    &name,
                                    "chunk-oversize",
                                    format!("chunk {chunkno} is {} bytes", content.len()),
                                )
                                .on_page(tid.blkno as u64)
                                .on_slot(tid.slot),
                            );
                        }
                        let extent =
                            chunk::chunk_start(chunkno as u32) + content.len() as u64;
                        if extent > stat.size {
                            out.push(
                                Finding::new(
                                    &name,
                                    "chunk-beyond-eof",
                                    format!(
                                        "chunk {chunkno} ends at byte {extent}, file size is {}",
                                        stat.size
                                    ),
                                )
                                .on_page(tid.blkno as u64)
                                .on_slot(tid.slot),
                            );
                        }
                    }
                    Err(e) => {
                        out.push(
                            Finding::new(&name, "chunk-undecodable", e.to_string())
                                .on_page(tid.blkno as u64)
                                .on_slot(tid.slot),
                        );
                    }
                }
            }
        }
        s.abort().ok();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_client() -> (InversionFs, InvClient) {
        let fs = InversionFs::open_in_memory().unwrap();
        let c = fs.client();
        (fs, c)
    }

    #[test]
    fn fs_check_clean_after_varied_workload() {
        let (fs, mut c) = fs_client();
        c.p_begin().unwrap();
        let fd = c.p_creat("/plain", CreateMode::default()).unwrap();
        c.p_write(fd, &vec![7u8; 2 * CHUNK_SIZE + 99]).unwrap();
        c.p_close(fd).unwrap();
        let fd = c
            .p_creat("/tagged", CreateMode::default().self_identifying().compressed())
            .unwrap();
        c.p_write(fd, b"squeezed and tagged").unwrap();
        c.p_close(fd).unwrap();
        // Sparse file: seek far past EOF, then write — holes are legal.
        let fd = c.p_creat("/sparse", CreateMode::default()).unwrap();
        c.p_lseek(fd, (4 * CHUNK_SIZE) as i64, SeekWhence::Set).unwrap();
        c.p_write(fd, b"tail").unwrap();
        // Truncate trims the tail chunk.
        c.p_ftruncate(fd, (4 * CHUNK_SIZE + 2) as u64).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        assert_eq!(fs.check(), vec![]);
        assert_eq!(fs.db().check_all(), vec![]);
    }

    #[test]
    fn fs_check_detects_out_of_range_chunk() {
        let (fs, mut c) = fs_client();
        c.write_all("/f", CreateMode::default(), b"one chunk only").unwrap();
        let mut s = fs.db().begin().unwrap();
        let oid = fs.resolve(&mut s, "/f", None).unwrap();
        let stat = fs.stat_oid(&mut s, oid, None).unwrap();
        s.insert(
            stat.datarel,
            vec![Datum::Int4(99), Datum::Bytes(b"stray".to_vec())],
        )
        .unwrap();
        s.commit().unwrap();
        let findings = fs.check();
        assert!(
            findings.iter().any(|f| f.code == "chunk-out-of-range"),
            "{findings:?}"
        );
    }

    #[test]
    fn fs_check_detects_corrupt_self_id_tag() {
        let (fs, mut c) = fs_client();
        c.write_all("/t", CreateMode::default().self_identifying(), b"guarded")
            .unwrap();
        let mut s = fs.db().begin().unwrap();
        let oid = fs.resolve(&mut s, "/t", None).unwrap();
        let stat = fs.stat_oid(&mut s, oid, None).unwrap();
        let (tid, row) = s.seq_scan(stat.datarel).unwrap().remove(0);
        let mut raw = row[1].as_bytes().unwrap().to_vec();
        raw[0] ^= 0xFF; // Break the tag magic.
        s.update(stat.datarel, tid, vec![row[0].clone(), Datum::Bytes(raw)])
            .unwrap();
        s.commit().unwrap();
        let findings = fs.check();
        assert!(
            findings.iter().any(|f| f.code == "chunk-undecodable"),
            "{findings:?}"
        );
    }

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i % 251) as u8 ^ salt)
            .collect()
    }

    #[test]
    fn slice_aligned_ranges_share_rows_without_copying() {
        let (fs, mut c) = fs_client();
        let data = pattern(3 * CHUNK_SIZE, 0);
        c.write_all("/a", CreateMode::default(), &data).unwrap();

        let writes_before = fs.stats().chunk_writes.get();
        let shared_before = fs.stats().chunks_shared.get();
        let stat = c
            .p_slice(
                "/b",
                CreateMode::default(),
                &[SliceRange::new("/a", 0, 3 * CHUNK_SIZE as u64)],
            )
            .unwrap();
        assert_eq!(stat.size, 3 * CHUNK_SIZE as u64);
        assert_eq!(c.read_to_vec("/b", None).unwrap(), data);
        // All three chunks were shared; no chunk payload was re-stored.
        assert_eq!(fs.stats().chunks_shared.get(), shared_before + 3);
        assert_eq!(fs.stats().chunk_writes.get(), writes_before);
        assert_eq!(fs.stats().slices.get(), 1);
        assert_eq!(fs.check(), vec![]);
        assert_eq!(fs.db().check_all(), vec![]);
    }

    #[test]
    fn slice_unaligned_ranges_fall_back_to_copies() {
        let (fs, mut c) = fs_client();
        let data = pattern(2 * CHUNK_SIZE, 1);
        c.write_all("/a", CreateMode::default(), &data).unwrap();

        let shared_before = fs.stats().chunks_shared.get();
        let half = CHUNK_SIZE as u64 / 2;
        c.p_slice(
            "/b",
            CreateMode::default(),
            &[SliceRange::new("/a", half, CHUNK_SIZE as u64)],
        )
        .unwrap();
        let want = &data[half as usize..half as usize + CHUNK_SIZE];
        assert_eq!(c.read_to_vec("/b", None).unwrap(), want);
        assert_eq!(fs.stats().chunks_shared.get(), shared_before);
        assert_eq!(fs.check(), vec![]);
    }

    #[test]
    fn slice_composes_from_multiple_sources() {
        let (fs, mut c) = fs_client();
        let a = pattern(2 * CHUNK_SIZE + 100, 2);
        let b = pattern(CHUNK_SIZE + 7, 3);
        c.write_all("/a", CreateMode::default(), &a).unwrap();
        c.write_all("/b", CreateMode::default(), &b).unwrap();

        // Whole /a (aligned head shares, 100-byte tail copies), then an
        // unaligned middle of /b.
        let stat = c
            .p_slice(
                "/cat",
                CreateMode::default(),
                &[
                    SliceRange::new("/a", 0, a.len() as u64),
                    SliceRange::new("/b", 5, 1000),
                ],
            )
            .unwrap();
        let mut want = a.clone();
        want.extend_from_slice(&b[5..1005]);
        assert_eq!(stat.size as usize, want.len());
        assert_eq!(c.read_to_vec("/cat", None).unwrap(), want);
        assert!(fs.stats().chunks_shared.get() >= 2);
        assert_eq!(fs.check(), vec![]);
        assert_eq!(fs.db().check_all(), vec![]);
    }

    #[test]
    fn slice_never_shares_self_identifying_rows() {
        let (fs, mut c) = fs_client();
        let data = pattern(CHUNK_SIZE, 4);
        c.write_all("/tagged", CreateMode::default().self_identifying(), &data)
            .unwrap();
        let shared_before = fs.stats().chunks_shared.get();
        c.p_slice(
            "/copy",
            CreateMode::default(),
            &[SliceRange::new("/tagged", 0, CHUNK_SIZE as u64)],
        )
        .unwrap();
        // Tagged rows embed (oid, chunkno): sharing would fail the tag
        // check in the destination, so the range must copy.
        assert_eq!(fs.stats().chunks_shared.get(), shared_before);
        assert_eq!(c.read_to_vec("/copy", None).unwrap(), data);
        assert_eq!(fs.check(), vec![]);
    }

    #[test]
    fn slice_shares_compressed_rows_between_compressed_files() {
        let (fs, mut c) = fs_client();
        // Highly compressible content so the stored row differs from raw.
        let data = vec![9u8; 2 * CHUNK_SIZE];
        c.write_all("/z", CreateMode::default().compressed(), &data)
            .unwrap();
        let shared_before = fs.stats().chunks_shared.get();
        c.p_slice(
            "/z2",
            CreateMode::default().compressed(),
            &[SliceRange::new("/z", 0, 2 * CHUNK_SIZE as u64)],
        )
        .unwrap();
        assert_eq!(fs.stats().chunks_shared.get(), shared_before + 2);
        assert_eq!(c.read_to_vec("/z2", None).unwrap(), data);
        assert_eq!(fs.check(), vec![]);

        // Mismatched compression must copy, not share.
        c.p_slice(
            "/z3",
            CreateMode::default(),
            &[SliceRange::new("/z", 0, 2 * CHUNK_SIZE as u64)],
        )
        .unwrap();
        assert_eq!(fs.stats().chunks_shared.get(), shared_before + 2);
        assert_eq!(c.read_to_vec("/z3", None).unwrap(), data);
        assert_eq!(fs.check(), vec![]);
    }

    #[test]
    fn slice_preserves_source_holes() {
        let (fs, mut c) = fs_client();
        // Sparse source: chunk 0 is a hole, chunk 1 has data.
        c.p_begin().unwrap();
        let fd = c.p_creat("/sparse", CreateMode::default()).unwrap();
        c.p_lseek(fd, CHUNK_SIZE as i64, SeekWhence::Set).unwrap();
        c.p_write(fd, &vec![5u8; CHUNK_SIZE]).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();

        c.p_slice(
            "/s2",
            CreateMode::default(),
            &[SliceRange::new("/sparse", 0, 2 * CHUNK_SIZE as u64)],
        )
        .unwrap();
        let mut want = vec![0u8; CHUNK_SIZE];
        want.extend_from_slice(&vec![5u8; CHUNK_SIZE]);
        assert_eq!(c.read_to_vec("/s2", None).unwrap(), want);
        assert_eq!(fs.check(), vec![]);
    }

    #[test]
    fn slice_rejects_out_of_range_and_bad_sources() {
        let (_fs, mut c) = fs_client();
        c.write_all("/a", CreateMode::default(), b"short").unwrap();
        c.p_mkdir("/d").unwrap();
        let err = c
            .p_slice(
                "/b",
                CreateMode::default(),
                &[SliceRange::new("/a", 0, 6)],
            )
            .unwrap_err();
        assert!(matches!(err, InvError::Invalid(_)), "{err}");
        // A failed slice must not leave the destination behind.
        assert!(matches!(
            c.p_stat("/b", None),
            Err(InvError::NoSuchPath(_))
        ));
        let err = c
            .p_slice(
                "/b",
                CreateMode::default(),
                &[SliceRange::new("/d", 0, 0)],
            )
            .unwrap_err();
        assert!(matches!(err, InvError::IsADirectory(_)), "{err}");
        let err = c
            .p_slice(
                "/b",
                CreateMode::default(),
                &[SliceRange::new("/missing", 0, 1)],
            )
            .unwrap_err();
        assert!(matches!(err, InvError::NoSuchPath(_)), "{err}");
    }

    #[test]
    fn create_write_read_roundtrip() {
        let (_fs, mut c) = fs_client();
        c.p_begin().unwrap();
        let fd = c.p_creat("/hello.txt", CreateMode::default()).unwrap();
        assert_eq!(c.p_write(fd, b"hello, inversion").unwrap(), 16);
        c.p_lseek(fd, 0, SeekWhence::Set).unwrap();
        let mut buf = [0u8; 32];
        let n = c.p_read(fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello, inversion");
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
    }

    #[test]
    fn multi_chunk_file_roundtrip() {
        let (_fs, mut c) = fs_client();
        let data: Vec<u8> = (0..3 * CHUNK_SIZE + 1234)
            .map(|i| (i % 251) as u8)
            .collect();
        c.p_begin().unwrap();
        let fd = c.p_creat("/big", CreateMode::default()).unwrap();
        c.p_write(fd, &data).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();

        assert_eq!(c.read_to_vec("/big", None).unwrap(), data);
        let stat = c.p_stat("/big", None).unwrap();
        assert_eq!(stat.size as usize, data.len());
    }

    #[test]
    fn small_writes_coalesce_into_page_sized_chunks() {
        let (fs, mut c) = fs_client();
        c.p_begin().unwrap();
        let fd = c.p_creat("/coalesced", CreateMode::default()).unwrap();
        // 1024 writes of 16 bytes = 2 chunks worth.
        for i in 0..1024u32 {
            let b = [(i % 251) as u8; 16];
            c.p_write(fd, &b).unwrap();
        }
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        // The file table must hold ~3 records, not 1024.
        let stat = c.p_stat("/coalesced", None).unwrap();
        let mut s = fs.db().begin().unwrap();
        let nrows = s.seq_scan(stat.datarel).unwrap().len();
        s.commit().unwrap();
        assert_eq!(nrows, (16 * 1024usize).div_ceil(CHUNK_SIZE));
    }

    #[test]
    fn overwrite_middle_of_file() {
        let (_fs, mut c) = fs_client();
        let base = vec![b'a'; 2 * CHUNK_SIZE];
        c.write_all("/f", CreateMode::default(), &base).unwrap();
        c.p_begin().unwrap();
        let fd = c.p_open("/f", OpenMode::ReadWrite, None).unwrap();
        c.p_lseek(fd, (CHUNK_SIZE - 2) as i64, SeekWhence::Set)
            .unwrap();
        c.p_write(fd, b"XXXX").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();

        let out = c.read_to_vec("/f", None).unwrap();
        assert_eq!(out.len(), base.len());
        assert_eq!(&out[CHUNK_SIZE - 2..CHUNK_SIZE + 2], b"XXXX");
        assert_eq!(out[CHUNK_SIZE - 3], b'a');
        assert_eq!(out[CHUNK_SIZE + 2], b'a');
    }

    #[test]
    fn sparse_write_reads_zeros_in_gap() {
        let (_fs, mut c) = fs_client();
        c.p_begin().unwrap();
        let fd = c.p_creat("/sparse", CreateMode::default()).unwrap();
        c.p_lseek(fd, (5 * CHUNK_SIZE + 17) as i64, SeekWhence::Set)
            .unwrap();
        c.p_write(fd, b"end").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();

        let out = c.read_to_vec("/sparse", None).unwrap();
        assert_eq!(out.len(), 5 * CHUNK_SIZE + 20);
        assert!(out[..5 * CHUNK_SIZE + 17].iter().all(|&b| b == 0));
        assert_eq!(&out[5 * CHUNK_SIZE + 17..], b"end");
    }

    #[test]
    fn read_sees_own_buffered_writes() {
        let (_fs, mut c) = fs_client();
        c.p_begin().unwrap();
        let fd = c.p_creat("/rw", CreateMode::default()).unwrap();
        c.p_write(fd, b"buffered").unwrap();
        // Seek back and read before any flush happened.
        c.p_lseek(fd, 0, SeekWhence::Set).unwrap();
        let mut buf = [0u8; 8];
        c.p_read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"buffered");
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
    }

    #[test]
    fn abort_rolls_back_data_and_metadata() {
        let (_fs, mut c) = fs_client();
        c.write_all("/f", CreateMode::default(), b"v1").unwrap();

        c.p_begin().unwrap();
        let fd = c.p_open("/f", OpenMode::ReadWrite, None).unwrap();
        c.p_lseek(fd, 0, SeekWhence::End).unwrap();
        c.p_write(fd, b" plus uncommitted").unwrap();
        c.p_abort().unwrap();

        assert_eq!(c.read_to_vec("/f", None).unwrap(), b"v1");
        assert_eq!(c.p_stat("/f", None).unwrap().size, 2);
        // The fd is stale but usable: size must reflect the rollback.
        c.p_begin().unwrap();
        let mut buf = [0u8; 32];
        c.p_lseek(fd, 0, SeekWhence::Set).unwrap();
        let n = c.p_read(fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"v1");
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
    }

    #[test]
    fn multi_file_transaction_is_atomic() {
        // "programmers ... may need to check in several fixed source code
        // files at the same time."
        let (_fs, mut c) = fs_client();
        c.write_all("/a.c", CreateMode::default(), b"int a;")
            .unwrap();
        c.write_all("/b.c", CreateMode::default(), b"int b;")
            .unwrap();

        c.p_begin().unwrap();
        let fa = c.p_open("/a.c", OpenMode::ReadWrite, None).unwrap();
        let fb = c.p_open("/b.c", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fa, b"int a2;").unwrap();
        c.p_write(fb, b"int b2;").unwrap();
        c.p_close(fa).unwrap();
        c.p_close(fb).unwrap();
        c.p_abort().unwrap();
        assert_eq!(c.read_to_vec("/a.c", None).unwrap(), b"int a;");
        assert_eq!(c.read_to_vec("/b.c", None).unwrap(), b"int b;");

        c.p_begin().unwrap();
        let fa = c.p_open("/a.c", OpenMode::ReadWrite, None).unwrap();
        let fb = c.p_open("/b.c", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fa, b"int a2;").unwrap();
        c.p_write(fb, b"int b2;").unwrap();
        c.p_close(fa).unwrap();
        c.p_close(fb).unwrap();
        c.p_commit().unwrap();
        assert_eq!(c.read_to_vec("/a.c", None).unwrap(), b"int a2;");
        assert_eq!(c.read_to_vec("/b.c", None).unwrap(), b"int b2;");
    }

    #[test]
    fn time_travel_open_sees_old_contents() {
        let (fs, mut c) = fs_client();
        c.write_all("/history", CreateMode::default(), b"version one")
            .unwrap();
        let t1 = fs.db().now();
        c.p_begin().unwrap();
        let fd = c.p_open("/history", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"VERSION TWO").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();

        assert_eq!(c.read_to_vec("/history", None).unwrap(), b"VERSION TWO");
        assert_eq!(c.read_to_vec("/history", Some(t1)).unwrap(), b"version one");

        // Historical fds refuse writes.
        let fd = c.p_open("/history", OpenMode::Read, Some(t1)).unwrap();
        assert!(c.p_write(fd, b"x").is_err());
        c.p_close(fd).unwrap();
        assert!(c.p_open("/history", OpenMode::ReadWrite, Some(t1)).is_err());
    }

    #[test]
    fn undelete_restores_name_and_contents() {
        let (fs, mut c) = fs_client();
        let data: Vec<u8> = (0..CHUNK_SIZE + 500).map(|i| (i % 13) as u8).collect();
        c.write_all("/precious", CreateMode::default(), &data)
            .unwrap();
        let t_alive = fs.db().now();

        // Mutate, then delete.
        c.p_begin().unwrap();
        let fd = c.p_open("/precious", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"garbage").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        c.p_unlink("/precious").unwrap();
        assert!(c.p_stat("/precious", None).is_err());

        c.p_undelete("/precious", t_alive).unwrap();
        assert_eq!(c.read_to_vec("/precious", None).unwrap(), data);
        let stat = c.p_stat("/precious", None).unwrap();
        assert_eq!(stat.size as usize, data.len());
    }

    #[test]
    fn compressed_file_roundtrip_and_random_access() {
        let (fs, mut c) = fs_client();
        let data = b"abcdefgh".repeat(3 * CHUNK_SIZE / 8);
        c.write_all("/z", CreateMode::default().compressed(), &data)
            .unwrap();
        assert_eq!(c.read_to_vec("/z", None).unwrap(), data);

        // Random access: read 10 bytes from the middle of chunk 2.
        let off = 2 * CHUNK_SIZE + 1001;
        let fd = c.p_open("/z", OpenMode::Read, None).unwrap();
        c.p_lseek(fd, off as i64, SeekWhence::Set).unwrap();
        let mut buf = [0u8; 10];
        c.p_read(fd, &mut buf).unwrap();
        assert_eq!(&buf, &data[off..off + 10]);
        c.p_close(fd).unwrap();

        // The stored chunks really are smaller than the data.
        let stat = c.p_stat("/z", None).unwrap();
        assert!(stat.compressed);
        let mut s = fs.db().begin().unwrap();
        let stored: usize = s
            .seq_scan(stat.datarel)
            .unwrap()
            .iter()
            .map(|(_, r)| r[1].as_bytes().unwrap().len())
            .sum();
        s.commit().unwrap();
        assert!(stored < data.len() / 4, "stored {stored} of {}", data.len());
    }

    #[test]
    fn auto_commit_ops_work_without_explicit_transaction() {
        let (_fs, mut c) = fs_client();
        let fd = c.p_creat("/auto", CreateMode::default()).unwrap();
        c.p_write(fd, b"one ").unwrap();
        c.p_write(fd, b"two").unwrap();
        c.p_close(fd).unwrap();
        assert_eq!(c.read_to_vec("/auto", None).unwrap(), b"one two");
    }

    #[test]
    fn seek_whence_variants_and_errors() {
        let (_fs, mut c) = fs_client();
        c.write_all("/s", CreateMode::default(), b"0123456789")
            .unwrap();
        let fd = c.p_open("/s", OpenMode::Read, None).unwrap();
        assert_eq!(c.p_lseek(fd, 4, SeekWhence::Set).unwrap(), 4);
        assert_eq!(c.p_lseek(fd, 2, SeekWhence::Cur).unwrap(), 6);
        assert_eq!(c.p_lseek(fd, -1, SeekWhence::End).unwrap(), 9);
        assert!(c.p_lseek(fd, -100, SeekWhence::Cur).is_err());
        assert!(c.p_lseek(999, 0, SeekWhence::Set).is_err());
        c.p_close(fd).unwrap();
        assert!(matches!(c.p_close(fd), Err(InvError::BadFd(_))));
    }

    #[test]
    fn read_past_eof_is_short() {
        let (_fs, mut c) = fs_client();
        c.write_all("/short", CreateMode::default(), b"abc")
            .unwrap();
        let fd = c.p_open("/short", OpenMode::Read, None).unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(c.p_read(fd, &mut buf).unwrap(), 3);
        assert_eq!(c.p_read(fd, &mut buf).unwrap(), 0);
        c.p_lseek(fd, 100, SeekWhence::Set).unwrap();
        assert_eq!(c.p_read(fd, &mut buf).unwrap(), 0);
        c.p_close(fd).unwrap();
    }

    #[test]
    fn directories_cannot_be_opened_as_files() {
        let (_fs, mut c) = fs_client();
        c.p_mkdir("/dir").unwrap();
        assert!(matches!(
            c.p_open("/dir", OpenMode::Read, None),
            Err(InvError::IsADirectory(_))
        ));
    }

    #[test]
    fn nested_begin_rejected() {
        let (_fs, mut c) = fs_client();
        c.p_begin().unwrap();
        assert!(c.p_begin().is_err());
        c.p_abort().unwrap();
        assert!(c.p_abort().is_err());
        assert!(c.p_commit().is_err());
    }

    #[test]
    fn mtime_and_atime_update() {
        let (fs, mut c) = fs_client();
        c.write_all("/t", CreateMode::default(), b"x").unwrap();
        let s1 = c.p_stat("/t", None).unwrap();
        fs.db().clock().advance(simdev::SimDuration::from_secs(5));
        c.p_begin().unwrap();
        let fd = c.p_open("/t", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"y").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        let s2 = c.p_stat("/t", None).unwrap();
        assert!(s2.mtime > s1.mtime);
        assert!(s2.atime >= s2.mtime);
        assert_eq!(s2.ctime, s1.ctime);
    }

    #[test]
    fn file_on_chosen_device_is_recorded() {
        let (_fs, mut c) = fs_client();
        let fd = c
            .p_creat(
                "/placed",
                CreateMode::default().on_device(minidb::DeviceId(0)),
            )
            .unwrap();
        c.p_close(fd).unwrap();
        let stat = c.p_stat("/placed", None).unwrap();
        assert_eq!(stat.device, minidb::DeviceId(0));
        assert!(stat.datarel.is_valid());
        assert!(stat.chunkidx.is_valid());
    }
}

#[cfg(test)]
mod self_id_tests {
    use super::*;
    use crate::fs::CreateMode;

    #[test]
    fn self_identifying_roundtrip_and_overhead_fits() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        let data: Vec<u8> = (0..2 * CHUNK_SIZE + 7).map(|i| (i % 251) as u8).collect();
        c.write_all("/tagged", CreateMode::default().self_identifying(), &data)
            .unwrap();
        assert_eq!(c.read_to_vec("/tagged", None).unwrap(), data);
        let stat = c.p_stat("/tagged", None).unwrap();
        assert!(stat.self_identifying);
        // A full chunk plus the 16-byte tag must still fit one heap tuple
        // (the paper "reserved space in the tables storing file data").
        let mut s = fs.db().begin().unwrap();
        let rows = s.seq_scan(stat.datarel).unwrap();
        assert_eq!(rows.len(), 3, "one record per chunk even with tags");
        s.commit().unwrap();
    }

    #[test]
    fn wrong_file_tag_detected() {
        // Swap the raw stored bytes of two files' chunks: the tag must
        // catch that the block belongs to another file.
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/one", CreateMode::default().self_identifying(), b"one!")
            .unwrap();
        c.write_all("/two", CreateMode::default().self_identifying(), b"two!")
            .unwrap();
        let s1 = c.p_stat("/one", None).unwrap();
        let s2 = c.p_stat("/two", None).unwrap();
        let mut s = fs.db().begin().unwrap();
        let (tid1, row1) = s.seq_scan(s1.datarel).unwrap().remove(0);
        let (_tid2, row2) = s.seq_scan(s2.datarel).unwrap().remove(0);
        s.update(s1.datarel, tid1, row2.clone()).unwrap();
        let _ = row1;
        s.commit().unwrap();

        let err = c.read_to_vec("/one", None).unwrap_err();
        assert!(err.to_string().contains("another file"), "{err}");
    }

    #[test]
    fn bitrot_detected_by_checksum() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all(
            "/precious",
            CreateMode::default().self_identifying(),
            &vec![7u8; 500],
        )
        .unwrap();
        let stat = c.p_stat("/precious", None).unwrap();
        // Flip one payload byte in the stored record.
        let mut s = fs.db().begin().unwrap();
        let (tid, mut row) = s.seq_scan(stat.datarel).unwrap().remove(0);
        let mut bytes = row[1].as_bytes().unwrap().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        row[1] = Datum::Bytes(bytes);
        s.update(stat.datarel, tid, row).unwrap();
        s.commit().unwrap();

        let err = c.read_to_vec("/precious", None).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Untagged files would have silently returned the garbage; tagged
        // ones fail loudly, which is the feature.
    }

    #[test]
    fn self_identifying_composes_with_compression() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        let data = b"abcabcabc".repeat(2000);
        c.write_all(
            "/both",
            CreateMode::default().self_identifying().compressed(),
            &data,
        )
        .unwrap();
        assert_eq!(c.read_to_vec("/both", None).unwrap(), data);
        let stat = c.p_stat("/both", None).unwrap();
        assert!(stat.compressed && stat.self_identifying);
    }
}

/// One recorded version of a file's metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileVersion {
    /// When this version became visible (its transaction's commit time).
    pub committed_at: SimInstant,
    /// When it was superseded or deleted (`None` = current).
    pub superseded_at: Option<SimInstant>,
    /// The file size this version recorded.
    pub size: u64,
}

impl InvClient {
    /// Lists every committed metadata version of `path`, oldest first — a
    /// revision log recovered purely from the no-overwrite storage manager
    /// ("a superset of the services offered by revision control programs
    /// like rcs(1)"). Pass any `committed_at` to [`InvClient::p_open`] as
    /// the timestamp to check that revision out.
    pub fn p_history(&mut self, path: &str) -> InvResult<Vec<FileVersion>> {
        let path = path.to_string();
        self.run(move |fs, s, _| {
            // Resolve at any time the file existed: current first, else
            // search all committed naming versions for the path.
            let oid = match fs.resolve(s, &path, None) {
                Ok(oid) => oid,
                Err(_) => {
                    // Walk history: find a naming version for the final
                    // component whose lifetime we can resolve through.
                    let (_, name) = fs
                        .resolve_parent(s, &path, None)
                        .map_err(|_| InvError::NoSuchPath(path.clone()))?;
                    let versions = s.scan_version_history(fs.rels.naming)?;
                    versions
                        .into_iter()
                        .find(|(_, _, row)| {
                            row[crate::fs::N_FILENAME]
                                .as_text()
                                .map(|n| n == name)
                                .unwrap_or(false)
                        })
                        .map(|(_, _, row)| Oid(row[crate::fs::N_FILE].as_oid().unwrap_or(0)))
                        .ok_or_else(|| InvError::NoSuchPath(path.clone()))?
                }
            };
            let mut out = Vec::new();
            for (t0, t1, row) in s.scan_version_history(fs.rels.fileatt)? {
                if row[crate::fs::A_FILE].as_oid()? != oid.0 {
                    continue;
                }
                // Zero-length lifetimes (inserted and superseded by the
                // same transaction) were never visible to anyone.
                if t1 == Some(t0) {
                    continue;
                }
                out.push(FileVersion {
                    committed_at: t0,
                    superseded_at: t1,
                    size: row[A_SIZE].as_int()?.max(0) as u64,
                });
            }
            out.sort_by_key(|v| v.committed_at);
            Ok(out)
        })
    }
}

#[cfg(test)]
mod history_tests {
    use super::*;
    use crate::fs::CreateMode;

    #[test]
    fn history_lists_every_revision() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/doc", CreateMode::default(), b"a").unwrap();
        for len in [2usize, 3, 4] {
            c.p_begin().unwrap();
            let fd = c.p_open("/doc", OpenMode::ReadWrite, None).unwrap();
            c.p_lseek(fd, 0, SeekWhence::End).unwrap();
            c.p_write(fd, b"x").unwrap();
            c.p_close(fd).unwrap();
            c.p_commit().unwrap();
            let _ = len;
        }
        let hist = c.p_history("/doc").unwrap();
        assert_eq!(hist.len(), 4);
        let sizes: Vec<u64> = hist.iter().map(|v| v.size).collect();
        assert_eq!(sizes, vec![1, 2, 3, 4]);
        // All but the last superseded; times strictly increase.
        assert!(hist[..3].iter().all(|v| v.superseded_at.is_some()));
        assert!(hist[3].superseded_at.is_none());
        assert!(hist
            .windows(2)
            .all(|w| w[0].committed_at < w[1].committed_at));
        // Each committed_at checks out the matching revision.
        for (i, v) in hist.iter().enumerate() {
            let bytes = c.read_to_vec("/doc", Some(v.committed_at)).unwrap();
            assert_eq!(bytes.len(), i + 1, "revision {i}");
        }
    }

    #[test]
    fn history_of_deleted_file_still_listable() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/gone", CreateMode::default(), b"12345")
            .unwrap();
        c.p_unlink("/gone").unwrap();
        let hist = c.p_history("/gone").unwrap();
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].size, 5);
        assert!(hist[0].superseded_at.is_some(), "deleted: lifetime closed");
    }

    #[test]
    fn history_of_missing_path_errors() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        assert!(matches!(
            c.p_history("/never"),
            Err(InvError::NoSuchPath(_))
        ));
    }

    #[test]
    fn history_survives_vacuum() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/v", CreateMode::default(), b"one").unwrap();
        c.p_begin().unwrap();
        let fd = c.p_open("/v", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"two++").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        crate::maintenance::vacuum_all(&fs, minidb::DeviceId::DEFAULT).unwrap();
        let hist = c.p_history("/v").unwrap();
        assert_eq!(hist.len(), 2, "archived versions included");
        assert_eq!(hist[0].size, 3);
        assert_eq!(hist[1].size, 5);
    }
}

#[cfg(test)]
mod truncate_tests {
    use super::*;
    use crate::fs::CreateMode;

    fn setup(data: &[u8]) -> (InversionFs, InvClient) {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/t", CreateMode::default(), data).unwrap();
        (fs, c)
    }

    #[test]
    fn shrink_within_chunk() {
        let (_fs, mut c) = setup(b"0123456789");
        c.p_begin().unwrap();
        let fd = c.p_open("/t", OpenMode::ReadWrite, None).unwrap();
        c.p_ftruncate(fd, 4).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        assert_eq!(c.read_to_vec("/t", None).unwrap(), b"0123");
        assert_eq!(c.p_stat("/t", None).unwrap().size, 4);
    }

    #[test]
    fn shrink_across_chunks_and_time_travel_keeps_old() {
        let data: Vec<u8> = (0..3 * CHUNK_SIZE).map(|i| (i % 251) as u8).collect();
        let (fs, mut c) = setup(&data);
        let t_full = fs.db().now();
        c.p_begin().unwrap();
        let fd = c.p_open("/t", OpenMode::ReadWrite, None).unwrap();
        let new_len = CHUNK_SIZE as u64 + 100;
        c.p_ftruncate(fd, new_len).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        let now = c.read_to_vec("/t", None).unwrap();
        assert_eq!(now.len() as u64, new_len);
        assert_eq!(&now[..], &data[..new_len as usize]);
        // History intact.
        assert_eq!(c.read_to_vec("/t", Some(t_full)).unwrap(), data);
    }

    #[test]
    fn truncate_to_zero_and_rewrite() {
        let (_fs, mut c) = setup(b"old contents");
        c.p_begin().unwrap();
        let fd = c.p_open("/t", OpenMode::ReadWrite, None).unwrap();
        c.p_ftruncate(fd, 0).unwrap();
        c.p_write(fd, b"new").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        assert_eq!(c.read_to_vec("/t", None).unwrap(), b"new");
    }

    #[test]
    fn grow_creates_zero_hole() {
        let (_fs, mut c) = setup(b"abc");
        c.p_begin().unwrap();
        let fd = c.p_open("/t", OpenMode::ReadWrite, None).unwrap();
        c.p_ftruncate(fd, 10).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        assert_eq!(c.read_to_vec("/t", None).unwrap(), b"abc\0\0\0\0\0\0\0");
    }

    #[test]
    fn truncate_readonly_fd_rejected() {
        let (fs, mut c) = setup(b"abc");
        let t = fs.db().now();
        let fd = c.p_open("/t", OpenMode::Read, None).unwrap();
        assert!(c.p_ftruncate(fd, 0).is_err());
        c.p_close(fd).unwrap();
        let fd = c.p_open("/t", OpenMode::Read, Some(t)).unwrap();
        assert!(c.p_ftruncate(fd, 0).is_err());
        c.p_close(fd).unwrap();
    }
}
