//! File system operation statistics: the `inv_stat` system relation.
//!
//! Every [`crate::InvClient`] entry point, the chunk storage layer, and the
//! client/server dispatcher report into one [`InvStats`] shared by all
//! clients of an [`crate::InversionFs`]. The registry is registered with the
//! database as a virtual relation named `inv_stat` with schema
//! `(op = text, count = int8)`, so the counters are queryable from POSTQUEL
//! exactly like the storage manager's own `pg_stat_*` relations:
//!
//! ```text
//! retrieve (s.op, s.count) from s in inv_stat
//! ```

use std::sync::Arc;

use minidb::stats::Counter;
use minidb::{Datum, Db, Row, Schema, TypeId};

/// Counters for every file system operation, chunk-level I/O, and the
/// client/server protocol. All updates are relaxed atomics — cheap enough to
/// leave on permanently, readable concurrently with any workload.
#[derive(Debug, Default)]
pub struct InvStats {
    /// `p_creat` calls.
    pub creats: Counter,
    /// `p_open` calls.
    pub opens: Counter,
    /// `p_close` calls.
    pub closes: Counter,
    /// `p_read` calls.
    pub reads: Counter,
    /// `p_write` calls.
    pub writes: Counter,
    /// `p_lseek` calls.
    pub seeks: Counter,
    /// `p_stat` + `p_fstat` calls.
    pub stat_calls: Counter,
    /// `p_mkdir` calls.
    pub mkdirs: Counter,
    /// `p_readdir` calls.
    pub readdirs: Counter,
    /// `p_unlink` calls.
    pub unlinks: Counter,
    /// `p_rename` calls.
    pub renames: Counter,
    /// Bytes returned by `p_read`.
    pub bytes_read: Counter,
    /// Bytes accepted by `p_write`.
    pub bytes_written: Counter,
    /// Chunk records fetched from the database.
    pub chunk_reads: Counter,
    /// Chunk records stored (inserted or updated) in the database.
    pub chunk_writes: Counter,
    /// Write calls absorbed into an already-active coalescing buffer
    /// ("multiple small sequential writes ... are coalesced").
    pub chunks_coalesced: Counter,
    /// Coalescing-buffer flushes that actually wrote a chunk.
    pub coalesce_flushes: Counter,
    /// Requests executed by the client/server dispatcher.
    pub rpcs: Counter,
    /// Request bytes received by the server (wire sizes).
    pub rpc_bytes_in: Counter,
    /// Response bytes sent by the server (wire sizes).
    pub rpc_bytes_out: Counter,
}

impl InvStats {
    /// A zeroed registry.
    pub fn new() -> InvStats {
        InvStats::default()
    }

    /// Every counter as `(name, value)`, in `inv_stat` row order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("creat", self.creats.get()),
            ("open", self.opens.get()),
            ("close", self.closes.get()),
            ("read", self.reads.get()),
            ("write", self.writes.get()),
            ("lseek", self.seeks.get()),
            ("stat", self.stat_calls.get()),
            ("mkdir", self.mkdirs.get()),
            ("readdir", self.readdirs.get()),
            ("unlink", self.unlinks.get()),
            ("rename", self.renames.get()),
            ("bytes_read", self.bytes_read.get()),
            ("bytes_written", self.bytes_written.get()),
            ("chunk_reads", self.chunk_reads.get()),
            ("chunk_writes", self.chunk_writes.get()),
            ("chunks_coalesced", self.chunks_coalesced.get()),
            ("coalesce_flushes", self.coalesce_flushes.get()),
            ("rpcs", self.rpcs.get()),
            ("rpc_bytes_in", self.rpc_bytes_in.get()),
            ("rpc_bytes_out", self.rpc_bytes_out.get()),
        ]
    }

    /// The counters as `inv_stat` rows.
    pub fn rows(&self) -> Vec<Row> {
        self.snapshot()
            .into_iter()
            .map(|(op, n)| vec![Datum::Text(op.into()), Datum::Int8(n as i64)])
            .collect()
    }

    /// The counters as a JSON object (for bench reports).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .snapshot()
            .into_iter()
            .map(|(op, n)| format!("\"{op}\": {n}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// The `inv_stat` relation schema: `(op = text, count = int8)`.
pub fn inv_stat_schema() -> Schema {
    Schema::new([("op", TypeId::TEXT), ("count", TypeId::INT8)])
}

/// Registers `stats` with `db` as the virtual relation `inv_stat`.
pub(crate) fn register_inv_stat(db: &Db, stats: &Arc<InvStats>) {
    let st = Arc::clone(stats);
    db.register_virtual("inv_stat", inv_stat_schema(), Arc::new(move || st.rows()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_follow_snapshot_order() {
        let st = InvStats::new();
        st.reads.bump();
        st.bytes_read.add(4096);
        let rows = st.rows();
        assert_eq!(rows.len(), st.snapshot().len());
        let read_row = rows
            .iter()
            .find(|r| r[0] == Datum::Text("read".into()))
            .unwrap();
        assert_eq!(read_row[1], Datum::Int8(1));
        let bytes_row = rows
            .iter()
            .find(|r| r[0] == Datum::Text("bytes_read".into()))
            .unwrap();
        assert_eq!(bytes_row[1], Datum::Int8(4096));
    }

    #[test]
    fn inv_stat_queryable_from_postquel() {
        let fs = crate::InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/f", crate::CreateMode::default(), b"hello")
            .unwrap();
        assert_eq!(c.read_to_vec("/f", None).unwrap(), b"hello");
        assert!(fs.stats().creats.get() >= 1);
        assert!(fs.stats().writes.get() >= 1);
        assert!(fs.stats().chunk_writes.get() >= 1);
        assert!(fs.stats().chunk_reads.get() >= 1);
        assert_eq!(fs.stats().bytes_written.get(), 5);

        let mut s = fs.db().begin().unwrap();
        let res = s
            .query("retrieve (x.op, x.count) from x in inv_stat")
            .unwrap();
        s.commit().unwrap();
        let creat = res
            .rows
            .iter()
            .find(|r| r[0] == Datum::Text("creat".into()))
            .expect("creat row");
        assert!(matches!(creat[1], Datum::Int8(n) if n >= 1));
        assert_eq!(res.rows.len(), fs.stats().snapshot().len());
    }

    #[test]
    fn server_counts_rpcs_and_bytes() {
        use crate::fs::CreateMode;
        use crate::server::{InvServer, Request, Response};

        let fs = crate::InversionFs::open_in_memory().unwrap();
        let mut srv = InvServer::new(&fs);
        srv.handle(Request::Begin).unwrap();
        let Response::Fd(fd) = srv
            .handle(Request::Creat("/r".into(), CreateMode::default()))
            .unwrap()
        else {
            panic!()
        };
        srv.handle(Request::Write(fd, vec![7u8; 1000])).unwrap();
        srv.handle(Request::Close(fd)).unwrap();
        srv.handle(Request::Commit).unwrap();
        let st = fs.stats();
        assert_eq!(st.rpcs.get(), 5);
        assert!(st.rpc_bytes_in.get() > 1000, "write payload counted");
        assert!(st.rpc_bytes_out.get() >= 5 * 40, "response headers counted");
    }

    #[test]
    fn json_lists_every_counter() {
        let st = InvStats::new();
        st.rpcs.add(7);
        let json = st.to_json();
        assert!(json.contains("\"rpcs\": 7"), "{json}");
        for (name, _) in st.snapshot() {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing");
        }
    }
}
