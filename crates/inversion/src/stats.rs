//! File system operation statistics: the `inv_stat` system relation.
//!
//! Every [`crate::InvClient`] entry point, the chunk storage layer, and the
//! client/server dispatcher report into one [`InvStats`] shared by all
//! clients of an [`crate::InversionFs`]. The registry is registered with the
//! database as a virtual relation named `inv_stat` with schema
//! `(op = text, count = int8)`, so the counters are queryable from POSTQUEL
//! exactly like the storage manager's own `pg_stat_*` relations:
//!
//! ```text
//! retrieve (s.op, s.count) from s in inv_stat
//! ```

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use minidb::stats::Counter;
use minidb::{Datum, Db, Row, Schema, TypeId};
use parking_lot::Mutex;

/// Counters for every file system operation, chunk-level I/O, and the
/// client/server protocol. All updates are relaxed atomics — cheap enough to
/// leave on permanently, readable concurrently with any workload.
#[derive(Debug, Default)]
pub struct InvStats {
    /// `p_creat` calls.
    pub creats: Counter,
    /// `p_open` calls.
    pub opens: Counter,
    /// `p_close` calls.
    pub closes: Counter,
    /// `p_read` calls.
    pub reads: Counter,
    /// `p_write` calls.
    pub writes: Counter,
    /// `p_lseek` calls.
    pub seeks: Counter,
    /// `p_stat` + `p_fstat` calls.
    pub stat_calls: Counter,
    /// `p_mkdir` calls.
    pub mkdirs: Counter,
    /// `p_readdir` calls.
    pub readdirs: Counter,
    /// `p_unlink` calls.
    pub unlinks: Counter,
    /// `p_rename` calls.
    pub renames: Counter,
    /// `p_slice` calls (WTF-style file composition).
    pub slices: Counter,
    /// Bytes returned by `p_read`.
    pub bytes_read: Counter,
    /// Bytes accepted by `p_write`.
    pub bytes_written: Counter,
    /// Chunk records fetched from the database.
    pub chunk_reads: Counter,
    /// Chunk records stored (inserted or updated) in the database.
    pub chunk_writes: Counter,
    /// Chunk records shared by `p_slice` — stored rows copied between chunk
    /// tables without decoding or re-encoding the payload (zero-copy).
    pub chunks_shared: Counter,
    /// Write calls absorbed into an already-active coalescing buffer
    /// ("multiple small sequential writes ... are coalesced").
    pub chunks_coalesced: Counter,
    /// Coalescing-buffer flushes that actually wrote a chunk.
    pub coalesce_flushes: Counter,
    /// Requests executed by the client/server dispatcher.
    pub rpcs: Counter,
    /// Request bytes received by the server (wire sizes).
    pub rpc_bytes_in: Counter,
    /// Response bytes sent by the server (wire sizes).
    pub rpc_bytes_out: Counter,
    /// Connections accepted by the session pool.
    pub sessions_opened: Counter,
    /// Sessions torn down (clean close or disconnect).
    pub sessions_closed: Counter,
    /// Frames read off the wire across all sessions.
    pub net_frames_in: Counter,
    /// Frames written to the wire across all sessions.
    pub net_frames_out: Counter,
    /// Bytes read off the wire across all sessions.
    pub net_bytes_in: Counter,
    /// Bytes written to the wire across all sessions.
    pub net_bytes_out: Counter,
    /// Frames that failed to decode (bad opcode, checksum, malformed body).
    pub net_decode_errors: Counter,
    /// Times a reader blocked because its session queue was full.
    pub net_queue_full: Counter,
    /// In-flight transactions aborted because the client disconnected.
    pub net_disconnect_aborts: Counter,
    /// Per-session network counters, queryable as `pg_stat_net`.
    pub net: NetRegistry,
}

impl InvStats {
    /// A zeroed registry.
    pub fn new() -> InvStats {
        InvStats::default()
    }

    /// Every counter as `(name, value)`, in `inv_stat` row order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("creat", self.creats.get()),
            ("open", self.opens.get()),
            ("close", self.closes.get()),
            ("read", self.reads.get()),
            ("write", self.writes.get()),
            ("lseek", self.seeks.get()),
            ("stat", self.stat_calls.get()),
            ("mkdir", self.mkdirs.get()),
            ("readdir", self.readdirs.get()),
            ("unlink", self.unlinks.get()),
            ("rename", self.renames.get()),
            ("slice", self.slices.get()),
            ("bytes_read", self.bytes_read.get()),
            ("bytes_written", self.bytes_written.get()),
            ("chunk_reads", self.chunk_reads.get()),
            ("chunk_writes", self.chunk_writes.get()),
            ("chunks_shared", self.chunks_shared.get()),
            ("chunks_coalesced", self.chunks_coalesced.get()),
            ("coalesce_flushes", self.coalesce_flushes.get()),
            ("rpcs", self.rpcs.get()),
            ("rpc_bytes_in", self.rpc_bytes_in.get()),
            ("rpc_bytes_out", self.rpc_bytes_out.get()),
            ("sessions_opened", self.sessions_opened.get()),
            ("sessions_closed", self.sessions_closed.get()),
            ("net_frames_in", self.net_frames_in.get()),
            ("net_frames_out", self.net_frames_out.get()),
            ("net_bytes_in", self.net_bytes_in.get()),
            ("net_bytes_out", self.net_bytes_out.get()),
            ("net_decode_errors", self.net_decode_errors.get()),
            ("net_queue_full", self.net_queue_full.get()),
            ("net_disconnect_aborts", self.net_disconnect_aborts.get()),
        ]
    }

    /// The counters as `inv_stat` rows.
    pub fn rows(&self) -> Vec<Row> {
        self.snapshot()
            .into_iter()
            .map(|(op, n)| vec![Datum::Text(op.into()), Datum::Int8(n as i64)])
            .collect()
    }

    /// The counters as a JSON object (for bench reports).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .snapshot()
            .into_iter()
            .map(|(op, n)| format!("\"{op}\": {n}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Wire-level counters for one server-side session, published while the
/// connection lives and retained (marked closed) afterwards so post-mortem
/// queries still see the totals.
#[derive(Debug, Default)]
pub struct SessionNetStats {
    /// Pool-assigned session number.
    pub session: u64,
    /// Frames read from this connection.
    pub frames_in: Counter,
    /// Frames written to this connection.
    pub frames_out: Counter,
    /// Bytes read from this connection (headers + payloads).
    pub bytes_in: Counter,
    /// Bytes written to this connection.
    pub bytes_out: Counter,
    /// Frames that arrived but failed to decode.
    pub decode_errors: Counter,
    /// Times the reader blocked on a full request queue (backpressure).
    pub queue_full: Counter,
    /// 1 if the session's transaction was aborted by a disconnect.
    pub disconnect_aborts: Counter,
    closed: AtomicBool,
}

impl SessionNetStats {
    /// Marks the session torn down.
    pub fn mark_closed(&self) {
        self.closed.store(true, Relaxed);
    }

    /// Whether the session has been torn down.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Relaxed)
    }
}

/// The live list of per-session counters behind `pg_stat_net`.
#[derive(Debug, Default)]
pub struct NetRegistry {
    sessions: Mutex<Vec<Arc<SessionNetStats>>>,
}

impl NetRegistry {
    /// Adds a session's counters to the registry.
    pub fn register(&self, session: u64) -> Arc<SessionNetStats> {
        let st = Arc::new(SessionNetStats {
            session,
            ..SessionNetStats::default()
        });
        self.sessions.lock().push(Arc::clone(&st));
        st
    }

    /// Snapshot of every session ever registered (open and closed).
    pub fn sessions(&self) -> Vec<Arc<SessionNetStats>> {
        self.sessions.lock().clone()
    }

    /// The registry as `pg_stat_net` rows.
    pub fn rows(&self) -> Vec<Row> {
        self.sessions()
            .iter()
            .map(|s| {
                vec![
                    Datum::Int8(s.session as i64),
                    Datum::Text(if s.is_closed() { "closed" } else { "open" }.into()),
                    Datum::Int8(s.frames_in.get() as i64),
                    Datum::Int8(s.frames_out.get() as i64),
                    Datum::Int8(s.bytes_in.get() as i64),
                    Datum::Int8(s.bytes_out.get() as i64),
                    Datum::Int8(s.decode_errors.get() as i64),
                    Datum::Int8(s.queue_full.get() as i64),
                    Datum::Int8(s.disconnect_aborts.get() as i64),
                ]
            })
            .collect()
    }
}

/// The `inv_stat` relation schema: `(op = text, count = int8)`.
pub fn inv_stat_schema() -> Schema {
    Schema::new([("op", TypeId::TEXT), ("count", TypeId::INT8)])
}

/// The `pg_stat_net` relation schema: one row per server session.
pub fn pg_stat_net_schema() -> Schema {
    Schema::new([
        ("session", TypeId::INT8),
        ("state", TypeId::TEXT),
        ("frames_in", TypeId::INT8),
        ("frames_out", TypeId::INT8),
        ("bytes_in", TypeId::INT8),
        ("bytes_out", TypeId::INT8),
        ("decode_errors", TypeId::INT8),
        ("queue_full", TypeId::INT8),
        ("disconnect_aborts", TypeId::INT8),
    ])
}

/// Registers `stats` with `db` as the virtual relations `inv_stat` and
/// `pg_stat_net`.
pub(crate) fn register_inv_stat(db: &Db, stats: &Arc<InvStats>) {
    let st = Arc::clone(stats);
    db.register_virtual("inv_stat", inv_stat_schema(), Arc::new(move || st.rows()));
    let st = Arc::clone(stats);
    db.register_virtual(
        "pg_stat_net",
        pg_stat_net_schema(),
        Arc::new(move || st.net.rows()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_follow_snapshot_order() {
        let st = InvStats::new();
        st.reads.bump();
        st.bytes_read.add(4096);
        let rows = st.rows();
        assert_eq!(rows.len(), st.snapshot().len());
        let read_row = rows
            .iter()
            .find(|r| r[0] == Datum::Text("read".into()))
            .unwrap();
        assert_eq!(read_row[1], Datum::Int8(1));
        let bytes_row = rows
            .iter()
            .find(|r| r[0] == Datum::Text("bytes_read".into()))
            .unwrap();
        assert_eq!(bytes_row[1], Datum::Int8(4096));
    }

    #[test]
    fn inv_stat_queryable_from_postquel() {
        let fs = crate::InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/f", crate::CreateMode::default(), b"hello")
            .unwrap();
        assert_eq!(c.read_to_vec("/f", None).unwrap(), b"hello");
        assert!(fs.stats().creats.get() >= 1);
        assert!(fs.stats().writes.get() >= 1);
        assert!(fs.stats().chunk_writes.get() >= 1);
        assert!(fs.stats().chunk_reads.get() >= 1);
        assert_eq!(fs.stats().bytes_written.get(), 5);

        let mut s = fs.db().begin().unwrap();
        let res = s
            .query("retrieve (x.op, x.count) from x in inv_stat")
            .unwrap();
        s.commit().unwrap();
        let creat = res
            .rows
            .iter()
            .find(|r| r[0] == Datum::Text("creat".into()))
            .expect("creat row");
        assert!(matches!(creat[1], Datum::Int8(n) if n >= 1));
        assert_eq!(res.rows.len(), fs.stats().snapshot().len());
    }

    #[test]
    fn server_counts_rpcs_and_bytes() {
        use crate::fs::CreateMode;
        use crate::server::{InvServer, Request, Response};

        let fs = crate::InversionFs::open_in_memory().unwrap();
        let mut srv = InvServer::new(&fs);
        srv.handle(Request::Begin).unwrap();
        let Response::Fd(fd) = srv
            .handle(Request::Creat("/r".into(), CreateMode::default()))
            .unwrap()
        else {
            panic!()
        };
        srv.handle(Request::Write(fd, vec![7u8; 1000])).unwrap();
        srv.handle(Request::Close(fd)).unwrap();
        srv.handle(Request::Commit).unwrap();
        let st = fs.stats();
        assert_eq!(st.rpcs.get(), 5);
        assert!(st.rpc_bytes_in.get() > 1000, "write payload counted");
        assert!(
            st.rpc_bytes_out.get() >= 5 * crate::wire::HEADER_LEN as u64,
            "response headers counted"
        );
    }

    #[test]
    fn json_lists_every_counter() {
        let st = InvStats::new();
        st.rpcs.add(7);
        let json = st.to_json();
        assert!(json.contains("\"rpcs\": 7"), "{json}");
        for (name, _) in st.snapshot() {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing");
        }
    }
}
