//! The concurrent session server: many client connections, one
//! [`crate::InversionFs`].
//!
//! The paper ran Inversion client/server over TCP/IP; this module is that
//! server side made real. [`InvServerPool`] accepts connections carrying
//! [`crate::wire`] frames over any byte stream (the in-memory
//! [`simdev::DuplexStream`] pair in tests and benchmarks, or `std::net` TCP
//! via [`InvServerPool::listen_tcp`]). Each connection gets its own
//! server-side session — its own [`InvServer`], fd table, and transaction
//! scope — while a shared worker pool executes requests.
//!
//! Flow control is explicit: a per-session request queue is bounded by
//! [`PoolConfig::queue_bound`]; when it fills, the connection's reader
//! thread stops reading (backpressure propagates to the client through the
//! transport) and the stall is counted in `queue_full`. Requests from one
//! session execute strictly in order — a session is serviced by at most one
//! worker at a time — so pipelined bulk reads and writes (the 8 KB
//! [`crate::client::SEGMENT`] path) stream responses back in request order.
//!
//! Disconnects are first-class: when a connection drops (clean EOF, fatal
//! framing damage, or transport failure), the session's in-flight
//! transaction is aborted — releasing its locks — its descriptors are
//! reclaimed, and `disconnect_aborts` is bumped. A malformed frame that
//! leaves the stream in sync (checksum mismatch, unknown opcode, bad
//! payload) is answered with an error response and the session carries on.
//!
//! Every session publishes wire counters through the `pg_stat_net` virtual
//! relation (see [`crate::stats`]).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use minidb::stats::Counter;
use parking_lot::{Condvar, Mutex};
use simdev::DuplexStream;

use crate::fs::{InvError, InvResult, InversionFs};
use crate::server::{InvServer, Request, Response};
use crate::stats::SessionNetStats;
use crate::wire::{self, FrameEvent, WireError};

/// Tuning knobs for [`InvServerPool`].
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker threads shared by all sessions.
    pub workers: usize,
    /// Per-session request queue bound; a full queue blocks the
    /// connection's reader (backpressure) and counts a `queue_full` event.
    pub queue_bound: usize,
    /// Test hook: while paused, workers stop draining queues so
    /// backpressure can be observed deterministically.
    pub service_gate: Option<Arc<ServiceGate>>,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            queue_bound: 64,
            service_gate: None,
        }
    }
}

/// A pause switch for the worker pool (test instrumentation).
#[derive(Default)]
pub struct ServiceGate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl ServiceGate {
    /// A new, open gate.
    pub fn new() -> ServiceGate {
        ServiceGate::default()
    }

    /// Stops workers from draining session queues.
    pub fn pause(&self) {
        *self.paused.lock() = true;
    }

    /// Lets workers run again.
    pub fn resume(&self) {
        *self.paused.lock() = false;
        self.cv.notify_all();
    }

    fn wait_ready(&self, stop: &AtomicBool) {
        let mut paused = self.paused.lock();
        while *paused && !stop.load(SeqCst) {
            // Re-check the stop flag periodically so shutdown cannot hang
            // behind a gate nobody reopens.
            self.cv.wait_for(&mut paused, Duration::from_millis(10));
        }
    }
}

/// One queued unit of work for a session.
enum Item {
    /// A decoded request.
    Req(Request),
    /// A frame that arrived but did not decode; answered with an error.
    Malformed(WireError),
    /// The connection is gone; tear the session down.
    Eof,
}

struct SessQueue {
    items: VecDeque<Item>,
    /// A worker currently owns this session (in-order execution).
    in_service: bool,
    /// The session is already on the run queue.
    enqueued: bool,
    /// Teardown ran; nothing further will be serviced.
    closed: bool,
}

/// Server-side state for one connection.
struct SessionState {
    q: Mutex<SessQueue>,
    /// Signalled when the queue drains below the bound (reader wakes).
    space: Condvar,
    /// The response side of the connection.
    writer: Mutex<Box<dyn Write + Send>>,
    /// The session's executor: own fd table, own transaction scope.
    server: Mutex<InvServer>,
    stats: Arc<SessionNetStats>,
    /// Closes the session's transport. Invoked at teardown so a client
    /// blocked draining pipelined responses (bulk read/write streams) sees
    /// EOF promptly instead of hanging until pool shutdown, and at shutdown
    /// to unblock the reader thread.
    closer: Box<dyn Fn() + Send + Sync>,
}

struct Shared {
    fs: InversionFs,
    config: PoolConfig,
    /// Sessions with work, in arrival order.
    runq: Mutex<VecDeque<Arc<SessionState>>>,
    runq_cv: Condvar,
    sessions: Mutex<Vec<Arc<SessionState>>>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Puts `sess` on the run queue unless a worker already owns it or it
    /// is already queued. Caller holds the session's queue lock.
    fn schedule(&self, sess: &Arc<SessionState>, q: &mut SessQueue) {
        if !q.in_service && !q.enqueued && !q.closed {
            q.enqueued = true;
            self.runq.lock().push_back(Arc::clone(sess));
            self.runq_cv.notify_one();
        }
    }
}

/// A multi-session Inversion server: shared worker pool, per-connection
/// sessions, bounded queues, disconnect-abort semantics.
pub struct InvServerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    next_session: Mutex<u64>,
    stopped: AtomicBool,
}

impl InvServerPool {
    /// Starts a pool serving `fs` with `config.workers` worker threads.
    pub fn new(fs: &InversionFs, config: PoolConfig) -> InvServerPool {
        let shared = Arc::new(Shared {
            fs: fs.clone(),
            config: config.clone(),
            runq: Mutex::new(VecDeque::new()),
            runq_cv: Condvar::new(),
            sessions: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let mut workers = Vec::new();
        for _ in 0..config.workers.max(1) {
            let sh = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_main(&sh)));
        }
        InvServerPool {
            shared,
            workers: Mutex::new(workers),
            readers: Mutex::new(Vec::new()),
            next_session: Mutex::new(0),
            stopped: AtomicBool::new(false),
        }
    }

    /// The file system this pool serves.
    pub fn fs(&self) -> &InversionFs {
        &self.shared.fs
    }

    /// Accepts one connection given its transport halves and a closer that
    /// unblocks the reader at shutdown. Returns the session number.
    pub fn serve(
        &self,
        reader: Box<dyn Read + Send>,
        writer: Box<dyn Write + Send>,
        closer: Box<dyn Fn() + Send + Sync>,
    ) -> u64 {
        let id = {
            let mut next = self.next_session.lock();
            *next += 1;
            *next
        };
        let inv = self.shared.fs.stats();
        inv.sessions_opened.bump();
        let stats = inv.net.register(id);
        let sess = Arc::new(SessionState {
            q: Mutex::new(SessQueue {
                items: VecDeque::new(),
                in_service: false,
                enqueued: false,
                closed: false,
            }),
            space: Condvar::new(),
            writer: Mutex::new(writer),
            server: Mutex::new(InvServer::new(&self.shared.fs)),
            stats,
            closer,
        });
        self.shared.sessions.lock().push(Arc::clone(&sess));
        let sh = Arc::clone(&self.shared);
        let handle = std::thread::spawn(move || reader_main(&sh, &sess, reader));
        self.readers.lock().push(handle);
        id
    }

    /// Accepts an in-memory duplex connection (the test/bench transport).
    pub fn serve_duplex(&self, conn: DuplexStream) -> u64 {
        let reader = conn.clone();
        let writer = conn.clone();
        self.serve(
            Box::new(reader),
            Box::new(writer),
            Box::new(move || conn.shutdown()),
        )
    }

    /// Binds `addr` and serves TCP connections until shutdown. Returns the
    /// bound local address (useful with port 0).
    pub fn listen_tcp(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let listener = std::net::TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let sh = Arc::clone(&self.shared);
        let pool = self.clone_for_accept();
        let handle = std::thread::spawn(move || {
            while !sh.shutdown.load(SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        stream.set_nonblocking(false).ok();
                        if let Ok(rd) = stream.try_clone() {
                            let closer_stream = match stream.try_clone() {
                                Ok(s) => s,
                                Err(_) => continue,
                            };
                            pool.serve(
                                Box::new(rd),
                                Box::new(stream),
                                Box::new(move || {
                                    closer_stream.shutdown(std::net::Shutdown::Both).ok();
                                }),
                            );
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        self.readers.lock().push(handle);
        Ok(local)
    }

    /// A handle sharing this pool's state, for the accept thread.
    fn clone_for_accept(&self) -> InvServerPool {
        InvServerPool {
            shared: Arc::clone(&self.shared),
            workers: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            next_session: Mutex::new(1_000_000),
            // The accept-side clone must not re-run shutdown on drop.
            stopped: AtomicBool::new(true),
        }
    }

    /// Stops the pool: closes every connection, aborts in-flight
    /// transactions via the normal disconnect path, and joins all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, SeqCst) {
            return;
        }
        self.shared.shutdown.store(true, SeqCst);
        // Unblock readers stuck in read() and clients stuck on responses,
        // then readers stuck waiting for queue space.
        for sess in self.shared.sessions.lock().iter() {
            (sess.closer)();
            sess.space.notify_all();
        }
        if let Some(gate) = &self.shared.config.service_gate {
            gate.cv.notify_all();
        }
        let readers: Vec<_> = self.readers.lock().drain(..).collect();
        for h in readers {
            h.join().ok();
        }
        // Readers have enqueued their Eof items; let the workers drain.
        self.shared.runq_cv.notify_all();
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for h in workers {
            h.join().ok();
        }
    }
}

impl Drop for InvServerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads frames off one connection into its session queue.
fn reader_main(sh: &Shared, sess: &Arc<SessionState>, mut reader: Box<dyn Read + Send>) {
    let inv = sh.fs.stats();
    loop {
        match wire::read_frame(&mut reader) {
            Ok(FrameEvent::Eof) => {
                enqueue(sh, sess, Item::Eof);
                return;
            }
            Ok(FrameEvent::Frame { opcode, payload }) => {
                let nbytes = (wire::HEADER_LEN + payload.len()) as u64;
                sess.stats.frames_in.bump();
                sess.stats.bytes_in.add(nbytes);
                inv.net_frames_in.bump();
                inv.net_bytes_in.add(nbytes);
                match wire::decode_request_frame(opcode, &payload) {
                    Ok(req) => enqueue(sh, sess, Item::Req(req)),
                    Err(e) => {
                        sess.stats.decode_errors.bump();
                        inv.net_decode_errors.bump();
                        enqueue(sh, sess, Item::Malformed(e));
                    }
                }
            }
            Ok(FrameEvent::Corrupt(e)) => {
                // The frame was consumed; the stream is still in sync.
                sess.stats.decode_errors.bump();
                inv.net_decode_errors.bump();
                enqueue(sh, sess, Item::Malformed(e));
            }
            Err(e) => {
                // Framing is untrustworthy: count protocol damage (anything
                // but a plain transport failure) and tear the session down.
                if !matches!(e, WireError::Io(_)) {
                    sess.stats.decode_errors.bump();
                    inv.net_decode_errors.bump();
                }
                enqueue(sh, sess, Item::Eof);
                return;
            }
        }
        if sh.shutdown.load(SeqCst) {
            enqueue(sh, sess, Item::Eof);
            return;
        }
    }
}

/// Queues `item` for `sess`, blocking while the queue is at its bound
/// (backpressure). `Eof` bypasses the bound so teardown always lands.
fn enqueue(sh: &Shared, sess: &Arc<SessionState>, item: Item) {
    let inv = sh.fs.stats();
    let bound = sh.config.queue_bound.max(1);
    let mut q = sess.q.lock();
    if q.closed {
        return;
    }
    if !matches!(item, Item::Eof) {
        while q.items.len() >= bound && !sh.shutdown.load(SeqCst) {
            sess.stats.queue_full.bump();
            inv.net_queue_full.bump();
            sess.space.wait_for(&mut q, Duration::from_millis(50));
        }
        if q.closed {
            return;
        }
    }
    q.items.push_back(item);
    sh.schedule(sess, &mut q);
}

/// Worker loop: claim a runnable session, drain a batch of its queue in
/// order, hand it back.
fn worker_main(sh: &Shared) {
    loop {
        let sess = {
            let mut runq = sh.runq.lock();
            loop {
                if let Some(s) = runq.pop_front() {
                    break s;
                }
                if sh.shutdown.load(SeqCst) {
                    return;
                }
                sh.runq_cv.wait_for(&mut runq, Duration::from_millis(50));
            }
        };
        {
            let mut q = sess.q.lock();
            q.enqueued = false;
            if q.in_service || q.closed {
                continue;
            }
            q.in_service = true;
        }
        service(sh, &sess);
    }
}

/// Drains one session's queue (the session is exclusively owned by this
/// worker until `in_service` is cleared).
fn service(sh: &Shared, sess: &Arc<SessionState>) {
    let batch = sh.config.queue_bound.max(1);
    let mut done = 0usize;
    loop {
        if let Some(gate) = &sh.config.service_gate {
            gate.wait_ready(&sh.shutdown);
        }
        let item = {
            let mut q = sess.q.lock();
            match q.items.pop_front() {
                Some(it) => it,
                None => {
                    q.in_service = false;
                    return;
                }
            }
        };
        sess.space.notify_all();
        match item {
            Item::Req(req) => respond(sh, sess, {
                let mut srv = sess.server.lock();
                srv.handle(req)
            }),
            Item::Malformed(e) => respond(sh, sess, Err(InvError::from(e))),
            Item::Eof => {
                teardown(sh, sess);
                return;
            }
        }
        done += 1;
        if done >= batch {
            // Yield the worker so other sessions make progress; requeue if
            // work remains.
            let mut q = sess.q.lock();
            q.in_service = false;
            if !q.items.is_empty() {
                sh.schedule(sess, &mut q);
            }
            return;
        }
    }
}

/// Encodes and writes one response, charging the session's wire counters.
fn respond(sh: &Shared, sess: &SessionState, res: InvResult<Response>) {
    let bytes = wire::encode_response(&res);
    let inv = sh.fs.stats();
    sess.stats.frames_out.bump();
    sess.stats.bytes_out.add(bytes.len() as u64);
    inv.net_frames_out.bump();
    inv.net_bytes_out.add(bytes.len() as u64);
    let mut w = sess.writer.lock();
    // A write failure means the client is gone; the reader side will
    // observe the same disconnect and queue the teardown.
    wire::write_frame(&mut *w, &bytes).ok();
}

/// Tears a session down after its connection vanished: abort the in-flight
/// transaction (releasing locks), reclaim fds, retire the stats row.
fn teardown(sh: &Shared, sess: &SessionState) {
    {
        let mut q = sess.q.lock();
        q.closed = true;
        q.items.clear();
        q.in_service = false;
    }
    sess.space.notify_all();
    let inv = sh.fs.stats();
    let aborted = sess.server.lock().disconnect();
    if aborted {
        sess.stats.disconnect_aborts.bump();
        inv.net_disconnect_aborts.bump();
    }
    sess.stats.mark_closed();
    inv.sessions_closed.bump();
    // Close the transport last: any client still blocked on a pipelined
    // response (mid-bulk fatal framing damage) must see EOF, not hang.
    (sess.closer)();
}

/// Client-side wire counters (mirror of the server's per-session row, for
/// cross-checking in tests).
#[derive(Debug, Default)]
pub struct ClientWireStats {
    /// Frames this client wrote.
    pub frames_out: Counter,
    /// Frames this client read.
    pub frames_in: Counter,
    /// Bytes this client wrote.
    pub bytes_out: Counter,
    /// Bytes this client read.
    pub bytes_in: Counter,
}

/// A client speaking the real wire protocol over any byte stream.
///
/// Mirrors the `p_*` API of [`crate::InvClient`], but every call is encoded
/// into a [`crate::wire`] frame, sent to an [`InvServerPool`] session, and
/// the response decoded back. Bulk reads and writes pipeline
/// [`crate::client::SEGMENT`]-sized requests: all frames are sent before any
/// response is awaited, so the transport stays full.
pub struct WireClient<S> {
    stream: S,
    stats: ClientWireStats,
}

impl<S: Read + Write> WireClient<S> {
    /// Wraps a connected byte stream.
    pub fn new(stream: S) -> WireClient<S> {
        WireClient {
            stream,
            stats: ClientWireStats::default(),
        }
    }

    /// This client's wire counters.
    pub fn stats(&self) -> &ClientWireStats {
        &self.stats
    }

    /// Sends one request without waiting for its response (pipelining).
    pub fn send(&mut self, req: &Request) -> InvResult<()> {
        let bytes = wire::encode_request(req);
        wire::write_frame(&mut self.stream, &bytes)
            .map_err(|e| InvError::Invalid(format!("wire: send failed: {e}")))?;
        self.stats.frames_out.bump();
        self.stats.bytes_out.add(bytes.len() as u64);
        Ok(())
    }

    /// Receives one response (pairs with an earlier [`WireClient::send`]).
    pub fn recv(&mut self) -> InvResult<Response> {
        match wire::read_frame(&mut self.stream).map_err(InvError::from)? {
            FrameEvent::Eof => Err(InvError::Invalid("wire: server closed connection".into())),
            FrameEvent::Corrupt(e) => Err(e.into()),
            FrameEvent::Frame { opcode, payload } => {
                self.stats.frames_in.bump();
                self.stats
                    .bytes_in
                    .add((wire::HEADER_LEN + payload.len()) as u64);
                wire::decode_response_frame(opcode, &payload).map_err(InvError::from)?
            }
        }
    }

    /// One synchronous round trip.
    pub fn call(&mut self, req: &Request) -> InvResult<Response> {
        self.send(req)?;
        self.recv()
    }

    /// `p_begin` over the wire.
    pub fn begin(&mut self) -> InvResult<()> {
        self.call(&Request::Begin).map(|_| ())
    }

    /// `p_commit` over the wire.
    pub fn commit(&mut self) -> InvResult<()> {
        self.call(&Request::Commit).map(|_| ())
    }

    /// `p_abort` over the wire.
    pub fn abort(&mut self) -> InvResult<()> {
        self.call(&Request::Abort).map(|_| ())
    }

    /// `p_creat` over the wire.
    pub fn creat(&mut self, path: &str, mode: crate::fs::CreateMode) -> InvResult<crate::api::Fd> {
        match self.call(&Request::Creat(path.into(), mode))? {
            Response::Fd(fd) => Ok(fd),
            other => Err(unexpected(&other)),
        }
    }

    /// `p_open` over the wire.
    pub fn open(
        &mut self,
        path: &str,
        mode: crate::api::OpenMode,
        asof: Option<simdev::SimInstant>,
    ) -> InvResult<crate::api::Fd> {
        match self.call(&Request::Open(path.into(), mode, asof))? {
            Response::Fd(fd) => Ok(fd),
            other => Err(unexpected(&other)),
        }
    }

    /// `p_close` over the wire.
    pub fn close(&mut self, fd: crate::api::Fd) -> InvResult<()> {
        self.call(&Request::Close(fd)).map(|_| ())
    }

    /// `p_stat` over the wire.
    pub fn stat(&mut self, path: &str) -> InvResult<crate::fs::FileStat> {
        match self.call(&Request::Stat(path.into()))? {
            Response::Stat(s) => Ok(*s),
            other => Err(unexpected(&other)),
        }
    }

    /// `p_mkdir` over the wire.
    pub fn mkdir(&mut self, path: &str) -> InvResult<()> {
        self.call(&Request::Mkdir(path.into())).map(|_| ())
    }

    /// `p_unlink` over the wire.
    pub fn unlink(&mut self, path: &str) -> InvResult<()> {
        self.call(&Request::Unlink(path.into())).map(|_| ())
    }

    /// `p_readdir` over the wire.
    pub fn readdir(&mut self, path: &str) -> InvResult<Vec<(String, minidb::Oid)>> {
        match self.call(&Request::Readdir(path.into()))? {
            Response::Entries(es) => Ok(es),
            other => Err(unexpected(&other)),
        }
    }

    /// `p_rename` over the wire.
    pub fn rename(&mut self, from: &str, to: &str) -> InvResult<()> {
        self.call(&Request::Rename(from.into(), to.into()))
            .map(|_| ())
    }

    /// `p_undelete` over the wire.
    pub fn undelete(&mut self, path: &str, t: simdev::SimInstant) -> InvResult<()> {
        self.call(&Request::Undelete(path.into(), t)).map(|_| ())
    }

    /// `p_slice` over the wire.
    pub fn slice(
        &mut self,
        dest: &str,
        mode: crate::fs::CreateMode,
        ranges: &[crate::fs::SliceRange],
    ) -> InvResult<crate::fs::FileStat> {
        match self.call(&Request::Slice(dest.into(), mode, ranges.to_vec()))? {
            Response::Stat(s) => Ok(*s),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads `len` bytes from `fd`, pipelining [`crate::client::SEGMENT`]-
    /// sized requests: every request frame is sent before the first response
    /// is read. Short reads (EOF) end the result early.
    pub fn read_bulk(&mut self, fd: crate::api::Fd, len: usize) -> InvResult<Vec<u8>> {
        let mut sent = 0usize;
        let mut inflight = 0usize;
        while sent < len {
            let want = (len - sent).min(crate::client::SEGMENT);
            self.send(&Request::Read(fd, want))?;
            sent += want;
            inflight += 1;
        }
        let mut out = Vec::with_capacity(len);
        let mut first_err = None;
        for _ in 0..inflight {
            match self.recv() {
                Ok(Response::Data(d)) => out.extend_from_slice(&d),
                Ok(other) => {
                    first_err.get_or_insert(unexpected(&other));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Writes all of `data` to `fd`, pipelining SEGMENT-sized frames.
    /// Responses are drained after every frame is on the wire; the first
    /// error (if any) is surfaced once the stream is back in sync.
    pub fn write_bulk(&mut self, fd: crate::api::Fd, data: &[u8]) -> InvResult<usize> {
        let mut inflight = 0usize;
        for chunk in data.chunks(crate::client::SEGMENT.max(1)) {
            self.send(&Request::Write(fd, chunk.to_vec()))?;
            inflight += 1;
        }
        let mut total = 0usize;
        let mut first_err = None;
        for _ in 0..inflight {
            match self.recv() {
                Ok(Response::Count(n)) => total += n as usize,
                Ok(other) => {
                    first_err.get_or_insert(unexpected(&other));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(total),
            Some(e) => Err(e),
        }
    }
}

fn unexpected(resp: &Response) -> InvError {
    InvError::Invalid(format!("wire: unexpected response {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::CreateMode;
    use simdev::duplex_pair;

    #[test]
    fn one_session_full_file_lifecycle() {
        let fs = InversionFs::open_in_memory().unwrap();
        let pool = InvServerPool::new(&fs, PoolConfig::default());
        let (client_end, server_end) = duplex_pair();
        pool.serve_duplex(server_end);
        let mut c = WireClient::new(client_end);
        c.begin().unwrap();
        let fd = c.creat("/wire", CreateMode::default()).unwrap();
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(c.write_bulk(fd, &payload).unwrap(), payload.len());
        c.call(&Request::Lseek(fd, 0, crate::api::SeekWhence::Set))
            .unwrap();
        let back = c.read_bulk(fd, payload.len()).unwrap();
        assert_eq!(back, payload);
        c.close(fd).unwrap();
        c.commit().unwrap();
        assert_eq!(c.stat("/wire").unwrap().size, payload.len() as u64);
        pool.shutdown();
        assert!(fs.stats().sessions_opened.get() >= 1);
        assert_eq!(
            fs.stats().sessions_opened.get(),
            fs.stats().sessions_closed.get()
        );
    }

    #[test]
    fn rename_undelete_and_slice_over_the_wire() {
        let fs = InversionFs::open_in_memory().unwrap();
        let pool = InvServerPool::new(&fs, PoolConfig::default());
        let (client_end, server_end) = duplex_pair();
        pool.serve_duplex(server_end);
        let mut c = WireClient::new(client_end);

        let fd = c.creat("/a", CreateMode::default()).unwrap();
        let data: Vec<u8> = (0..crate::chunk::CHUNK_SIZE + 500)
            .map(|i| (i % 251) as u8)
            .collect();
        c.write_bulk(fd, &data).unwrap();
        c.close(fd).unwrap();

        c.rename("/a", "/b").unwrap();
        assert!(c.stat("/a").is_err());
        let t_alive = fs.db().now();
        c.unlink("/b").unwrap();
        assert!(c.stat("/b").is_err());
        c.undelete("/b", t_alive).unwrap();
        assert_eq!(c.stat("/b").unwrap().size, data.len() as u64);

        let st = c
            .slice(
                "/composed",
                CreateMode::default(),
                &[crate::fs::SliceRange::new("/b", 0, data.len() as u64)],
            )
            .unwrap();
        assert_eq!(st.size, data.len() as u64);
        let fd = c.open("/composed", crate::api::OpenMode::Read, None).unwrap();
        assert_eq!(c.read_bulk(fd, data.len()).unwrap(), data);
        c.close(fd).unwrap();
        assert!(fs.stats().chunks_shared.get() >= 1);
        pool.shutdown();
        assert_eq!(fs.check(), vec![]);
    }

    #[test]
    fn two_sessions_have_isolated_fd_tables() {
        let fs = InversionFs::open_in_memory().unwrap();
        let pool = InvServerPool::new(&fs, PoolConfig::default());
        let (a_end, a_srv) = duplex_pair();
        let (b_end, b_srv) = duplex_pair();
        pool.serve_duplex(a_srv);
        pool.serve_duplex(b_srv);
        let mut a = WireClient::new(a_end);
        let mut b = WireClient::new(b_end);
        let fd_a = a.creat("/shared", CreateMode::default()).unwrap();
        // Session B's descriptor table knows nothing about A's fd.
        assert!(matches!(
            b.call(&Request::Read(fd_a, 10)),
            Err(InvError::BadFd(_))
        ));
        let fd_b = b.open("/shared", crate::api::OpenMode::Read, None).unwrap();
        let _ = (fd_a, fd_b);
        pool.shutdown();
    }

    #[test]
    fn disconnect_mid_transaction_aborts() {
        let fs = InversionFs::open_in_memory().unwrap();
        let pool = InvServerPool::new(&fs, PoolConfig::default());
        let (client_end, server_end) = duplex_pair();
        pool.serve_duplex(server_end);
        let mut c = WireClient::new(client_end);
        c.begin().unwrap();
        c.creat("/doomed", CreateMode::default()).unwrap();
        drop(c); // Hang up mid-transaction.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while fs.stats().net_disconnect_aborts.get() == 0 {
            assert!(std::time::Instant::now() < deadline, "abort never observed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut probe = fs.client();
        assert!(probe.p_stat("/doomed", None).is_err(), "rows leaked");
        pool.shutdown();
    }
}
