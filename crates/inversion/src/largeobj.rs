//! POSTGRES-style large objects ("BLOBs") backed by Inversion files.
//!
//! "POSTGRES supports large object storage by creating Inversion files to
//! store object data. ... The integration of large database objects with
//! Inversion means that two different clients can share data that they use
//! in different ways. The same Inversion file can be used by a database
//! application and by a file system client simultaneously."
//!
//! A [`LargeObject`] is a file with a `fileatt` row and data relation but no
//! directory entry; [`LargeObject::link`] grafts it into the namespace
//! afterwards, at which point ordinary `p_open`/`p_read` work on the *same*
//! data the query-language client manipulates.

use minidb::{Datum, Oid, Session};

use crate::api::{read_file_bytes, write_chunk};
use crate::chunk::split_range;
use crate::fs::{file_fileatt_row, CreateMode, FileStat, InvError, InvResult, InversionFs};
use crate::fs::{A_MTIME, A_SIZE};

/// A handle to a database large object.
#[derive(Clone)]
pub struct LargeObject {
    fs: InversionFs,
    oid: Oid,
}

impl LargeObject {
    /// Creates a new, anonymous large object.
    pub fn create(fs: &InversionFs, s: &mut Session, mode: &CreateMode) -> InvResult<LargeObject> {
        let oid = fs.db().alloc_oid()?;
        let (datarel, chunkidx) = fs.create_data_rel(oid, mode.device, mode.no_history)?;
        let now = fs.db().now();
        let row = file_fileatt_row(oid, mode, now, datarel, chunkidx);
        s.insert(fs.rels.fileatt, row)?;
        Ok(LargeObject {
            fs: fs.clone(),
            oid,
        })
    }

    /// Opens an existing large object (or any file) by oid.
    pub fn open(fs: &InversionFs, s: &mut Session, oid: Oid) -> InvResult<LargeObject> {
        fs.stat_oid(s, oid, None)?;
        Ok(LargeObject {
            fs: fs.clone(),
            oid,
        })
    }

    /// The object identifier.
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// Current attributes.
    pub fn stat(&self, s: &mut Session) -> InvResult<FileStat> {
        self.fs.stat_oid(s, self.oid, None)
    }

    /// Writes `data` at byte `offset`, growing the object as needed.
    pub fn write_at(&self, s: &mut Session, offset: u64, data: &[u8]) -> InvResult<()> {
        let stat = self.stat(s)?;
        let mut pos = 0usize;
        for (chunkno, start, take) in split_range(offset, data.len()) {
            write_chunk(&self.fs, s, &stat, chunkno, start, &data[pos..pos + take])?;
            pos += take;
        }
        let new_size = stat.size.max(offset + data.len() as u64);
        let Some((tid, mut row)) = self.fs.fileatt_row(s, self.oid, None)? else {
            return Err(InvError::NoSuchPath(format!("oid {}", self.oid)));
        };
        row[A_SIZE] = Datum::Int8(new_size as i64);
        row[A_MTIME] = Datum::Time(self.fs.db().now().as_nanos());
        s.update(self.fs.rels.fileatt, tid, row)?;
        Ok(())
    }

    /// Reads up to `len` bytes at `offset` (short at end of object).
    pub fn read_at(&self, s: &mut Session, offset: u64, len: usize) -> InvResult<Vec<u8>> {
        let stat = self.stat(s)?;
        let avail = stat.size.saturating_sub(offset);
        let len = (len as u64).min(avail) as usize;
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        for (chunkno, start, take) in split_range(offset, len) {
            if let Some(content) = crate::api::fetch_chunk(&self.fs, s, &stat, chunkno, None)? {
                let end = (start + take).min(content.len());
                if end > start {
                    out[pos..pos + (end - start)].copy_from_slice(&content[start..end]);
                }
            }
            pos += take;
        }
        Ok(out)
    }

    /// The whole object's bytes.
    pub fn read_all(&self, s: &mut Session) -> InvResult<Vec<u8>> {
        let stat = self.stat(s)?;
        read_file_bytes(&self.fs, s, &stat, None)
    }

    /// Gives the object a pathname, making it visible to file system
    /// clients.
    pub fn link(&self, s: &mut Session, path: &str) -> InvResult<()> {
        let (parent, name) = self.fs.resolve_parent(s, path, None)?;
        if self.fs.lookup_child(s, parent, &name, None)?.is_some() {
            return Err(InvError::Exists(path.to_string()));
        }
        s.insert(
            self.fs.rels.naming,
            vec![
                Datum::Text(name),
                Datum::Oid(parent.0),
                Datum::Oid(self.oid.0),
            ],
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::OpenMode;
    use crate::chunk::CHUNK_SIZE;

    #[test]
    fn blob_write_read_roundtrip() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        let lo = LargeObject::create(&fs, &mut s, &CreateMode::default()).unwrap();
        let data: Vec<u8> = (0..CHUNK_SIZE * 2 + 77).map(|i| (i % 255) as u8).collect();
        lo.write_at(&mut s, 0, &data).unwrap();
        assert_eq!(lo.read_all(&mut s).unwrap(), data);
        assert_eq!(lo.stat(&mut s).unwrap().size as usize, data.len());
        s.commit().unwrap();
    }

    #[test]
    fn random_access_read_write() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        let lo = LargeObject::create(&fs, &mut s, &CreateMode::default()).unwrap();
        lo.write_at(&mut s, 10_000, b"hello").unwrap();
        assert_eq!(lo.read_at(&mut s, 10_000, 5).unwrap(), b"hello");
        assert_eq!(lo.read_at(&mut s, 0, 4).unwrap(), vec![0u8; 4]);
        assert_eq!(lo.read_at(&mut s, 10_003, 100).unwrap(), b"lo");
        assert_eq!(lo.read_at(&mut s, 999_999, 10).unwrap(), Vec::<u8>::new());
        s.commit().unwrap();
    }

    #[test]
    fn shared_between_database_and_file_clients() {
        // The paper's headline integration: one object, two interfaces.
        let fs = InversionFs::open_in_memory().unwrap();
        let oid;
        {
            let mut s = fs.db().begin().unwrap();
            let lo = LargeObject::create(&fs, &mut s, &CreateMode::default()).unwrap();
            lo.write_at(&mut s, 0, b"written by the database client")
                .unwrap();
            lo.link(&mut s, "/shared.dat").unwrap();
            oid = lo.oid();
            s.commit().unwrap();
        }
        // File system client reads it by name...
        let mut c = fs.client();
        assert_eq!(
            c.read_to_vec("/shared.dat", None).unwrap(),
            b"written by the database client"
        );
        // ...and writes through p_write; the database client sees the change.
        c.p_begin().unwrap();
        let fd = c.p_open("/shared.dat", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"WRITTEN").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        let mut s = fs.db().begin().unwrap();
        let lo = LargeObject::open(&fs, &mut s, oid).unwrap();
        assert_eq!(&lo.read_at(&mut s, 0, 7).unwrap(), b"WRITTEN");
        s.commit().unwrap();
    }

    #[test]
    fn link_conflicts_rejected() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        let lo = LargeObject::create(&fs, &mut s, &CreateMode::default()).unwrap();
        lo.link(&mut s, "/a").unwrap();
        let lo2 = LargeObject::create(&fs, &mut s, &CreateMode::default()).unwrap();
        assert!(matches!(lo2.link(&mut s, "/a"), Err(InvError::Exists(_))));
        s.commit().unwrap();
    }

    #[test]
    fn open_unknown_oid_fails() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        assert!(LargeObject::open(&fs, &mut s, Oid(999_999)).is_err());
        s.abort().unwrap();
    }
}
