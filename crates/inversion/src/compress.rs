//! Chunk-level compression with random access.
//!
//! "Inversion supports compression and uncompression of 'chunks' of user
//! files. ... Random access on the uncompressed version is straightforward.
//! Inversion determines which compressed chunk contains the bytes of
//! interest, uncompresses it, and returns the user only the desired data."
//!
//! Because chunk boundaries are fixed in *uncompressed* byte space
//! ([`crate::CHUNK_SIZE`]), locating the chunk for a byte offset needs no
//! extra index; each stored record carries the uncompressed length so short
//! tails and sparse chunks round-trip exactly.
//!
//! The codec is a self-contained LZ77 variant (64 KB window is overkill for
//! 8 KB chunks; we use 4 KB) chosen for honesty over ratio: it actually
//! models the CPU/storage trade the paper investigates, with no external
//! dependencies.

/// Compresses `data`. Output format: `[ulen u32 le][stream]` where stream
/// is a sequence of ops: `0x00 <len u8> <literal bytes>` or
/// `0x01 <dist u16 le> <len u8>` (match of `len+4` bytes at `dist` back).
pub fn compress(data: &[u8]) -> Vec<u8> {
    const MIN_MATCH: usize = 4;
    const MAX_MATCH: usize = 255 + MIN_MATCH;
    const WINDOW: usize = 4096;

    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    // Hash chains over 4-byte prefixes.
    let mut head = vec![usize::MAX; 1 << 13];
    let hash = |b: &[u8]| -> usize {
        let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        (v.wrapping_mul(2654435761) >> 19) as usize & 0x1FFF
    };

    let mut lit_start = 0usize;
    let mut i = 0usize;
    let flush_lits = |out: &mut Vec<u8>, lits: &[u8]| {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
    };

    while i + MIN_MATCH <= data.len() {
        let h = hash(&data[i..]);
        let cand = head[h];
        head[h] = i;
        let mut best = 0usize;
        if cand != usize::MAX && i - cand <= WINDOW {
            let max = (data.len() - i).min(MAX_MATCH);
            let mut l = 0;
            while l < max && data[cand + l] == data[i + l] {
                l += 1;
            }
            best = l;
        }
        if best >= MIN_MATCH {
            flush_lits(&mut out, &data[lit_start..i]);
            let dist = (i - cand) as u16;
            out.push(0x01);
            out.extend_from_slice(&dist.to_le_bytes());
            out.push((best - MIN_MATCH) as u8);
            i += best;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_lits(&mut out, &data[lit_start..]);
    out
}

/// Decompresses the output of [`compress`]. Returns `None` on malformed
/// input (treat as corruption, not a panic).
pub fn decompress(stream: &[u8]) -> Option<Vec<u8>> {
    if stream.len() < 4 {
        return None;
    }
    let ulen = u32::from_le_bytes(stream[..4].try_into().ok()?) as usize;
    let mut out = Vec::with_capacity(ulen);
    let mut i = 4usize;
    while i < stream.len() {
        match stream[i] {
            0x00 => {
                let len = *stream.get(i + 1)? as usize;
                let lits = stream.get(i + 2..i + 2 + len)?;
                out.extend_from_slice(lits);
                i += 2 + len;
            }
            0x01 => {
                let dist = u16::from_le_bytes([*stream.get(i + 1)?, *stream.get(i + 2)?]) as usize;
                let len = *stream.get(i + 3)? as usize + 4;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 4;
            }
            _ => return None,
        }
        if out.len() > ulen {
            return None;
        }
    }
    if out.len() != ulen {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn highly_redundant_data_shrinks() {
        let data = vec![7u8; 8128];
        let c = compress(&data);
        assert!(c.len() < data.len() / 10, "got {} bytes", c.len());
        roundtrip(&data);
    }

    #[test]
    fn text_like_data() {
        let text = "the quick brown fox jumps over the lazy dog. "
            .repeat(180)
            .into_bytes();
        let c = compress(&text);
        assert!(c.len() < text.len() / 2);
        roundtrip(&text);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes: no matches, modest expansion allowed.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..8128)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 16 + 16);
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_copy() {
        // "aaaaaa..." exercises dist < len copies.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
        let mut data2 = b"ab".repeat(500);
        data2.push(b'!');
        roundtrip(&data2);
    }

    #[test]
    fn satellite_like_band_data() {
        // Smooth gradients as in synthetic images.
        let data: Vec<u8> = (0..8128u32).map(|i| ((i / 13) % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_rejected_without_panic() {
        assert!(decompress(&[]).is_none());
        assert!(decompress(&[1, 2, 3]).is_none());
        let good = compress(b"hello world hello world hello world");
        for cut in 0..good.len() {
            let _ = decompress(&good[..cut]);
        }
        // Flip bytes.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            let _ = decompress(&bad); // Must not panic.
        }
    }
}
