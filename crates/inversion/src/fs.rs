//! The file system proper: schemas, formatting, attachment, per-file state.
//!
//! Two ordinary database tables carry all file system metadata, exactly as
//! in the paper:
//!
//! ```text
//! naming(filename = char[], parentid = object_id, file = object_id)
//! fileatt(file = object_id, owner, type, size, ctime, mtime, atime, ...)
//! ```
//!
//! File *data* live in one table per file, named `inv<oid>`, with schema
//! `(chunkno int4, data bytes)` and a B-tree index on `chunkno`. Because
//! file migration can move a file's data to a new relation on another
//! device, `fileatt` additionally records the current data relation and
//! chunk index oids (the paper computes `inv<oid>` from the file id; we keep
//! that name at creation and use the catalog for indirection afterwards).

use std::fmt;
use std::sync::Arc;

use minidb::{Datum, Db, DbError, DeviceId, Oid, RelId, Schema, Session, Snapshot, Tid, TypeId};
use simdev::SimInstant;

use crate::stats::{register_inv_stat, InvStats};

/// Errors surfaced by the file system layer.
#[derive(Debug, Clone, PartialEq)]
pub enum InvError {
    /// The underlying database failed.
    Db(DbError),
    /// A path (or path component) does not exist.
    NoSuchPath(String),
    /// A path component that must be a directory is not.
    NotADirectory(String),
    /// The operation needs a regular file but found a directory.
    IsADirectory(String),
    /// The path already exists.
    Exists(String),
    /// A directory being removed still has entries.
    NotEmpty(String),
    /// An unknown file descriptor.
    BadFd(i32),
    /// A write was attempted on a read-only (historical) descriptor.
    ReadOnlyFd(i32),
    /// Malformed path syntax.
    BadPath(String),
    /// Anything else.
    Invalid(String),
}

impl fmt::Display for InvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvError::Db(e) => write!(f, "database error: {e}"),
            InvError::NoSuchPath(p) => write!(f, "no such file or directory: {p}"),
            InvError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            InvError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            InvError::Exists(p) => write!(f, "file exists: {p}"),
            InvError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            InvError::BadFd(fd) => write!(f, "bad file descriptor: {fd}"),
            InvError::ReadOnlyFd(fd) => write!(f, "file descriptor {fd} is read-only"),
            InvError::BadPath(p) => write!(f, "bad path: {p}"),
            InvError::Invalid(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for InvError {}

impl From<DbError> for InvError {
    fn from(e: DbError) -> Self {
        InvError::Db(e)
    }
}

/// Convenience alias for file system results.
pub type InvResult<T> = Result<T, InvError>;

/// Regular file or directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A byte-stream file backed by an `inv<oid>` table.
    Regular,
    /// A directory (purely a namespace object).
    Directory,
}

/// Everything `fileatt` knows about one file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileStat {
    /// The file's object identifier.
    pub oid: Oid,
    /// Regular file or directory.
    pub kind: FileKind,
    /// Owner login.
    pub owner: String,
    /// Registered file type, if typed.
    pub ftype: Option<TypeId>,
    /// Size in bytes.
    pub size: u64,
    /// Creation time.
    pub ctime: SimInstant,
    /// Last modification time.
    pub mtime: SimInstant,
    /// Last access time.
    pub atime: SimInstant,
    /// Whether chunks are stored compressed.
    pub compressed: bool,
    /// Whether chunks carry self-identifying tags (corruption detection).
    pub self_identifying: bool,
    /// The relation holding the file's chunks (regular files).
    pub datarel: RelId,
    /// The B-tree index on chunk number.
    pub chunkidx: RelId,
    /// The device the data relation lives on.
    pub device: DeviceId,
}

const FLAG_COMPRESSED: i32 = 1;
const FLAG_DIRECTORY: i32 = 2;
const FLAG_SELF_ID: i32 = 4;

/// Options for [`crate::InvClient::p_creat`].
///
/// "The mode flag to p_open and p_creat encodes the device on which the
/// file should reside at creation time."
#[derive(Debug, Clone)]
pub struct CreateMode {
    /// Device for the file's data relation.
    pub device: DeviceId,
    /// Owner login recorded in `fileatt`.
    pub owner: String,
    /// File type (`define type` first; see [`crate::types`]).
    pub ftype: Option<TypeId>,
    /// Store chunks compressed (see [`crate::compress`]).
    pub compressed: bool,
    /// Tag every stored chunk with its file identifier, chunk number, and a
    /// checksum, so media corruption is detected at read time. "Inversion
    /// could detect these cases by making all blocks self-identifying ...
    /// space has been reserved in the tables storing file data for this
    /// purpose."
    pub self_identifying: bool,
    /// Ask the vacuum cleaner to discard, not archive, old versions.
    pub no_history: bool,
}

impl Default for CreateMode {
    fn default() -> Self {
        CreateMode {
            device: DeviceId::DEFAULT,
            owner: "root".into(),
            ftype: None,
            compressed: false,
            self_identifying: false,
            no_history: false,
        }
    }
}

impl CreateMode {
    /// Places the file on `device`.
    pub fn on_device(mut self, device: DeviceId) -> Self {
        self.device = device;
        self
    }

    /// Sets the owner.
    pub fn owned_by(mut self, owner: impl Into<String>) -> Self {
        self.owner = owner.into();
        self
    }

    /// Sets the file type.
    pub fn with_type(mut self, t: TypeId) -> Self {
        self.ftype = Some(t);
        self
    }

    /// Stores chunks compressed.
    pub fn compressed(mut self) -> Self {
        self.compressed = true;
        self
    }

    /// Tags chunks with self-identifying headers for corruption detection.
    pub fn self_identifying(mut self) -> Self {
        self.self_identifying = true;
        self
    }

    /// Skips history retention for this file's data.
    pub fn without_history(mut self) -> Self {
        self.no_history = true;
        self
    }
}

/// One source byte range for [`crate::InvClient::p_slice`]: `len` bytes of
/// `path` starting at `offset`.
///
/// Slicing composes a new file from ranges of existing files. Chunk-aligned
/// ranges are *shared* — the stored chunk rows are copied between chunk
/// tables without decoding the payload — while unaligned remainders fall
/// back to byte copies (see DESIGN.md §8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceRange {
    /// Path of the source file.
    pub path: String,
    /// Starting byte offset in the source.
    pub offset: u64,
    /// Number of bytes to take.
    pub len: u64,
}

impl SliceRange {
    /// Convenience constructor.
    pub fn new(path: impl Into<String>, offset: u64, len: u64) -> Self {
        SliceRange {
            path: path.into(),
            offset,
            len,
        }
    }
}

/// Relation ids the file system needs constantly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FsRels {
    pub naming: RelId,
    pub fileatt: RelId,
    /// Index on naming(parentid, filename).
    pub naming_dir_idx: RelId,
    /// Index on naming(file).
    pub naming_file_idx: RelId,
    /// Index on fileatt(file).
    pub fileatt_file_idx: RelId,
}

/// A mounted Inversion file system. Cheap to clone; clones share the
/// database. One `InversionFs` corresponds to one database — "a single
/// database corresponds to a mount point in conventional file system
/// architectures".
#[derive(Clone)]
pub struct InversionFs {
    db: Db,
    pub(crate) rels: FsRels,
    pub(crate) root: Oid,
    /// Operation counters shared by every client of this mount; queryable
    /// as the `inv_stat` virtual relation.
    pub(crate) stats: Arc<InvStats>,
}

// Column positions in `naming`.
pub(crate) const N_FILENAME: usize = 0;
pub(crate) const N_PARENTID: usize = 1;
pub(crate) const N_FILE: usize = 2;

// Column positions in `fileatt`.
pub(crate) const A_FILE: usize = 0;
pub(crate) const A_OWNER: usize = 1;
pub(crate) const A_TYPE: usize = 2;
pub(crate) const A_SIZE: usize = 3;
pub(crate) const A_CTIME: usize = 4;
pub(crate) const A_MTIME: usize = 5;
pub(crate) const A_ATIME: usize = 6;
pub(crate) const A_FLAGS: usize = 7;
pub(crate) const A_DATAREL: usize = 8;
pub(crate) const A_CHUNKIDX: usize = 9;
pub(crate) const A_DEVICE: usize = 10;

impl InversionFs {
    /// Formats a fresh Inversion file system in `db`: creates the metadata
    /// tables, their indices, and the root directory `/`.
    ///
    /// "The root directory, named '/', appears in every POSTGRES database as
    /// shipped from Berkeley."
    pub fn format(db: Db) -> InvResult<InversionFs> {
        let naming = db.create_table(
            "naming",
            Schema::new([
                ("filename", TypeId::TEXT),
                ("parentid", TypeId::OID),
                ("file", TypeId::OID),
            ]),
        )?;
        let fileatt = db.create_table(
            "fileatt",
            Schema::new([
                ("file", TypeId::OID),
                ("owner", TypeId::TEXT),
                ("type", TypeId::OID),
                ("size", TypeId::INT8),
                ("ctime", TypeId::TIME),
                ("mtime", TypeId::TIME),
                ("atime", TypeId::TIME),
                ("flags", TypeId::INT4),
                ("datarel", TypeId::OID),
                ("chunkidx", TypeId::OID),
                ("device", TypeId::INT4),
            ]),
        )?;
        // "Various Btree indices on the naming table speed up these
        // operations."
        let naming_dir_idx =
            db.create_index("naming_dir_idx", naming, &["parentid", "filename"])?;
        let naming_file_idx = db.create_index("naming_file_idx", naming, &["file"])?;
        let fileatt_file_idx = db.create_index("fileatt_file_idx", fileatt, &["file"])?;

        let rels = FsRels {
            naming,
            fileatt,
            naming_dir_idx,
            naming_file_idx,
            fileatt_file_idx,
        };

        // Create the root directory.
        let root = db.alloc_oid()?;
        let now = db.now();
        let mut s = db.begin()?;
        s.insert(
            naming,
            vec![Datum::Text("/".into()), Datum::Oid(0), Datum::Oid(root.0)],
        )?;
        s.insert(fileatt, dir_fileatt_row(root, "root", now))?;
        s.commit()?;

        let stats = Arc::new(InvStats::new());
        register_inv_stat(&db, &stats);
        Ok(InversionFs {
            db,
            rels,
            root,
            stats,
        })
    }

    /// Attaches to an already-formatted file system (e.g. after recovery).
    pub fn attach(db: Db) -> InvResult<InversionFs> {
        let naming = db.relation_id("naming")?;
        let fileatt = db.relation_id("fileatt")?;
        let naming_dir_idx = db.relation_id("naming_dir_idx")?;
        let naming_file_idx = db.relation_id("naming_file_idx")?;
        let fileatt_file_idx = db.relation_id("fileatt_file_idx")?;
        let rels = FsRels {
            naming,
            fileatt,
            naming_dir_idx,
            naming_file_idx,
            fileatt_file_idx,
        };
        // Find the root: naming row with parentid 0.
        let mut s = db.begin()?;
        let hits = s.index_scan_eq(naming_dir_idx, &[Datum::Oid(0), Datum::Text("/".into())])?;
        s.commit()?;
        let (_, row) = hits
            .first()
            .ok_or_else(|| InvError::Invalid("no root directory found".into()))?;
        let root = Oid(row[N_FILE].as_oid()?);
        let stats = Arc::new(InvStats::new());
        register_inv_stat(&db, &stats);
        Ok(InversionFs {
            db,
            rels,
            root,
            stats,
        })
    }

    /// A self-contained in-memory file system for tests and examples.
    pub fn open_in_memory() -> InvResult<InversionFs> {
        let db = Db::open_in_memory()?;
        InversionFs::format(db)
    }

    /// The underlying database.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The root directory's oid.
    pub fn root(&self) -> Oid {
        self.root
    }

    /// The file system's operation counters (also queryable as `inv_stat`).
    pub fn stats(&self) -> &InvStats {
        &self.stats
    }

    /// Opens a new client (one application program's connection).
    pub fn client(&self) -> crate::api::InvClient {
        crate::api::InvClient::new(self.clone())
    }

    /// Creates the data relation and chunk index for a new regular file.
    pub(crate) fn create_data_rel(
        &self,
        oid: Oid,
        device: DeviceId,
        no_history: bool,
    ) -> InvResult<(RelId, RelId)> {
        let table_name = format!("inv{}", oid.0);
        let datarel = self.db.create_table_on(
            &table_name,
            Schema::new([("chunkno", TypeId::INT4), ("data", TypeId::BYTES)]),
            device,
            no_history,
        )?;
        let chunkidx = self
            .db
            .create_index(&format!("inv{}_idx", oid.0), datarel, &["chunkno"])?;
        Ok((datarel, chunkidx))
    }

    /// Decodes a `fileatt` row into a [`FileStat`].
    pub(crate) fn stat_from_row(row: &[Datum]) -> InvResult<FileStat> {
        let flags = row[A_FLAGS].as_int()? as i32;
        let ftype_raw = row[A_TYPE].as_oid()?;
        Ok(FileStat {
            oid: Oid(row[A_FILE].as_oid()?),
            kind: if flags & FLAG_DIRECTORY != 0 {
                FileKind::Directory
            } else {
                FileKind::Regular
            },
            owner: row[A_OWNER].as_text()?.to_string(),
            ftype: if ftype_raw == 0 {
                None
            } else {
                Some(TypeId(ftype_raw))
            },
            size: row[A_SIZE].as_int()?.max(0) as u64,
            ctime: SimInstant::from_nanos(row[A_CTIME].as_int()? as u64),
            mtime: SimInstant::from_nanos(row[A_MTIME].as_int()? as u64),
            atime: SimInstant::from_nanos(row[A_ATIME].as_int()? as u64),
            compressed: flags & FLAG_COMPRESSED != 0,
            self_identifying: flags & FLAG_SELF_ID != 0,
            datarel: Oid(row[A_DATAREL].as_oid()?),
            chunkidx: Oid(row[A_CHUNKIDX].as_oid()?),
            device: DeviceId(row[A_DEVICE].as_int()? as u8),
        })
    }

    /// Fetches the `fileatt` row for `oid` under `snap`, with its tuple id.
    pub(crate) fn fileatt_row(
        &self,
        session: &mut Session,
        oid: Oid,
        snap: Option<&Snapshot>,
    ) -> InvResult<Option<(Tid, Vec<Datum>)>> {
        let key = [Datum::Oid(oid.0)];
        let hits = match snap {
            Some(s) => session.index_scan_eq_with(self.rels.fileatt_file_idx, &key, s)?,
            None => session.index_scan_eq(self.rels.fileatt_file_idx, &key)?,
        };
        Ok(hits.into_iter().next())
    }

    /// Stats a file by oid.
    pub(crate) fn stat_oid(
        &self,
        session: &mut Session,
        oid: Oid,
        snap: Option<&Snapshot>,
    ) -> InvResult<FileStat> {
        let (_, row) = self
            .fileatt_row(session, oid, snap)?
            .ok_or_else(|| InvError::NoSuchPath(format!("oid {oid}")))?;
        Self::stat_from_row(&row)
    }
}

/// Builds a `fileatt` row for a fresh regular file.
pub(crate) fn file_fileatt_row(
    oid: Oid,
    mode: &CreateMode,
    now: SimInstant,
    datarel: RelId,
    chunkidx: RelId,
) -> Vec<Datum> {
    let mut flags = 0;
    if mode.compressed {
        flags |= FLAG_COMPRESSED;
    }
    if mode.self_identifying {
        flags |= FLAG_SELF_ID;
    }
    vec![
        Datum::Oid(oid.0),
        Datum::Text(mode.owner.clone()),
        Datum::Oid(mode.ftype.map(|t| t.0).unwrap_or(0)),
        Datum::Int8(0),
        Datum::Time(now.as_nanos()),
        Datum::Time(now.as_nanos()),
        Datum::Time(now.as_nanos()),
        Datum::Int4(flags),
        Datum::Oid(datarel.0),
        Datum::Oid(chunkidx.0),
        Datum::Int4(mode.device.0 as i32),
    ]
}

/// Rebuilds a `fileatt` row from a [`FileStat`] (used by undelete).
pub(crate) fn stat_to_row(stat: &FileStat) -> Vec<Datum> {
    let mut flags = 0;
    if stat.compressed {
        flags |= FLAG_COMPRESSED;
    }
    if stat.self_identifying {
        flags |= FLAG_SELF_ID;
    }
    if stat.kind == FileKind::Directory {
        flags |= FLAG_DIRECTORY;
    }
    vec![
        Datum::Oid(stat.oid.0),
        Datum::Text(stat.owner.clone()),
        Datum::Oid(stat.ftype.map(|t| t.0).unwrap_or(0)),
        Datum::Int8(stat.size as i64),
        Datum::Time(stat.ctime.as_nanos()),
        Datum::Time(stat.mtime.as_nanos()),
        Datum::Time(stat.atime.as_nanos()),
        Datum::Int4(flags),
        Datum::Oid(stat.datarel.0),
        Datum::Oid(stat.chunkidx.0),
        Datum::Int4(stat.device.0 as i32),
    ]
}

/// Builds a `fileatt` row for a directory.
pub(crate) fn dir_fileatt_row(oid: Oid, owner: &str, now: SimInstant) -> Vec<Datum> {
    vec![
        Datum::Oid(oid.0),
        Datum::Text(owner.into()),
        Datum::Oid(0),
        Datum::Int8(0),
        Datum::Time(now.as_nanos()),
        Datum::Time(now.as_nanos()),
        Datum::Time(now.as_nanos()),
        Datum::Int4(FLAG_DIRECTORY),
        Datum::Oid(0),
        Datum::Oid(0),
        Datum::Int4(0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_creates_root_and_tables() {
        let fs = InversionFs::open_in_memory().unwrap();
        assert!(fs.root().is_valid());
        let db = fs.db();
        assert!(db.relation_id("naming").is_ok());
        assert!(db.relation_id("fileatt").is_ok());
        assert!(db.relation_id("naming_dir_idx").is_ok());
        let mut s = db.begin().unwrap();
        let stat = fs.stat_oid(&mut s, fs.root(), None).unwrap();
        assert_eq!(stat.kind, FileKind::Directory);
        assert_eq!(stat.owner, "root");
        s.commit().unwrap();
    }

    #[test]
    fn attach_finds_existing_root() {
        let fs = InversionFs::open_in_memory().unwrap();
        let db = fs.db().clone();
        let fs2 = InversionFs::attach(db).unwrap();
        assert_eq!(fs2.root(), fs.root());
    }

    #[test]
    fn create_mode_builder() {
        let m = CreateMode::default()
            .on_device(DeviceId(3))
            .owned_by("mao")
            .compressed()
            .without_history();
        assert_eq!(m.device, DeviceId(3));
        assert_eq!(m.owner, "mao");
        assert!(m.compressed);
        assert!(m.no_history);
        assert!(m.ftype.is_none());
    }

    #[test]
    fn stat_roundtrips_through_row() {
        let mode = CreateMode::default().owned_by("mao").with_type(TypeId(200));
        let now = SimInstant::from_nanos(42);
        let row = file_fileatt_row(Oid(7), &mode, now, Oid(100), Oid(101));
        let stat = InversionFs::stat_from_row(&row).unwrap();
        assert_eq!(stat.oid, Oid(7));
        assert_eq!(stat.kind, FileKind::Regular);
        assert_eq!(stat.owner, "mao");
        assert_eq!(stat.ftype, Some(TypeId(200)));
        assert_eq!(stat.size, 0);
        assert_eq!(stat.ctime, now);
        assert!(!stat.compressed);
        assert_eq!(stat.datarel, Oid(100));
        assert_eq!(stat.chunkidx, Oid(101));
    }

    #[test]
    fn error_display() {
        assert!(InvError::NoSuchPath("/x".into()).to_string().contains("/x"));
        assert!(InvError::BadFd(7).to_string().contains('7'));
        let e: InvError = DbError::Deadlock.into();
        assert!(e.to_string().contains("deadlock"));
    }
}
