//! Rule-driven file migration across the storage hierarchy.
//!
//! "Files that meet some selection criteria should be moved from fast,
//! expensive storage like magnetic disk to slower, cheaper storage, such as
//! magnetic tape. We are exploring strategies for using the POSTGRES
//! predicate rules system to allow users and administrators to define
//! migration policies."
//!
//! [`migrate_file`] moves a file's *current* data to a new relation on the
//! target device and repoints `fileatt`. Because `fileatt` itself is a
//! no-overwrite relation, historical snapshots still see the old `fileatt`
//! version — which references the old data relation — so time travel across
//! a migration keeps working without copying history. The old relation is
//! retained (the vacuum cleaner may archive it).
//!
//! [`register_migration`] exposes `migrate(file, device)` to the query
//! language, making the paper's vision concrete:
//!
//! ```text
//! define rule cold on periodic to fileatt
//!   where atime < now() - 1000000000 do migrate(this.file, 1)
//! ```

use minidb::catalog::RuleEvent;
use minidb::rules::{run_rules, RuleRun};
use minidb::{Datum, DbError, DeviceId, Oid, Schema, Session, TypeId};

use crate::fs::{FileKind, InvError, InvResult, InversionFs, A_CHUNKIDX, A_DATAREL, A_DEVICE};

/// Moves the current contents of file `oid` to `target`, transactionally.
pub fn migrate_file(
    fs: &InversionFs,
    s: &mut Session,
    oid: Oid,
    target: DeviceId,
) -> InvResult<()> {
    let stat = fs.stat_oid(s, oid, None)?;
    if stat.kind != FileKind::Regular {
        return Err(InvError::IsADirectory(format!("oid {oid}")));
    }
    if stat.device == target {
        return Ok(());
    }
    // A fresh relation on the target device; the name embeds the current
    // time so repeated migrations never collide.
    let suffix = fs.db().now().as_nanos();
    let new_rel = fs.db().create_table_on(
        &format!("inv{}_m{}", oid.0, suffix),
        Schema::new([("chunkno", TypeId::INT4), ("data", TypeId::BYTES)]),
        target,
        false,
    )?;
    let new_idx = fs.db().create_index(
        &format!("inv{}_m{}_idx", oid.0, suffix),
        new_rel,
        &["chunkno"],
    )?;

    // Copy the *current* chunks.
    let rows = s.seq_scan(stat.datarel)?;
    for (_, row) in rows {
        s.insert(new_rel, row)?;
    }

    // Repoint fileatt (no-overwrite: historical stats keep the old rel).
    let Some((tid, mut row)) = fs.fileatt_row(s, oid, None)? else {
        return Err(InvError::NoSuchPath(format!("oid {oid}")));
    };
    row[A_DATAREL] = Datum::Oid(new_rel.0);
    row[A_CHUNKIDX] = Datum::Oid(new_idx.0);
    row[A_DEVICE] = Datum::Int4(target.0 as i32);
    s.update(fs.rels.fileatt, tid, row)?;
    Ok(())
}

/// Registers the `migrate(file, device)` function with the database.
pub fn register_migration(fs: &InversionFs) -> InvResult<()> {
    let fs2 = fs.clone();
    fs.db()
        .functions()
        .register("inversion.migrate", move |s, a| {
            let oid = Oid(a[0].as_oid()?);
            let dev = DeviceId(a[1].as_int()? as u8);
            migrate_file(&fs2, s, oid, dev)
                .map(|_| Datum::Bool(true))
                .map_err(|e| DbError::Eval(e.to_string()))
        });
    match fs
        .db()
        .define_function("migrate", 2, TypeId::BOOL, "inversion.migrate", None)
    {
        Ok(()) | Err(DbError::AlreadyExists(_)) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Runs every periodic migration rule registered against `fileatt` — the
/// migration daemon's sweep.
pub fn run_migration_rules(fs: &InversionFs, s: &mut Session) -> InvResult<RuleRun> {
    run_rules(s, fs.rels.fileatt, RuleEvent::Periodic).map_err(InvError::Db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::CreateMode;
    use minidb::{
        shared_device, Db, DbConfig, GenericManager, JukeboxConfig, JukeboxManager, Smgr,
    };
    use simdev::{
        DiskProfile, JukeboxProfile, MagneticDisk, OpticalJukebox, SimClock, SimDuration,
    };

    /// A database with a magnetic disk (dev 0) and a WORM jukebox (dev 1).
    fn two_device_fs() -> InversionFs {
        let clock = SimClock::new();
        let disk = shared_device(MagneticDisk::new(
            "disk",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 15),
        ));
        let log = shared_device(MagneticDisk::new(
            "log",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let cat = shared_device(MagneticDisk::new(
            "cat",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let jb = shared_device(OpticalJukebox::new(
            "sony",
            clock.clone(),
            JukeboxProfile::tiny_for_tests(),
        ));
        let staging = shared_device(MagneticDisk::new(
            "staging",
            clock.clone(),
            DiskProfile::tiny_for_tests(1 << 12),
        ));
        let mut smgr = Smgr::new();
        smgr.register(DeviceId(0), Box::new(GenericManager::format(disk).unwrap()))
            .unwrap();
        smgr.register(
            DeviceId(1),
            Box::new(
                JukeboxManager::format(
                    jb,
                    staging,
                    JukeboxConfig {
                        extent_pages: 4,
                        cache_blocks: 16,
                    },
                )
                .unwrap(),
            ),
        )
        .unwrap();
        let db = Db::open(clock, smgr, log, cat, DbConfig::default()).unwrap();
        InversionFs::format(db).unwrap()
    }

    #[test]
    fn migrate_moves_data_and_preserves_contents() {
        let fs = two_device_fs();
        let mut c = fs.client();
        let data: Vec<u8> = (0..20_000).map(|i| (i % 201) as u8).collect();
        c.write_all(
            "/dataset",
            CreateMode::default().on_device(DeviceId(0)),
            &data,
        )
        .unwrap();
        assert_eq!(c.p_stat("/dataset", None).unwrap().device, DeviceId(0));

        let mut s = fs.db().begin().unwrap();
        let oid = fs.resolve(&mut s, "/dataset", None).unwrap();
        migrate_file(&fs, &mut s, oid, DeviceId(1)).unwrap();
        s.commit().unwrap();

        let stat = c.p_stat("/dataset", None).unwrap();
        assert_eq!(stat.device, DeviceId(1));
        assert_eq!(c.read_to_vec("/dataset", None).unwrap(), data);
        // Idempotent.
        let mut s = fs.db().begin().unwrap();
        migrate_file(&fs, &mut s, oid, DeviceId(1)).unwrap();
        s.commit().unwrap();
    }

    #[test]
    fn time_travel_across_migration() {
        let fs = two_device_fs();
        let mut c = fs.client();
        c.write_all("/f", CreateMode::default(), b"before migration")
            .unwrap();
        let t_before = fs.db().now();

        let mut s = fs.db().begin().unwrap();
        let oid = fs.resolve(&mut s, "/f", None).unwrap();
        migrate_file(&fs, &mut s, oid, DeviceId(1)).unwrap();
        s.commit().unwrap();

        // Mutate after migration.
        c.p_begin().unwrap();
        let fd = c.p_open("/f", crate::OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"AFTER").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();

        assert_eq!(&c.read_to_vec("/f", None).unwrap()[..5], b"AFTER");
        // The pre-migration state still reads through the *old* relation.
        assert_eq!(
            c.read_to_vec("/f", Some(t_before)).unwrap(),
            b"before migration"
        );
    }

    #[test]
    fn migration_aborts_atomically() {
        let fs = two_device_fs();
        let mut c = fs.client();
        c.write_all("/f", CreateMode::default(), b"stay put")
            .unwrap();
        let mut s = fs.db().begin().unwrap();
        let oid = fs.resolve(&mut s, "/f", None).unwrap();
        migrate_file(&fs, &mut s, oid, DeviceId(1)).unwrap();
        s.abort().unwrap();
        let stat = c.p_stat("/f", None).unwrap();
        assert_eq!(
            stat.device,
            DeviceId(0),
            "aborted migration must not move the file"
        );
        assert_eq!(c.read_to_vec("/f", None).unwrap(), b"stay put");
    }

    #[test]
    fn periodic_rule_migrates_cold_files() {
        let fs = two_device_fs();
        register_migration(&fs).unwrap();
        let mut c = fs.client();
        c.write_all("/cold", CreateMode::default(), &vec![1u8; 10_000])
            .unwrap();
        fs.db().clock().advance(SimDuration::from_secs(100));
        c.write_all("/hot", CreateMode::default(), &vec![2u8; 10_000])
            .unwrap();

        // Migrate files not accessed in the last 50 simulated seconds.
        let mut s = fs.db().begin().unwrap();
        let cutoff = fs.db().now().as_nanos() - SimDuration::from_secs(50).as_nanos();
        s.query(&format!(
            "define rule cold_to_jukebox on periodic to fileatt \
             where atime < {cutoff} and datarel != 0 do migrate(this.file, 1)"
        ))
        .unwrap();
        let run = run_migration_rules(&fs, &mut s).unwrap();
        s.commit().unwrap();
        assert_eq!(run.fired, vec![("cold_to_jukebox".to_string(), 1)]);

        assert_eq!(c.p_stat("/cold", None).unwrap().device, DeviceId(1));
        assert_eq!(c.p_stat("/hot", None).unwrap().device, DeviceId(0));
        assert_eq!(c.read_to_vec("/cold", None).unwrap(), vec![1u8; 10_000]);
    }
}
