//! Administrative maintenance: database-wide vacuuming and orphan
//! collection.
//!
//! Like POSTGRES, relation creation is not transactional: a `p_creat` whose
//! transaction aborts leaves invisible `naming`/`fileatt` rows (harmless)
//! and an orphaned `inv<oid>` data relation (leaked storage).
//! [`collect_orphans`] is the garbage collector for the latter, and
//! [`vacuum_all`] runs the vacuum cleaner over every heap in the database —
//! the periodic sweep the paper's vacuum-cleaner process performed.

use std::collections::HashSet;

use minidb::catalog::RelKind;
use minidb::vacuum::{vacuum, VacuumStats};
use minidb::{DeviceId, RelId, Snapshot};

use crate::fs::{InvResult, InversionFs, A_CHUNKIDX, A_DATAREL};

/// Vacuums every heap relation, archiving dead versions onto `archive_dev`.
/// Returns per-relation statistics. Requires a quiescent system.
pub fn vacuum_all(
    fs: &InversionFs,
    archive_dev: DeviceId,
) -> InvResult<Vec<(String, VacuumStats)>> {
    let heaps: Vec<(RelId, String)> = fs
        .db()
        .catalog()
        .relations()
        .filter(|r| r.kind == RelKind::Heap && !r.name.ends_with(",arch"))
        .map(|r| (r.id, r.name.clone()))
        .collect();
    let mut out = Vec::with_capacity(heaps.len());
    for (rel, name) in heaps {
        let stats = vacuum(fs.db(), rel, archive_dev)?;
        out.push((name, stats));
    }
    Ok(out)
}

/// Finds and drops `inv*` data relations (and their chunk indices) that no
/// version of any `fileatt` row references — the debris of aborted creates.
///
/// Relations referenced by *historical* `fileatt` versions (e.g. the
/// pre-migration data relation of a migrated file) are kept: time travel
/// still needs them.
pub fn collect_orphans(fs: &InversionFs) -> InvResult<Vec<String>> {
    // Everything any fileatt version has ever referenced, dead or alive.
    let mut referenced: HashSet<u32> = HashSet::new();
    {
        let mut s = fs.db().begin()?;
        // Only versions whose inserter committed count as references; the
        // whole point is to discard what aborted transactions left behind.
        let rows = s.scan_committed_versions(fs.rels.fileatt)?;
        for row in rows {
            referenced.insert(row[A_DATAREL].as_oid()?);
            referenced.insert(row[A_CHUNKIDX].as_oid()?);
        }
        // Archived fileatt versions count too.
        let arch = fs.db().catalog().relation(fs.rels.fileatt)?.archive;
        if let Some(arch) = arch {
            let arows = s.scan_with_snapshot(arch, &Snapshot::Dirty)?;
            for (_, row) in arows {
                let orig = minidb::decode_row(row[2].as_bytes()?)?;
                referenced.insert(orig[A_DATAREL].as_oid()?);
                referenced.insert(orig[A_CHUNKIDX].as_oid()?);
            }
        }
        s.commit()?;
    }

    // Candidate orphans: inv* heaps (their indices go with them).
    let victims: Vec<String> = fs
        .db()
        .catalog()
        .relations()
        .filter(|r| {
            r.kind == RelKind::Heap
                && r.name.starts_with("inv")
                && !r.name.ends_with(",arch")
                && !referenced.contains(&r.id.0)
        })
        .map(|r| r.name.clone())
        .collect();
    for name in &victims {
        fs.db().drop_relation(name)?;
    }
    Ok(victims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::CreateMode;
    use crate::migrate::migrate_file;
    use crate::OpenMode;

    #[test]
    fn aborted_create_leaves_orphan_which_is_collected() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.p_begin().unwrap();
        c.p_creat("/doomed", CreateMode::default()).unwrap();
        c.p_abort().unwrap();
        c.write_all("/kept", CreateMode::default(), b"stay")
            .unwrap();

        let victims = collect_orphans(&fs).unwrap();
        assert_eq!(victims.len(), 1, "exactly the aborted file's relation");
        assert!(victims[0].starts_with("inv"));
        // The live file is untouched.
        assert_eq!(c.read_to_vec("/kept", None).unwrap(), b"stay");
        // Idempotent.
        assert!(collect_orphans(&fs).unwrap().is_empty());
    }

    #[test]
    fn unlinked_files_are_not_orphans() {
        // Unlink hides the fileatt row but the *version* still references
        // the relation; history (and undelete) must keep working.
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/deleted", CreateMode::default(), b"bytes")
            .unwrap();
        let t_alive = fs.db().now();
        c.p_unlink("/deleted").unwrap();
        assert!(collect_orphans(&fs).unwrap().is_empty());
        c.p_undelete("/deleted", t_alive).unwrap();
        assert_eq!(c.read_to_vec("/deleted", None).unwrap(), b"bytes");
    }

    #[test]
    fn migrated_files_keep_their_old_relation() {
        // Two devices so migration has somewhere to go.
        let clock = simdev::SimClock::new();
        let mk = |name: &str, blocks: u64| {
            minidb::shared_device(simdev::MagneticDisk::new(
                name,
                clock.clone(),
                simdev::DiskProfile::tiny_for_tests(blocks),
            ))
        };
        let mut smgr = minidb::Smgr::new();
        smgr.register(
            DeviceId(0),
            Box::new(minidb::GenericManager::format(mk("d0", 1 << 14)).unwrap()),
        )
        .unwrap();
        smgr.register(
            DeviceId(1),
            Box::new(minidb::GenericManager::format(mk("d1", 1 << 14)).unwrap()),
        )
        .unwrap();
        let db = minidb::Db::open(
            clock.clone(),
            smgr,
            mk("log", 1 << 10),
            mk("cat", 1 << 10),
            minidb::DbConfig::default(),
        )
        .unwrap();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.write_all("/data", CreateMode::default(), b"payload")
            .unwrap();
        let t_before = fs.db().now();
        let mut s = fs.db().begin().unwrap();
        let oid = fs.resolve(&mut s, "/data", None).unwrap();
        migrate_file(&fs, &mut s, oid, DeviceId(1)).unwrap();
        s.commit().unwrap();

        assert!(
            collect_orphans(&fs).unwrap().is_empty(),
            "old relation is history, not garbage"
        );
        assert_eq!(c.read_to_vec("/data", Some(t_before)).unwrap(), b"payload");
    }

    #[test]
    fn vacuum_all_sweeps_every_heap() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut c = fs.client();
        c.write_all("/f", CreateMode::default(), b"v1").unwrap();
        c.p_begin().unwrap();
        let fd = c.p_open("/f", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"v2").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();

        let report = vacuum_all(&fs, DeviceId::DEFAULT).unwrap();
        // naming, fileatt, and the file's data relation were all swept.
        assert!(report.iter().any(|(n, _)| n == "naming"));
        assert!(report.iter().any(|(n, _)| n == "fileatt"));
        let data = report.iter().find(|(n, _)| n.starts_with("inv")).unwrap();
        assert_eq!(data.1.archived, 1, "the dead v1 chunk was archived");
        // fileatt had dead versions too (size/mtime updates).
        let fileatt = report.iter().find(|(n, _)| n == "fileatt").unwrap();
        assert!(fileatt.1.archived >= 1);
        // The file still reads correctly.
        assert_eq!(c.read_to_vec("/f", None).unwrap(), b"v2");
    }
}
