//! Namespace management: pathname parsing, resolution, and directory ops.
//!
//! "Inversion stores the file system namespace in a table
//! `naming(filename, parentid, file)` ... A hierarchical namespace is
//! imposed by having individual files point at their parent's naming
//! entries." Resolution walks the `(parentid, filename)` B-tree index one
//! component at a time; pathname construction walks the `(file)` index
//! upward. All of it is ordinary transactional table access, so namespace
//! changes commit or abort atomically with everything else.

use minidb::{Datum, Oid, Session, Snapshot, Tid};

use crate::fs::{
    dir_fileatt_row, file_fileatt_row, CreateMode, FileKind, FileStat, InvError, InvResult,
    InversionFs, N_FILE, N_FILENAME, N_PARENTID,
};

/// Splits an absolute path into components, resolving `.` and `..`
/// lexically.
pub fn parse_path(path: &str) -> InvResult<Vec<String>> {
    if !path.starts_with('/') {
        return Err(InvError::BadPath(format!("{path}: paths must be absolute")));
    }
    let mut out: Vec<String> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            c => out.push(c.to_string()),
        }
    }
    Ok(out)
}

impl InversionFs {
    /// Looks up one directory entry, returning `(naming tid, child oid)`.
    pub(crate) fn lookup_child(
        &self,
        session: &mut Session,
        parent: Oid,
        name: &str,
        snap: Option<&Snapshot>,
    ) -> InvResult<Option<(Tid, Oid)>> {
        let key = [Datum::Oid(parent.0), Datum::Text(name.to_string())];
        let hits = match snap {
            Some(s) => session.index_scan_eq_with(self.rels.naming_dir_idx, &key, s)?,
            None => session.index_scan_eq(self.rels.naming_dir_idx, &key)?,
        };
        Ok(hits
            .into_iter()
            .next()
            .map(|(tid, row)| (tid, Oid(row[N_FILE].as_oid().unwrap_or(0)))))
    }

    /// Checks that `(parent, name)` is free *for this transaction to claim*.
    ///
    /// The session's begin-time snapshot cannot see a conflicting entry
    /// committed after this transaction began, so checking against it lets
    /// two racing sessions both conclude the name is free and both insert
    /// it (write skew on the uniqueness check). Taking `naming`'s exclusive
    /// lock first means any conflicting writer has either committed —
    /// visible to the fresh snapshot — or aborted.
    pub(crate) fn name_free_for_write(
        &self,
        session: &mut Session,
        parent: Oid,
        name: &str,
    ) -> InvResult<bool> {
        session.lock_exclusive(self.rels.naming)?;
        let snap = session.fresh_snapshot();
        Ok(self
            .lookup_child(session, parent, name, Some(&snap))?
            .is_none())
    }

    /// Resolves `path` to a file oid under `snap` (or the session's view).
    pub fn resolve(
        &self,
        session: &mut Session,
        path: &str,
        snap: Option<&Snapshot>,
    ) -> InvResult<Oid> {
        let comps = parse_path(path)?;
        let mut cur = self.root;
        for (i, comp) in comps.iter().enumerate() {
            let Some((_, child)) = self.lookup_child(session, cur, comp, snap)? else {
                return Err(InvError::NoSuchPath(path.to_string()));
            };
            // Intermediate components must be directories.
            if i + 1 < comps.len() {
                let stat = self.stat_oid(session, child, snap)?;
                if stat.kind != FileKind::Directory {
                    return Err(InvError::NotADirectory(comp.clone()));
                }
            }
            cur = child;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning
    /// `(parent oid, final component)`.
    pub(crate) fn resolve_parent(
        &self,
        session: &mut Session,
        path: &str,
        snap: Option<&Snapshot>,
    ) -> InvResult<(Oid, String)> {
        let mut comps = parse_path(path)?;
        let name = comps
            .pop()
            .ok_or_else(|| InvError::BadPath(format!("{path}: no final component")))?;
        let mut cur = self.root;
        for comp in &comps {
            let Some((_, child)) = self.lookup_child(session, cur, comp, snap)? else {
                return Err(InvError::NoSuchPath(path.to_string()));
            };
            let stat = self.stat_oid(session, child, snap)?;
            if stat.kind != FileKind::Directory {
                return Err(InvError::NotADirectory(comp.clone()));
            }
            cur = child;
        }
        Ok((cur, name))
    }

    /// Constructs the absolute pathname of `oid` ("routines ... to construct
    /// pathnames for particular file identifiers").
    pub fn path_of(
        &self,
        session: &mut Session,
        oid: Oid,
        snap: Option<&Snapshot>,
    ) -> InvResult<String> {
        if oid == self.root {
            return Ok("/".into());
        }
        let mut parts: Vec<String> = Vec::new();
        let mut cur = oid;
        for _depth in 0..4096 {
            let key = [Datum::Oid(cur.0)];
            let hits = match snap {
                Some(s) => session.index_scan_eq_with(self.rels.naming_file_idx, &key, s)?,
                None => session.index_scan_eq(self.rels.naming_file_idx, &key)?,
            };
            let (_, row) = hits
                .into_iter()
                .next()
                .ok_or_else(|| InvError::NoSuchPath(format!("oid {cur}")))?;
            let name = row[N_FILENAME].as_text()?.to_string();
            let parent = Oid(row[N_PARENTID].as_oid()?);
            if name == "/" {
                break;
            }
            parts.push(name);
            if parent == self.root {
                break;
            }
            cur = parent;
        }
        parts.reverse();
        Ok(format!("/{}", parts.join("/")))
    }

    /// Lists a directory: `(name, oid)` pairs in name order.
    pub fn readdir(
        &self,
        session: &mut Session,
        dir: Oid,
        snap: Option<&Snapshot>,
    ) -> InvResult<Vec<(String, Oid)>> {
        let stat = self.stat_oid(session, dir, snap)?;
        if stat.kind != FileKind::Directory {
            return Err(InvError::NotADirectory(format!("oid {dir}")));
        }
        // Prefix range scan over (parentid, *): the bare [oid] key sorts
        // before any [oid, name] and [oid, U+10FFFF...] after.
        let lo = [Datum::Oid(dir.0)];
        let hi = [Datum::Oid(dir.0), Datum::Text("\u{10FFFF}".into())];
        let mut out = Vec::new();
        match snap {
            Some(s) => {
                // Historical readdir: no index-range-with-snapshot helper, so
                // filter a full scan of naming under the snapshot.
                let rows = session.scan_with_snapshot(self.rels.naming, s)?;
                for (_, row) in rows {
                    if row[N_PARENTID].as_oid()? == dir.0 {
                        out.push((
                            row[N_FILENAME].as_text()?.to_string(),
                            Oid(row[N_FILE].as_oid()?),
                        ));
                    }
                }
                out.sort();
            }
            None => {
                session.index_scan_range(
                    self.rels.naming_dir_idx,
                    Some(&lo),
                    Some(&hi),
                    |_, row| {
                        out.push((
                            row[N_FILENAME].as_text().unwrap_or_default().to_string(),
                            Oid(row[N_FILE].as_oid().unwrap_or(0)),
                        ));
                        Ok(true)
                    },
                )?;
            }
        }
        Ok(out)
    }

    /// Creates a directory entry plus `fileatt` row for a new regular file;
    /// returns its stat. The caller supplies the session (transaction).
    pub(crate) fn create_file_at(
        &self,
        session: &mut Session,
        path: &str,
        mode: &CreateMode,
    ) -> InvResult<FileStat> {
        let (parent, name) = self.resolve_parent(session, path, None)?;
        if !self.name_free_for_write(session, parent, &name)? {
            return Err(InvError::Exists(path.to_string()));
        }
        let pstat = self.stat_oid(session, parent, None)?;
        if pstat.kind != FileKind::Directory {
            return Err(InvError::NotADirectory(path.to_string()));
        }
        let oid = self.db().alloc_oid()?;
        let (datarel, chunkidx) = self.create_data_rel(oid, mode.device, mode.no_history)?;
        let now = self.db().now();
        session.insert(
            self.rels.naming,
            vec![Datum::Text(name), Datum::Oid(parent.0), Datum::Oid(oid.0)],
        )?;
        let row = file_fileatt_row(oid, mode, now, datarel, chunkidx);
        session.insert(self.rels.fileatt, row.clone())?;
        InversionFs::stat_from_row(&row)
    }

    /// Creates a directory.
    pub(crate) fn mkdir_at(
        &self,
        session: &mut Session,
        path: &str,
        owner: &str,
    ) -> InvResult<Oid> {
        let (parent, name) = self.resolve_parent(session, path, None)?;
        if !self.name_free_for_write(session, parent, &name)? {
            return Err(InvError::Exists(path.to_string()));
        }
        let oid = self.db().alloc_oid()?;
        let now = self.db().now();
        session.insert(
            self.rels.naming,
            vec![Datum::Text(name), Datum::Oid(parent.0), Datum::Oid(oid.0)],
        )?;
        session.insert(self.rels.fileatt, dir_fileatt_row(oid, owner, now))?;
        Ok(oid)
    }

    /// Removes a name (and the file's `fileatt` row). Directories must be
    /// empty. The file's data table keeps all historical versions, so a
    /// removed file remains reachable through time travel — this is what
    /// makes `p_undelete` possible.
    pub(crate) fn unlink_at(&self, session: &mut Session, path: &str) -> InvResult<()> {
        let (parent, name) = self.resolve_parent(session, path, None)?;
        let Some((ntid, oid)) = self.lookup_child(session, parent, &name, None)? else {
            return Err(InvError::NoSuchPath(path.to_string()));
        };
        let stat = self.stat_oid(session, oid, None)?;
        if stat.kind == FileKind::Directory && !self.readdir(session, oid, None)?.is_empty() {
            return Err(InvError::NotEmpty(path.to_string()));
        }
        session.delete(self.rels.naming, ntid)?;
        if let Some((atid, _)) = self.fileatt_row(session, oid, None)? {
            session.delete(self.rels.fileatt, atid)?;
        }
        Ok(())
    }

    /// Renames `from` to `to` (both absolute). The file keeps its oid, so
    /// open descriptors and `fileatt` are untouched; only `naming` changes.
    pub(crate) fn rename_at(&self, session: &mut Session, from: &str, to: &str) -> InvResult<()> {
        let (fparent, fname) = self.resolve_parent(session, from, None)?;
        let Some((ntid, oid)) = self.lookup_child(session, fparent, &fname, None)? else {
            return Err(InvError::NoSuchPath(from.to_string()));
        };
        let (tparent, tname) = self.resolve_parent(session, to, None)?;
        if !self.name_free_for_write(session, tparent, &tname)? {
            return Err(InvError::Exists(to.to_string()));
        }
        let tp_stat = self.stat_oid(session, tparent, None)?;
        if tp_stat.kind != FileKind::Directory {
            return Err(InvError::NotADirectory(to.to_string()));
        }
        // A directory may not move under itself: walk the destination's
        // ancestry; hitting the source means the rename would create a
        // cycle in parent pointers.
        let mut cur = tparent;
        for _depth in 0..4096 {
            if cur == oid {
                return Err(InvError::Invalid(format!(
                    "cannot move {from} inside itself"
                )));
            }
            if cur == self.root || !cur.is_valid() {
                break;
            }
            let hits = session.index_scan_eq(self.rels.naming_file_idx, &[Datum::Oid(cur.0)])?;
            let Some((_, row)) = hits.into_iter().next() else {
                break;
            };
            cur = Oid(row[N_PARENTID].as_oid()?);
        }
        session.update(
            self.rels.naming,
            ntid,
            vec![Datum::Text(tname), Datum::Oid(tparent.0), Datum::Oid(oid.0)],
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paths() {
        assert_eq!(parse_path("/").unwrap(), Vec::<String>::new());
        assert_eq!(parse_path("/etc/passwd").unwrap(), vec!["etc", "passwd"]);
        assert_eq!(parse_path("//a///b/").unwrap(), vec!["a", "b"]);
        assert_eq!(parse_path("/a/./b").unwrap(), vec!["a", "b"]);
        assert_eq!(parse_path("/a/../b").unwrap(), vec!["b"]);
        assert_eq!(parse_path("/../..").unwrap(), Vec::<String>::new());
        assert!(parse_path("relative/path").is_err());
        assert!(parse_path("").is_err());
    }

    #[test]
    fn mkdir_resolve_readdir() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        let etc = fs.mkdir_at(&mut s, "/etc", "root").unwrap();
        fs.mkdir_at(&mut s, "/usr", "root").unwrap();
        fs.mkdir_at(&mut s, "/etc/rc.d", "root").unwrap();
        assert_eq!(fs.resolve(&mut s, "/etc", None).unwrap(), etc);
        let entries = fs.readdir(&mut s, fs.root(), None).unwrap();
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["etc", "usr"]);
        let entries = fs.readdir(&mut s, etc, None).unwrap();
        assert_eq!(entries[0].0, "rc.d");
        s.commit().unwrap();
    }

    #[test]
    fn paper_table_1_structure() {
        // Table 1: naming entries for "/etc/passwd" chain root -> etc ->
        // passwd via parentid.
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        fs.mkdir_at(&mut s, "/etc", "root").unwrap();
        fs.create_file_at(&mut s, "/etc/passwd", &CreateMode::default())
            .unwrap();
        let rows = s.seq_scan(fs.db().relation_id("naming").unwrap()).unwrap();
        s.commit().unwrap();

        let find = |name: &str| {
            rows.iter()
                .map(|(_, r)| r)
                .find(|r| r[N_FILENAME].as_text().unwrap() == name)
                .unwrap()
        };
        let root = find("/");
        let etc = find("etc");
        let passwd = find("passwd");
        assert_eq!(root[N_PARENTID].as_oid().unwrap(), 0);
        assert_eq!(
            etc[N_PARENTID].as_oid().unwrap(),
            root[N_FILE].as_oid().unwrap()
        );
        assert_eq!(
            passwd[N_PARENTID].as_oid().unwrap(),
            etc[N_FILE].as_oid().unwrap()
        );
    }

    #[test]
    fn path_of_inverts_resolve() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        fs.mkdir_at(&mut s, "/users", "root").unwrap();
        fs.mkdir_at(&mut s, "/users/mao", "mao").unwrap();
        let f = fs
            .create_file_at(&mut s, "/users/mao/thesis.tex", &CreateMode::default())
            .unwrap();
        assert_eq!(
            fs.path_of(&mut s, f.oid, None).unwrap(),
            "/users/mao/thesis.tex"
        );
        assert_eq!(fs.path_of(&mut s, fs.root(), None).unwrap(), "/");
        s.commit().unwrap();
    }

    #[test]
    fn resolution_errors() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        assert!(matches!(
            fs.resolve(&mut s, "/nope", None),
            Err(InvError::NoSuchPath(_))
        ));
        fs.create_file_at(&mut s, "/file", &CreateMode::default())
            .unwrap();
        // A file used as a directory component.
        assert!(matches!(
            fs.resolve(&mut s, "/file/deeper", None),
            Err(InvError::NotADirectory(_))
        ));
        // Duplicate creation.
        assert!(matches!(
            fs.create_file_at(&mut s, "/file", &CreateMode::default()),
            Err(InvError::Exists(_))
        ));
        s.abort().unwrap();
    }

    #[test]
    fn unlink_and_rmdir_semantics() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        fs.mkdir_at(&mut s, "/d", "root").unwrap();
        fs.create_file_at(&mut s, "/d/f", &CreateMode::default())
            .unwrap();
        // Non-empty directory refuses.
        assert!(matches!(
            fs.unlink_at(&mut s, "/d"),
            Err(InvError::NotEmpty(_))
        ));
        fs.unlink_at(&mut s, "/d/f").unwrap();
        assert!(matches!(
            fs.resolve(&mut s, "/d/f", None),
            Err(InvError::NoSuchPath(_))
        ));
        fs.unlink_at(&mut s, "/d").unwrap();
        assert!(fs.resolve(&mut s, "/d", None).is_err());
        s.commit().unwrap();
    }

    #[test]
    fn rename_moves_between_directories() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        fs.mkdir_at(&mut s, "/a", "root").unwrap();
        fs.mkdir_at(&mut s, "/b", "root").unwrap();
        let f = fs
            .create_file_at(&mut s, "/a/x", &CreateMode::default())
            .unwrap();
        fs.rename_at(&mut s, "/a/x", "/b/y").unwrap();
        assert!(fs.resolve(&mut s, "/a/x", None).is_err());
        assert_eq!(fs.resolve(&mut s, "/b/y", None).unwrap(), f.oid);
        assert_eq!(fs.path_of(&mut s, f.oid, None).unwrap(), "/b/y");
        // Rename onto an existing name fails.
        fs.create_file_at(&mut s, "/a/z", &CreateMode::default())
            .unwrap();
        assert!(matches!(
            fs.rename_at(&mut s, "/a/z", "/b/y"),
            Err(InvError::Exists(_))
        ));
        s.commit().unwrap();
    }

    #[test]
    fn namespace_changes_are_transactional() {
        let fs = InversionFs::open_in_memory().unwrap();
        // Abort a mkdir: it never happened.
        let mut s = fs.db().begin().unwrap();
        fs.mkdir_at(&mut s, "/ghost", "root").unwrap();
        s.abort().unwrap();
        let mut s = fs.db().begin().unwrap();
        assert!(fs.resolve(&mut s, "/ghost", None).is_err());
        s.commit().unwrap();
    }

    #[test]
    fn historical_resolution_after_unlink() {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut s = fs.db().begin().unwrap();
        let f = fs
            .create_file_at(&mut s, "/doomed", &CreateMode::default())
            .unwrap();
        s.commit().unwrap();
        let t_alive = fs.db().now();

        let mut s = fs.db().begin().unwrap();
        fs.unlink_at(&mut s, "/doomed").unwrap();
        s.commit().unwrap();

        let mut s = fs.db().begin().unwrap();
        assert!(fs.resolve(&mut s, "/doomed", None).is_err());
        let snap = Snapshot::AsOf(t_alive);
        assert_eq!(fs.resolve(&mut s, "/doomed", Some(&snap)).unwrap(), f.oid);
        // Historical readdir shows it too.
        let entries = fs.readdir(&mut s, fs.root(), Some(&snap)).unwrap();
        assert_eq!(entries, vec![("doomed".into(), f.oid)]);
        s.commit().unwrap();
    }
}
