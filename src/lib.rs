//! Reproduction of the Inversion file system (Olson, USENIX 1993).
//!
//! This is the workspace facade crate; the substance lives in the member
//! crates re-exported below. See the README and DESIGN.md at the repository
//! root.

pub use ::bench as benchmarks;
pub use inversion;
pub use minidb;
pub use nfssim;
pub use simdev;
