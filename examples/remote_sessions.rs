//! Remote sessions: the Inversion server over a real wire.
//!
//! The paper measures Inversion as a server process clients speak a
//! protocol to. This example stands up `InvServerPool`, connects two
//! clients over in-memory byte streams, and shows the session properties
//! the protocol battery tests: per-session descriptor tables and
//! transaction scopes, pipelined bulk transfer, a disconnect that aborts
//! an open transaction, and the `pg_stat_net` counters that watch it all.
//!
//! Run with: `cargo run --example remote_sessions`

use inversion::server::Request;
use inversion::{
    CreateMode, InvServerPool, InversionFs, OpenMode, PoolConfig, WireClient,
};
use simdev::duplex_pair;
use std::time::{Duration, Instant};

fn main() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());

    // Two connections, two server-side sessions.
    let (alice_end, srv_a) = duplex_pair();
    let (bob_end, srv_b) = duplex_pair();
    pool.serve_duplex(srv_a);
    pool.serve_duplex(srv_b);
    let mut alice = WireClient::new(alice_end);
    let mut bob = WireClient::new(bob_end);

    // 1. Bulk transfer: write_bulk pipelines 8 KB segment frames.
    println!("== pipelined bulk write over the wire ==");
    let report: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    alice.mkdir("/shared").unwrap();
    let fd = alice
        .creat("/shared/report", CreateMode::default().owned_by("alice"))
        .unwrap();
    let n = alice.write_bulk(fd, &report).unwrap();
    alice.close(fd).unwrap();
    println!(
        "alice streamed {n} bytes in {} frames",
        alice.stats().frames_out.get()
    );

    // 2. Descriptor tables are session state: bob cannot use alice's fd.
    println!("\n== per-session descriptor isolation ==");
    let alice_fd = alice
        .open("/shared/report", OpenMode::Read, None)
        .unwrap();
    match bob.call(&Request::Read(alice_fd, 16)) {
        Err(e) => println!("bob using alice's fd {alice_fd}: {e}"),
        Ok(_) => unreachable!("descriptor leaked across sessions"),
    }
    let bob_fd = bob.open("/shared/report", OpenMode::Read, None).unwrap();
    let head = bob.read_bulk(bob_fd, 8).unwrap();
    println!("bob's own fd {bob_fd} reads fine: {head:?}");
    bob.close(bob_fd).unwrap();
    alice.close(alice_fd).unwrap();

    // 3. A client that vanishes mid-transaction leaves nothing behind.
    println!("\n== disconnect aborts the in-flight transaction ==");
    bob.begin().unwrap();
    let doomed = bob.creat("/shared/draft", CreateMode::default()).unwrap();
    bob.call(&Request::Write(doomed, b"never committed".to_vec()))
        .unwrap();
    drop(bob); // The wire goes dead; the server aborts and cleans up.
    let deadline = Instant::now() + Duration::from_secs(10);
    while fs.stats().net_disconnect_aborts.get() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "/shared/draft after the disconnect: {:?}",
        alice.stat("/shared/draft").err().map(|e| e.to_string())
    );

    // 4. The wire has counters, queryable like everything else.
    println!("\n== pg_stat_net ==");
    let mut s = fs.db().begin().unwrap();
    let rows = s
        .query(
            "retrieve (n.session, n.state, n.frames_in, n.frames_out, \
             n.bytes_in, n.bytes_out, n.disconnect_aborts) from n in pg_stat_net",
        )
        .unwrap();
    s.commit().unwrap();
    for row in &rows.rows {
        println!("{row:?}");
    }

    drop(alice);
    pool.shutdown();
    println!(
        "\nsessions opened={} closed={}, all locks released: {}",
        fs.stats().sessions_opened.get(),
        fs.stats().sessions_closed.get(),
        fs.db().held_lock_count() == 0
    );
}
