//! The Sequoia 2000 scenario that motivated Inversion: physical scientists
//! managing satellite imagery as typed files, querying file *contents* from
//! the query language.
//!
//! "Inversion currently stores several hundred satellite images from the
//! Thematic Mapper satellite ... A function has been written to find snow
//! in these images." This example stores a season of synthetic TM scenes,
//! registers the `snow` function, and runs the paper's April-snow query.
//!
//! Run with: `cargo run --example satellite_archive`

use inversion::types::{register_standard, SatelliteImage};
use inversion::{CreateMode, InversionFs};

fn main() {
    let fs = InversionFs::open_in_memory().unwrap();
    register_standard(&fs).unwrap();
    let tm = fs.db().catalog().type_by_name("tm").unwrap();
    let mut c = fs.client();

    // A year of scenes over one study site: snowy through spring, bare in
    // summer. Month and snow cover are baked into each synthetic image.
    c.p_mkdir("/tm").unwrap();
    c.p_mkdir("/tm/site42").unwrap();
    println!("ingesting 12 monthly Thematic Mapper scenes ...");
    c.p_begin().unwrap();
    for month in 1..=12u8 {
        let snow_fraction = match month {
            1 | 2 | 3 | 12 => 0.85,
            4 => 0.55,
            5 | 11 => 0.30,
            _ => 0.05,
        };
        let img = SatelliteImage::generate(month as u64, 128, 128, 5, month, snow_fraction);
        let path = format!("/tm/site42/scene_{month:02}.tm");
        let fd = c
            .p_creat(&path, CreateMode::default().with_type(tm).owned_by("frew"))
            .unwrap();
        c.p_write(fd, &img.encode()).unwrap();
        c.p_close(fd).unwrap();
    }
    c.p_commit().unwrap();

    // The paper's query: April images that are more than half snow. The
    // `snow` function runs *inside* the data manager, reading each file's
    // chunks without any copies out of the server.
    println!("\nquery: TM scenes from April with more than 50% snow cover");
    let mut s = fs.db().begin().unwrap();
    let r = s
        .query(
            r#"retrieve (snowpix = snow(n.file), n.filename)
               from n in naming
               where filetype(n.file) = "tm"
                 and snow(n.file) * 2 > pixelcount(n.file)
                 and month_of(n.file) = "April""#,
        )
        .unwrap();
    print!("{}", r.to_table());

    // Deep-winter survey: every scene at least 80% snow, any month.
    println!("query: scenes with at least 80% snow cover");
    let r = s
        .query(
            r#"retrieve (n.filename, m = month_of(n.file))
               from n in naming
               where filetype(n.file) = "tm"
                 and snow(n.file) * 5 >= pixelcount(n.file) * 4"#,
        )
        .unwrap();
    print!("{}", r.to_table());

    // Band statistics through getband — per-scene radiometry without an
    // application program.
    println!("query: mean band-2 radiance of the June scene");
    let r = s
        .query(
            r#"retrieve (b2 = getband(n.file, 2))
               from n in naming where n.filename = "scene_06.tm""#,
        )
        .unwrap();
    print!("{}", r.to_table());
    s.commit().unwrap();

    // File system and database views of the same data coexist: list the
    // directory the ordinary way.
    println!("directory listing of /tm/site42:");
    let entries = c.p_readdir("/tm/site42", None).unwrap();
    for (name, oid) in entries {
        let stat = c.p_stat(&format!("/tm/site42/{name}"), None).unwrap();
        println!("  {name}  oid={oid}  {} bytes", stat.size);
    }
}
