//! CI smoke test for the structural verifier: run a varied workload
//! (multi-chunk writes, overwrites, truncates, deletes, a crash, and a
//! recovery), then require `pg_check` to report zero findings.
//!
//! Exits nonzero if any finding survives — wired into `scripts/ci.sh`.
//!
//! Run with: `cargo run --example pg_check_smoke`

use inversion::{CreateMode, InversionFs, OpenMode, SeekWhence, CHUNK_SIZE};
use minidb::{shared_device, Db, DbConfig, DeviceId, GenericManager, SharedDevice, Smgr};
use simdev::{DiskProfile, MagneticDisk, SimClock};

fn open(
    clock: &SimClock,
    data: &SharedDevice,
    log: &SharedDevice,
    catalog: &SharedDevice,
    fresh: bool,
) -> Db {
    let mut smgr = Smgr::new();
    let mgr = if fresh {
        GenericManager::format(data.clone()).unwrap()
    } else {
        GenericManager::attach(data.clone()).unwrap()
    };
    smgr.register(DeviceId::DEFAULT, Box::new(mgr)).unwrap();
    let open = if fresh { Db::open } else { Db::recover };
    open(
        clock.clone(),
        smgr,
        log.clone(),
        catalog.clone(),
        DbConfig::default(),
    )
    .unwrap()
}

fn main() {
    let clock = SimClock::new();
    let mk = |name: &str, blocks: u64| {
        shared_device(MagneticDisk::new(
            name,
            clock.clone(),
            DiskProfile::tiny_for_tests(blocks),
        ))
    };
    let (data, log, catalog) = (mk("data", 1 << 16), mk("log", 1 << 12), mk("catalog", 1 << 12));

    // A workload that leaves interesting debris: committed multi-chunk
    // files, overwritten and truncated files, deletions, and an
    // uncommitted transaction killed by a crash.
    {
        let fs = InversionFs::format(open(&clock, &data, &log, &catalog, true)).unwrap();
        let mut c = fs.client();
        c.write_all("/a", CreateMode::default(), &vec![1; 3 * CHUNK_SIZE + 17])
            .unwrap();
        c.write_all(
            "/b",
            CreateMode::default().compressed().self_identifying(),
            &vec![2; CHUNK_SIZE],
        )
        .unwrap();
        let fd = c.p_open("/a", OpenMode::ReadWrite, None).unwrap();
        c.p_lseek(fd, (CHUNK_SIZE / 2) as i64, SeekWhence::Set).unwrap();
        c.p_write(fd, &vec![3; CHUNK_SIZE]).unwrap();
        c.p_ftruncate(fd, 2 * CHUNK_SIZE as u64).unwrap();
        c.p_close(fd).unwrap();
        c.p_unlink("/b").unwrap();
        c.p_begin().unwrap();
        let fd = c.p_creat("/doomed", CreateMode::default()).unwrap();
        c.p_write(fd, &vec![4; CHUNK_SIZE]).unwrap();
        std::mem::forget(c); // Crash mid-transaction.
        std::mem::forget(fs);
    }

    let fs = InversionFs::attach(open(&clock, &data, &log, &catalog, false)).unwrap();
    let engine = fs.db().check_all();
    let fslevel = fs.check();
    let mut s = fs.db().begin().unwrap();
    let res = s
        .query("retrieve (c.relation, c.code, c.detail) from c in pg_check")
        .unwrap();
    s.commit().unwrap();

    let total = engine.len() + fslevel.len();
    for f in engine.iter().chain(fslevel.iter()) {
        eprintln!("finding: {f}");
    }
    if total > 0 || !res.rows.is_empty() {
        eprintln!(
            "pg_check smoke: FAILED ({total} findings, {} pg_check rows)",
            res.rows.len()
        );
        std::process::exit(1);
    }
    println!("pg_check smoke: OK (engine, fs, and pg_check all clean after crash recovery)");
}
