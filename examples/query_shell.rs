//! An interactive POSTQUEL query monitor over a demo file system.
//!
//! "Users may run the query language monitor program to execute arbitrarily
//! complex queries." Pipe queries in, pass one as an argument, or run with
//! no input for a scripted demo.
//!
//! ```text
//! cargo run --example query_shell                       # scripted demo
//! cargo run --example query_shell 'retrieve (n.filename) from n in naming'
//! echo 'retrieve (1 + 1)' | cargo run --example query_shell -
//! ```
//!
//! In shell mode, `\stats` dumps every statistics relation (`pg_stat_*` and
//! `inv_stat`) and `\q` quits.

use std::io::{BufRead, Write};

use inversion::types::{make_troff_document, register_standard, SatelliteImage};
use inversion::{CreateMode, InversionFs};

fn build_demo_fs() -> InversionFs {
    let fs = InversionFs::open_in_memory().unwrap();
    register_standard(&fs).unwrap();
    let tm = fs.db().catalog().type_by_name("tm").unwrap();
    let troff = fs.db().catalog().type_by_name("troff").unwrap();
    let mut c = fs.client();
    c.p_mkdir("/users").unwrap();
    c.p_mkdir("/users/mao").unwrap();
    c.write_all(
        "/users/mao/risc_paper.t",
        CreateMode::default().with_type(troff).owned_by("mao"),
        make_troff_document(1, &["RISC", "pipelining"], 40).as_bytes(),
    )
    .unwrap();
    c.write_all(
        "/users/mao/fs_paper.t",
        CreateMode::default().with_type(troff).owned_by("mao"),
        make_troff_document(2, &["filesystem", "database"], 40).as_bytes(),
    )
    .unwrap();
    for (i, (month, snow)) in [(4u8, 0.7), (4, 0.2), (7, 0.05)].iter().enumerate() {
        c.write_all(
            &format!("/users/mao/tm_{i}.img"),
            CreateMode::default().with_type(tm).owned_by("mao"),
            &SatelliteImage::generate(i as u64, 64, 64, 5, *month, *snow).encode(),
        )
        .unwrap();
    }
    fs
}

fn run_query(fs: &InversionFs, q: &str) {
    let mut s = fs.db().begin().unwrap();
    match s.query(q) {
        Ok(r) => {
            print!("{}", r.to_table());
            s.commit().unwrap();
        }
        Err(e) => {
            println!("error: {e}");
            let _ = s.abort();
        }
    }
}

/// `\stats`: dump every statistics relation through the query language.
fn show_stats(fs: &InversionFs) {
    let relations = [
        (
            "pg_stat_buffer",
            "retrieve (s.hits, s.misses, s.evictions, s.writebacks, s.prefetches, s.prefetch_hits, s.capacity, s.cached) from s in pg_stat_buffer",
        ),
        (
            "pg_stat_lock",
            "retrieve (s.acquisitions, s.waits, s.deadlocks, s.timeouts) from s in pg_stat_lock",
        ),
        (
            "pg_stat_xact",
            "retrieve (s.commits, s.aborts, s.time_travel_reads, s.group_commits, s.batched_records, s.pages_flushed_at_commit, s.sync_calls, s.active) from s in pg_stat_xact",
        ),
        (
            "pg_stat_wal",
            "retrieve (s.records_appended, s.bytes_appended, s.log_forces, s.checkpoints, s.ckpt_pages_drained, s.replayed_pages, s.replayed_records) from s in pg_stat_wal",
        ),
        (
            "pg_stat_relation",
            "retrieve (s.heap_scans, s.heap_fetches, s.heap_appends, s.btree_searches, s.btree_inserts, s.btree_splits) from s in pg_stat_relation",
        ),
        (
            "pg_stat_planner",
            "retrieve (s.plans_built, s.index_scans_chosen, s.seq_scans_chosen, s.joins_planned) from s in pg_stat_planner",
        ),
        (
            "pg_stat_device",
            "retrieve (s.device, s.name, s.reads, s.writes, s.read_ns, s.write_ns) from s in pg_stat_device",
        ),
        (
            "pg_stat_io",
            "retrieve (s.device, s.name, s.submitted, s.completed, s.batched_neighbors, s.elevator_passes, s.queue_depth_hw, s.barrier_waits) from s in pg_stat_io",
        ),
        ("inv_stat", "retrieve (s.op, s.count) from s in inv_stat"),
    ];
    for (rel, q) in relations {
        println!("-- {rel}");
        run_query(fs, q);
    }
}

fn main() {
    let fs = build_demo_fs();
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a != "-") {
        for q in args.iter().filter(|a| *a != "-") {
            run_query(&fs, q);
        }
        return;
    }

    let interactive = args.is_empty();
    if interactive {
        // Scripted demo when no input was provided.
        let demo = [
            r#"retrieve (n.filename, o = owner(n.file), s = size(n.file)) from n in naming where size(n.file) > 0"#,
            r#"retrieve (n.filename) from n in naming where "RISC" in keywords(n.file)"#,
            r#"retrieve (snowpix = snow(n.file), n.filename) from n in naming
               where filetype(n.file) = "tm" and snow(n.file) * 2 > pixelcount(n.file)
                 and month_of(n.file) = "April""#,
            r#"retrieve (n.filename, d = dir(n.file)) from n in naming where owner(n.file) = "mao" and size(n.file) > 0"#,
            r#"explain retrieve (n.filename) from n in naming where size(n.file) > 0 sort by filename"#,
        ];
        println!("POSTQUEL query monitor (scripted demo; pipe queries to stdin for shell mode)\n");
        for q in demo {
            println!("> {}", q.split_whitespace().collect::<Vec<_>>().join(" "));
            run_query(&fs, q);
            println!();
        }
        return;
    }

    // Shell mode: one query per line from stdin.
    let stdin = std::io::stdin();
    print!("postquel> ");
    std::io::stdout().flush().unwrap();
    for line in stdin.lock().lines() {
        let line = line.unwrap();
        let q = line.trim();
        if q.is_empty() || q == "\\q" {
            break;
        }
        if q == "\\stats" {
            show_stats(&fs);
            print!("postquel> ");
            std::io::stdout().flush().unwrap();
            continue;
        }
        run_query(&fs, q);
        print!("postquel> ");
        std::io::stdout().flush().unwrap();
    }
}
