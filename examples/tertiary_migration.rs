//! Managing a storage hierarchy: magnetic disk + Sony WORM jukebox, with
//! rule-driven migration.
//!
//! "The current system manages data stored on a 327 GByte Sony optical disk
//! WORM jukebox, and on magnetic disk. ... The Inversion namespace is
//! uniform across devices." And from the migration discussion:
//! "Arbitrarily complex rules controlling the locations of files ... would
//! be declared to the database manager. When a file met the announced
//! conditions, it would be moved from one location in the storage hierarchy
//! to another."
//!
//! Run with: `cargo run --example tertiary_migration`

use bench::testbed::{InversionTestbed, DEV_DISK, DEV_JUKEBOX};
use inversion::migrate::{register_migration, run_migration_rules};
use inversion::{CreateMode, InversionFs};
use simdev::SimDuration;

fn device_name(fs: &InversionFs, path: &str, c: &mut inversion::InvClient) -> &'static str {
    let _ = fs;
    match c.p_stat(path, None).unwrap().device {
        DEV_DISK => "magnetic disk",
        DEV_JUKEBOX => "sony jukebox",
        _ => "unknown",
    }
}

fn main() {
    // The full testbed: RZ58 magnetic disk (device 0) and the Sony WORM
    // jukebox with its 10 MB staging cache (device 1).
    let tb = InversionTestbed::paper();
    let fs = tb.fs.clone();
    register_migration(&fs).unwrap();
    let mut c = fs.client();

    // Files can be *placed* on either device at creation; the namespace is
    // uniform across devices.
    println!("== location transparency ==");
    c.write_all(
        "/fast.dat",
        CreateMode::default().on_device(DEV_DISK),
        &vec![1u8; 100_000],
    )
    .unwrap();
    c.write_all(
        "/archive.dat",
        CreateMode::default().on_device(DEV_JUKEBOX),
        &vec![2u8; 100_000],
    )
    .unwrap();
    for path in ["/fast.dat", "/archive.dat"] {
        println!("  {path}: on {}", device_name(&fs, path, &mut c));
    }
    // Reads look identical regardless of the device underneath.
    assert_eq!(
        c.read_to_vec("/archive.dat", None).unwrap(),
        vec![2u8; 100_000]
    );
    println!("  both read back identically through the same API");

    // Age a dataset, then declare the paper's migration policy as a rule.
    println!("\n== rule-driven migration ==");
    c.write_all(
        "/cold_dataset.dat",
        CreateMode::default(),
        &vec![3u8; 500_000],
    )
    .unwrap();
    tb.clock.advance(SimDuration::from_secs(3600)); // An hour passes.
    c.write_all(
        "/hot_dataset.dat",
        CreateMode::default(),
        &vec![4u8; 500_000],
    )
    .unwrap();

    let cutoff = fs.db().now().as_nanos() - SimDuration::from_secs(600).as_nanos();
    let mut s = fs.db().begin().unwrap();
    s.query(&format!(
        "define rule cold_to_tertiary on periodic to fileatt \
         where atime < {cutoff} and datarel != 0 and device = 0 \
         do migrate(this.file, 1)"
    ))
    .unwrap();
    println!("  declared: files untouched for 10 minutes move to the jukebox");

    let run = run_migration_rules(&fs, &mut s).unwrap();
    s.commit().unwrap();
    for (rule, n) in &run.fired {
        println!("  rule \"{rule}\" matched {n} file(s)");
    }

    for path in ["/cold_dataset.dat", "/hot_dataset.dat"] {
        println!("  {path}: now on {}", device_name(&fs, path, &mut c));
    }
    assert_eq!(
        c.read_to_vec("/cold_dataset.dat", None).unwrap(),
        vec![3u8; 500_000]
    );

    // Time travel across the migration still reads the *old* location's
    // relation — history did not move.
    println!("\n== reading a migrated file, present and past ==");
    let t_before = fs.db().now();
    c.p_begin().unwrap();
    let fd = c
        .p_open("/cold_dataset.dat", inversion::OpenMode::ReadWrite, None)
        .unwrap();
    c.p_write(fd, b"POST-MIGRATION EDIT").unwrap();
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();
    let now = c.read_to_vec("/cold_dataset.dat", None).unwrap();
    let then = c.read_to_vec("/cold_dataset.dat", Some(t_before)).unwrap();
    println!(
        "  head starts with: {:?}",
        String::from_utf8_lossy(&now[..19.min(now.len())])
    );
    println!("  pre-edit version intact: {}", then == vec![3u8; 500_000]);

    // The WORM jukebox is append-only media: the manager stages writes on
    // magnetic disk and burns platters on commit; reads of jukebox files go
    // through the staging cache.
    println!("\n== jukebox staging in action ==");
    fs.db().flush_caches().unwrap();
    let t0 = tb.clock.now();
    c.read_to_vec("/archive.dat", None).unwrap();
    let cold_read = tb.clock.now().since(t0);
    let t0 = tb.clock.now();
    c.read_to_vec("/archive.dat", None).unwrap();
    let warm_read = tb.clock.now().since(t0);
    println!("  first read (robot + platter load): {cold_read}");
    println!("  second read (staging cache):       {warm_read}");
}
