//! Source control without a version-control system.
//!
//! The paper's motivating example for transactions: "programmers working on
//! a large software project may need to be able to check in several fixed
//! source code files at the same time" — and for time travel: "it allows
//! users ... to recover a working version of a program which they have
//! changed. Inversion ... would provide a superset of the services offered
//! by revision control programs like rcs(1)."
//!
//! Run with: `cargo run --example source_control`

use inversion::{CreateMode, InversionFs, OpenMode, SeekWhence};
use simdev::SimInstant;

fn checkin(c: &mut inversion::InvClient, files: &[(&str, &str)], message: &str) -> SimInstant {
    c.p_begin().unwrap();
    for (path, content) in files {
        let fd = match c.p_open(path, OpenMode::ReadWrite, None) {
            Ok(fd) => fd,
            Err(_) => c
                .p_creat(path, CreateMode::default().owned_by("dev"))
                .unwrap(),
        };
        c.p_lseek(fd, 0, SeekWhence::Set).unwrap();
        c.p_write(fd, content.as_bytes()).unwrap();
        c.p_close(fd).unwrap();
    }
    c.p_commit().unwrap();
    let t = c.fs().db().now();
    println!("checked in \"{message}\" at {t}");
    t
}

fn main() {
    let fs = InversionFs::open_in_memory().unwrap();
    let mut c = fs.client();
    c.p_mkdir("/project").unwrap();

    // Revision 1: consistent pair of files.
    let r1 = checkin(
        &mut c,
        &[
            (
                "/project/list.h",
                "struct node { int v; struct node *next; };\n",
            ),
            (
                "/project/list.c",
                "#include \"list.h\"\nint length(struct node *n);\n",
            ),
        ],
        "initial list implementation",
    );

    // Revision 2: the header and the implementation change *together*. If
    // the system crashed mid-checkin, neither file would show the change.
    let r2 = checkin(
        &mut c,
        &[
            (
                "/project/list.h",
                "struct node { long v; struct node *next; };\n",
            ),
            (
                "/project/list.c",
                "#include \"list.h\"\nlong length(struct node *n);\n",
            ),
        ],
        "widen value to long",
    );

    // A broken change gets aborted — it never becomes a revision at all.
    println!("\nstarting a bad checkin and aborting it ...");
    c.p_begin().unwrap();
    let fd = c
        .p_open("/project/list.h", OpenMode::ReadWrite, None)
        .unwrap();
    c.p_write(fd, b"THIS DOES NOT COMPILE").unwrap();
    c.p_close(fd).unwrap();
    c.p_abort().unwrap();

    // Browse any revision: the namespace *and* contents at that instant.
    println!("\n== checkout of each revision (pure time travel, no deltas stored by hand) ==");
    for (label, t) in [("r1", r1), ("r2", r2)] {
        println!("--- {label} ---");
        for path in ["/project/list.h", "/project/list.c"] {
            let text = c.read_to_vec(path, Some(t)).unwrap();
            print!("{path}: {}", String::from_utf8_lossy(&text));
        }
    }
    println!("--- head ---");
    let head = c.read_to_vec("/project/list.h", None).unwrap();
    print!("/project/list.h: {}", String::from_utf8_lossy(&head));
    assert_eq!(head, c.read_to_vec("/project/list.h", Some(r2)).unwrap());

    // The consistency guarantee the paper highlights: at *every* instant the
    // two files agree about the type of `v`.
    println!("\nverifying header/impl consistency at every revision ...");
    for t in [r1, r2] {
        let h = String::from_utf8(c.read_to_vec("/project/list.h", Some(t)).unwrap()).unwrap();
        let i = String::from_utf8(c.read_to_vec("/project/list.c", Some(t)).unwrap()).unwrap();
        let widened = h.contains("long v");
        assert_eq!(
            widened,
            i.contains("long length"),
            "inconsistent revision at {t}"
        );
        println!(
            "  {t}: consistent ({})",
            if widened { "long" } else { "int" }
        );
    }

    // "rm -rf", then recover everything as of r2.
    println!("\ndeleting the project and undeleting from history ...");
    c.p_unlink("/project/list.h").unwrap();
    c.p_unlink("/project/list.c").unwrap();
    c.p_undelete("/project/list.h", r2).unwrap();
    c.p_undelete("/project/list.c", r2).unwrap();
    println!(
        "recovered list.h: {}",
        String::from_utf8_lossy(&c.read_to_vec("/project/list.h", None).unwrap()).trim_end()
    );
}
