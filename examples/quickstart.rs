//! Quickstart: the Inversion file system in two minutes.
//!
//! Shows the paper's headline services: transactional file updates,
//! fine-grained time travel, undelete, and ad-hoc queries over the file
//! system's own tables.
//!
//! Run with: `cargo run --example quickstart`

use inversion::{CreateMode, InversionFs, OpenMode, SeekWhence};

fn main() {
    // An in-memory testbed (simulated magnetic disk underneath).
    let fs = InversionFs::open_in_memory().unwrap();
    let mut c = fs.client();

    // 1. Transaction-protected writes: both files change or neither does.
    println!("== transactional update of two files ==");
    c.p_begin().unwrap();
    c.p_mkdir("/src").unwrap();
    let fa = c
        .p_creat("/src/parser.c", CreateMode::default().owned_by("mao"))
        .unwrap();
    let fb = c
        .p_creat("/src/parser.h", CreateMode::default().owned_by("mao"))
        .unwrap();
    c.p_write(fa, b"int parse(void) { return 0; }\n").unwrap();
    c.p_write(fb, b"int parse(void);\n").unwrap();
    c.p_close(fa).unwrap();
    c.p_close(fb).unwrap();
    c.p_commit().unwrap();
    println!("committed /src/parser.c and /src/parser.h atomically");

    let t_v1 = fs.db().now();

    // 2. Update one of them...
    c.p_begin().unwrap();
    let fd = c
        .p_open("/src/parser.c", OpenMode::ReadWrite, None)
        .unwrap();
    c.p_lseek(fd, 0, SeekWhence::Set).unwrap();
    c.p_write(fd, b"int parse(void) { return 1; }\n").unwrap();
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();

    // ...and read both the present and the past.
    println!("\n== fine-grained time travel ==");
    let now_text = c.read_to_vec("/src/parser.c", None).unwrap();
    let then_text = c.read_to_vec("/src/parser.c", Some(t_v1)).unwrap();
    println!(
        "current : {}",
        String::from_utf8_lossy(&now_text).trim_end()
    );
    println!(
        "as of v1: {}",
        String::from_utf8_lossy(&then_text).trim_end()
    );

    // 3. Undelete: remove a file, then bring it back as it was.
    println!("\n== undelete ==");
    c.p_unlink("/src/parser.h").unwrap();
    println!(
        "unlinked /src/parser.h (stat now fails: {})",
        c.p_stat("/src/parser.h", None).is_err()
    );
    c.p_undelete("/src/parser.h", t_v1).unwrap();
    println!(
        "undeleted; contents: {}",
        String::from_utf8_lossy(&c.read_to_vec("/src/parser.h", None).unwrap()).trim_end()
    );

    // 4. The file system is a database: query it.
    println!("\n== ad-hoc queries over the namespace ==");
    let mut s = fs.db().begin().unwrap();
    let r = s
        .query(
            "retrieve (n.filename, a.size) from n in naming, a in fileatt \
             where n.file = a.file and a.size > 0",
        )
        .unwrap();
    print!("{}", r.to_table());
    s.commit().unwrap();

    // 5. An aborted transaction never happened.
    println!("== abort semantics ==");
    c.p_begin().unwrap();
    let fd = c
        .p_open("/src/parser.c", OpenMode::ReadWrite, None)
        .unwrap();
    c.p_write(fd, b"garbage that will never be seen").unwrap();
    c.p_close(fd).unwrap();
    c.p_abort().unwrap();
    let after = c.read_to_vec("/src/parser.c", None).unwrap();
    println!(
        "after abort, parser.c still reads: {}",
        String::from_utf8_lossy(&after).trim_end()
    );
}
