//! The time machine: every service history buys you, in one tour —
//! revision logs recovered from the storage manager, undelete, vacuum with
//! archives, and `ls`-able history through the NFS front end's
//! `path@time` namespace extension.
//!
//! Run with: `cargo run --example time_machine`

use inversion::maintenance::vacuum_all;
use inversion::{CreateMode, InversionFs, NfsFront, OpenMode, SeekWhence};
use minidb::DeviceId;
use simdev::SimDuration;

fn main() {
    let fs = InversionFs::open_in_memory().unwrap();
    let mut c = fs.client();
    let nfs = NfsFront::new(&fs);

    // Build a little history: four revisions of a notebook, a second apart.
    println!("== writing four revisions of /notebook ==");
    for rev in 1..=4u32 {
        c.p_begin().unwrap();
        let fd = match c.p_open("/notebook", OpenMode::ReadWrite, None) {
            Ok(fd) => fd,
            Err(_) => c.p_creat("/notebook", CreateMode::default()).unwrap(),
        };
        c.p_lseek(fd, 0, SeekWhence::Set).unwrap();
        let text = format!("revision {rev}: {}\n", "data ".repeat(rev as usize));
        c.p_ftruncate(fd, 0).unwrap();
        c.p_write(fd, text.as_bytes()).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        fs.db().clock().advance(SimDuration::from_secs(1));
    }

    // p_history: a revision log straight out of the no-overwrite heap.
    println!("\n== p_history(/notebook): the rcs superset ==");
    let hist = c.p_history("/notebook").unwrap();
    for (i, v) in hist.iter().enumerate() {
        println!(
            "  r{}  committed {}  {} bytes  {}",
            i + 1,
            v.committed_at,
            v.size,
            if v.superseded_at.is_none() {
                "(head)"
            } else {
                ""
            }
        );
    }

    // Check out revision 2 by its commit time.
    let r2 = &hist[1];
    let text = c.read_to_vec("/notebook", Some(r2.committed_at)).unwrap();
    println!(
        "  checkout of r2: {}",
        String::from_utf8_lossy(&text).trim_end()
    );

    // The same history is reachable through the NFS namespace extension.
    println!("\n== NFS front end: cat /notebook@<time> ==");
    let t2 = r2.committed_at.as_nanos();
    let attr = nfs.lookup(&format!("/notebook@{t2}")).unwrap();
    let bytes = nfs.read(attr.handle, 0, 64).unwrap();
    println!(
        "  /notebook@{t2} -> {}",
        String::from_utf8_lossy(&bytes).trim_end()
    );

    // Delete the file; `ls /` through NFS shows it gone now, present then.
    c.p_unlink("/notebook").unwrap();
    let t_alive = r2.committed_at.as_nanos();
    println!("\n== after rm: ls / now vs then ==");
    println!(
        "  ls /            -> {:?}",
        nfs.readdir("/")
            .unwrap()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "  ls /@{t_alive} -> {:?}",
        nfs.readdir(&format!("/@{t_alive}"))
            .unwrap()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
    );

    // Undelete it as of revision 4 (the last one).
    let r4 = hist.last().unwrap();
    c.p_undelete("/notebook", r4.committed_at).unwrap();
    println!(
        "\nundeleted /notebook as of r4: {}",
        String::from_utf8_lossy(&c.read_to_vec("/notebook", None).unwrap()).trim_end()
    );

    // Run the vacuum cleaner; history keeps working, served from archives.
    println!("\n== vacuum cleaner sweep ==");
    for (name, stats) in vacuum_all(&fs, DeviceId::DEFAULT).unwrap() {
        if stats.archived + stats.discarded > 0 {
            println!(
                "  {name}: kept {}, archived {}, discarded {}",
                stats.kept, stats.archived, stats.discarded
            );
        }
    }
    let text = c.read_to_vec("/notebook", Some(r2.committed_at)).unwrap();
    println!(
        "  r2 after vacuum (from the archive): {}",
        String::from_utf8_lossy(&text).trim_end()
    );
}
