#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Figure harnesses also emit BENCH_<name>.json (simulated seconds plus
# storage-manager counter deltas) alongside the text tables.
# Usage: scripts/run_all_experiments.sh
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for bin in table1_naming table2_types fig3_create fig4_random_byte \
           fig5_reads fig6_writes table3_full ston93_local ablations; do
    echo "== $bin =="
    case "$bin" in
    fig3_create | fig4_random_byte | fig5_reads | fig6_writes)
        cargo run --release -p bench --bin "$bin" -- --json | tee "results/$bin.txt"
        mv "BENCH_$bin.json" results/
        ;;
    *)
        cargo run --release -p bench --bin "$bin" | tee "results/$bin.txt"
        ;;
    esac
done
echo "All experiment outputs written to results/."
