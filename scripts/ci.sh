#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a statistics smoke test.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== smoke: fig3_create --json =="
cargo run --release -q -p bench --bin fig3_create -- --json
test -s BENCH_fig3_create.json || {
    echo "BENCH_fig3_create.json missing or empty" >&2
    exit 1
}
grep -q '"minidb_stats_delta"' BENCH_fig3_create.json || {
    echo "BENCH_fig3_create.json lacks stats delta" >&2
    exit 1
}
mkdir -p results
mv BENCH_fig3_create.json results/
echo "CI OK"
