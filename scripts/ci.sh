#!/usr/bin/env bash
# Tier-1 gate: static analysis, release build, full test suite, structural
# verification, and a statistics smoke test.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint (xtask static analysis) =="
cargo run -q -p xtask -- lint

# Clippy is a bonus gate: run it when the component is installed (the
# offline build image may not ship it).
if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy =="
    cargo clippy --workspace --quiet -- -D warnings
else
    echo "== clippy: not installed, skipping =="
fi

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== buffer manager stress =="
cargo test --release -q --test buffer_stress

echo "== commit path stress (group commit) =="
cargo test --release -q --test commit_stress

echo "== crash-recovery battery (WAL + checkpointer + instant recovery) =="
cargo test --release -q --test recovery
cargo test --release -q --test properties

echo "== differential query oracle (planned executor vs reference interpreter) =="
cargo test --release -q --test properties planned_

echo "== golden plan corpus (pinned EXPLAIN for the planner query set) =="
cargo test --release -q --test explain

echo "== wire protocol fuzz battery =="
cargo test --release -q --test wire

echo "== multi-session server stress =="
cargo test --release -q --test server_stress

# Bounded-time torture smoke: covers at least one crash-during-commit and
# one crash-during-checkpoint schedule, a crash with write-behind requests
# still queued in the I/O scheduler, and both link-drop transports; the
# full 8-kind battery runs under "cargo test -q" above.
echo "== torture battery smoke (crash mid-commit / mid-checkpoint / in-flight) =="
cargo test --release -q --test torture battery_crash_mid_commit
cargo test --release -q --test torture battery_crash_mid_checkpoint
cargo test --release -q --test torture battery_crash_in_flight
cargo test --release -q --test torture battery_link_drop

echo "== smoke: p_slice shares chunk rows without copying =="
cargo test --release -q -p inversion --lib slice

echo "== smoke: pg_check clean after crash recovery =="
cargo run --release -q --example pg_check_smoke

echo "== smoke: fig3_create --json =="
cargo run --release -q -p bench --bin fig3_create -- --json
test -s BENCH_fig3_create.json || {
    echo "BENCH_fig3_create.json missing or empty" >&2
    exit 1
}
grep -q '"minidb_stats_delta"' BENCH_fig3_create.json || {
    echo "BENCH_fig3_create.json lacks stats delta" >&2
    exit 1
}

echo "== smoke: fig4_random_byte --json (planner picks the naming index) =="
cargo run --release -q -p bench --bin fig4_random_byte -- --json
test -s BENCH_fig4_random_byte.json || {
    echo "BENCH_fig4_random_byte.json missing or empty" >&2
    exit 1
}
grep -q '"planner"' BENCH_fig4_random_byte.json || {
    echo "BENCH_fig4_random_byte.json lacks planner section" >&2
    exit 1
}
grep -q '"index_scan_chosen":true' BENCH_fig4_random_byte.json || {
    echo "planner regressed: naming.file lookup no longer uses naming_file_idx" >&2
    exit 1
}

echo "== smoke: fig5_reads --remote --threads 4 --json =="
cargo run --release -q -p bench --bin fig5_reads -- --remote --threads 4 --json
test -s BENCH_fig5_reads.json || {
    echo "BENCH_fig5_reads.json missing or empty" >&2
    exit 1
}
grep -q '"thread_scaling"' BENCH_fig5_reads.json || {
    echo "BENCH_fig5_reads.json lacks thread_scaling section" >&2
    exit 1
}
grep -q '"speedup_at_least_2x": true' BENCH_fig5_reads.json || {
    echo "4 clients failed to double aggregate read throughput" >&2
    exit 1
}
grep -q '"remote_scaling"' BENCH_fig5_reads.json || {
    echo "BENCH_fig5_reads.json lacks remote_scaling section" >&2
    exit 1
}
grep -q '"remote_speedup_at_least_2x": true' BENCH_fig5_reads.json || {
    echo "4 wire-protocol clients failed to double aggregate read throughput" >&2
    exit 1
}
grep -q '"extent_layout"' BENCH_fig5_reads.json || {
    echo "BENCH_fig5_reads.json lacks extent_layout section" >&2
    exit 1
}
grep -q '"extent_sequential_speedup": true' BENCH_fig5_reads.json || {
    echo "extents + elevator failed to reach 1.3x sequential read bandwidth" >&2
    exit 1
}

echo "== smoke: fig6_writes --remote --threads 4 --json =="
cargo run --release -q -p bench --bin fig6_writes -- --remote --threads 4 --json
test -s BENCH_fig6_writes.json || {
    echo "BENCH_fig6_writes.json missing or empty" >&2
    exit 1
}
grep -q '"remote_scaling"' BENCH_fig6_writes.json || {
    echo "BENCH_fig6_writes.json lacks remote_scaling section" >&2
    exit 1
}
grep -q '"speedup_at_least_1_5x": true' BENCH_fig6_writes.json || {
    echo "4 committers failed to raise write throughput 1.5x" >&2
    exit 1
}
grep -q '"group_commit_engaged": true' BENCH_fig6_writes.json || {
    echo "group commit never batched: sync_calls not below commits" >&2
    exit 1
}
grep -q '"no_data_page_flush_at_commit": true' BENCH_fig6_writes.json || {
    echo "no-force commit regressed: data pages written at commit" >&2
    exit 1
}
grep -q '"speedup_at_least_3_6x": true' BENCH_fig6_writes.json || {
    echo "4 committers failed to raise write throughput 3.6x" >&2
    exit 1
}

mkdir -p results
mv BENCH_fig3_create.json BENCH_fig4_random_byte.json BENCH_fig5_reads.json BENCH_fig6_writes.json results/
echo "CI OK"
